"""Traced benchmark points: phase breakdowns + Chrome trace export.

:func:`run_traced_point` is :func:`repro.bench.harness.run_point` with
a live tracer attached: it returns the usual :class:`RunResult` plus a
per-phase latency breakdown (wire / nic / pcie / cpu / queue) computed
from the measured operations' span trees, and optionally writes the
whole trace as Chrome trace-event JSON (load it at
https://ui.perfetto.dev).

:func:`bench_main` is the shared ``__main__`` entry point for the
``benchmarks/bench_fig*.py`` scripts::

    PYTHONPATH=src python benchmarks/bench_fig3_kv_read.py \\
        --trace /tmp/kv.json --clients 4

Because spans only *read* the simulated clock, a traced run's timing
is identical to the untraced run — the breakdown's phase sums match
the measured mean latency exactly, not just within tolerance.
"""

import argparse

from repro.bench.harness import run_point
from repro.bench.reporting import (
    UTILIZATION_HEADERS,
    print_faults,
    print_host,
    print_primitives,
    print_series,
    print_table,
    print_views,
    utilization_rows,
)
from repro.obs import (
    SERIES_DEFAULT_WINDOW_US,
    VIEWS_DEFAULT_WINDOW_US,
    HostProfiler,
    PrimitiveCollector,
    SeriesCollector,
    Tracer,
    UtilizationCollector,
    ViewCollector,
    analyze,
    breakdown,
    breakdown_rows,
    critpath_profile,
    critpath_rows,
    format_analysis,
    write_chrome_trace,
)
from repro.obs.critpath import format_contributors


def measured_roots(tracer):
    """The root spans of operations counted in the measurement window."""
    return [root for root in tracer.roots
            if root.end is not None and root.attrs.get("measured")]


def run_traced_point(kind, flavor, workload_factory, n_clients,
                     trace_path=None, utilization=None, primitives=None,
                     **kwargs):
    """One measurement point with span tracing on.

    Returns ``(result, report, tracer)`` where ``report`` is the
    :func:`repro.obs.breakdown` over the measured operations. With
    ``trace_path``, also writes the Chrome trace-event file. Pass a
    :class:`repro.obs.UtilizationCollector` as ``utilization`` and/or
    a :class:`repro.obs.PrimitiveCollector` as ``primitives`` to also
    collect those telemetry families (read them back from the
    collectors after the call).
    """
    tracer = Tracer()
    result = run_point(kind, flavor, workload_factory, n_clients,
                       tracer=tracer, utilization=utilization,
                       primitives=primitives, **kwargs)
    report = breakdown(measured_roots(tracer))
    if trace_path:
        write_chrome_trace(tracer.roots, trace_path,
                           process_spans=tracer.process_spans)
    return result, report, tracer


def print_breakdown(title, report):
    headers, rows = breakdown_rows(report)
    print_table(title, headers, rows)


def print_critpath(title, profile):
    """Critical-path profile table + per-op contributor lines."""
    headers, rows = critpath_rows(profile)
    print_table(title, headers, rows)
    print(format_contributors(profile))


def check_critpath(result, profile, tolerance=1e-6):
    """Assert per-request critical-path sums equal measured latency.

    The critical path tiles ``[root.start, root.end]`` by
    construction, so the count-weighted mean of ``critical_sum_us``
    must equal the measured mean latency to float rounding.
    """
    total_ops = sum(entry["count"] for entry in profile.values())
    if total_ops == 0:
        raise AssertionError("no measured operations were traced")
    weighted = sum(entry["critical_sum_us"] * entry["count"]
                   for entry in profile.values()) / total_ops
    mean = result.mean_latency_us
    if abs(weighted - mean) > tolerance * max(mean, 1.0):
        raise AssertionError(
            f"critical-path sums ({weighted:.6f} µs) diverge from measured "
            f"mean latency ({mean:.6f} µs)")
    return weighted


def check_breakdown(result, report, tolerance=0.01):
    """Assert the phase sums reconcile with the measured mean latency.

    The measured mean is the count-weighted mean of the per-op-type
    means, so the weighted phase sums must match it within
    ``tolerance`` (they match exactly up to float rounding; the
    tolerance is the acceptance bound, not slack we expect to use).
    """
    total_ops = sum(entry["count"] for entry in report.values())
    if total_ops == 0:
        raise AssertionError("no measured operations were traced")
    weighted_sum = sum(entry["phase_sum_us"] * entry["count"]
                       for entry in report.values()) / total_ops
    mean = result.mean_latency_us
    if abs(weighted_sum - mean) > tolerance * mean:
        raise AssertionError(
            f"phase sums ({weighted_sum:.4f} µs) diverge from measured "
            f"mean latency ({mean:.4f} µs) by more than {tolerance:.0%}")
    return weighted_sum


def bench_main(kind, flavor, workload_maker, title, argv=None,
               default_clients=4, default_keys=4000, strict_sum=True,
               seed=None, benchmark=None, **point_kwargs):
    """Argparse front end shared by the ``benchmarks/bench_*`` scripts.

    ``workload_maker(n_keys)`` must return a ``workload_factory``
    suitable for :func:`run_point` (a per-client-index callable).
    ``strict_sum=False`` skips the sums-to-mean check for systems with
    parallel fan-out (quorum replication), whose phase sums read as
    total work across replicas rather than wall-clock latency.
    ``seed`` is recorded in ``--json`` output so regression baselines
    carry the workload seed; ``benchmark`` names the record (defaults
    to the title).
    """
    parser = argparse.ArgumentParser(description=title)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON file")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable result record "
                             "(repro.bench.regress schema) to PATH")
    parser.add_argument("--util", action="store_true",
                        help="print per-resource utilization and the "
                             "bottleneck verdict")
    parser.add_argument("--primitives", action="store_true",
                        help="print primitive-level telemetry (CAS "
                             "contention, pointer-chase depth, allocator "
                             "watermarks, key hotness) and the "
                             "critical-path profile")
    parser.add_argument("--clients", type=int, default=default_clients)
    parser.add_argument("--clients-aggregated", type=int, default=None,
                        metavar="N",
                        help="replace the closed-loop client coroutines "
                             "with aggregated open-loop arrival sources "
                             "modeling N clients (10⁵–10⁶ is fine; see "
                             "repro.workload.sources). The source-model "
                             "config is recorded in --json output")
    parser.add_argument("--arrival-rate", type=float, default=50.0,
                        metavar="OPS_PER_S",
                        help="with --clients-aggregated, each modeled "
                             "client's Poisson op rate (default 50 op/s)")
    parser.add_argument("--source-window", type=int, default=None,
                        metavar="W",
                        help="with --clients-aggregated, max ops in "
                             "flight per source coroutine (default: "
                             "population-scaled, see sources module)")
    parser.add_argument("--keys", type=int, default=default_keys)
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="run under a seeded fault plan, e.g. "
                             "seed=3,drop=0.01 (repro.faults.parse_faults "
                             "syntax); prints the goodput-under-faults "
                             "report")
    parser.add_argument("--profile", nargs="?", const="sample",
                        choices=["cprofile", "sample"], default=None,
                        metavar="MODE",
                        help="profile the simulator itself on the host "
                             "clock: meter events/sec and per-bucket wall "
                             "time, and capture the run as a cProfile "
                             "session (cprofile) or sampled collapsed "
                             "stacks (sample, the default)")
    parser.add_argument("--profile-stride", type=int, default=16,
                        metavar="N",
                        help="with --profile, time bucket attribution on "
                             "every N-th kernel event (default 16); "
                             "events/sec and counters stay exact, only "
                             "the bucket split is sampled. 1 restores "
                             "exhaustive attribution at higher observer "
                             "overhead")
    parser.add_argument("--series", nargs="?",
                        const=SERIES_DEFAULT_WINDOW_US, type=float,
                        default=None, metavar="WINDOW_US",
                        help="collect windowed time-series telemetry "
                             "(default window "
                             f"{SERIES_DEFAULT_WINDOW_US:g} µs): "
                             "sparklines, MSER steady-state verdict, "
                             "changepoint annotations; --json records "
                             "gain a series section")
    parser.add_argument("--views", nargs="?",
                        const=VIEWS_DEFAULT_WINDOW_US, type=float,
                        default=None, metavar="WINDOW_US",
                        help="install the online telemetry views (default "
                             f"window {VIEWS_DEFAULT_WINDOW_US:g} µs): "
                             "per-connection/per-key sliding-window rates, "
                             "EWMAs, and the shadow-probe decision log; "
                             "--json records gain a views section")
    args = parser.parse_args(argv)

    collector = (UtilizationCollector()
                 if (args.json or args.util or args.series) else None)
    primitives = PrimitiveCollector() if args.primitives else None
    hostprof = (HostProfiler(stride=args.profile_stride)
                if args.profile else None)
    series = SeriesCollector(args.series) if args.series else None
    views = ViewCollector(args.views) if args.views else None
    session = None
    if args.profile:
        from repro.obs.hostprof import profile_session
        session = profile_session(
            args.profile, prefix=benchmark or f"{kind}-{flavor}").start()
    source_model = None
    n_clients = args.clients
    if args.clients_aggregated is not None:
        source_model = {"rate_per_client_ops_s": args.arrival_rate,
                        "seed": seed or 0}
        if args.source_window is not None:
            source_model["window"] = args.source_window
        n_clients = args.clients_aggregated
    try:
        result, report, tracer = run_traced_point(
            kind, flavor, workload_maker(args.keys), n_clients,
            trace_path=args.trace, utilization=collector,
            primitives=primitives, n_keys=args.keys, faults=args.faults,
            hostprof=hostprof, series=series, views=views,
            source_model=source_model, **point_kwargs)
    finally:
        if session is not None:
            session.stop()
    print_table(title, ["clients", "ops", "Mops/s", "mean_us", "p99_us"],
                [[result.clients, result.ops,
                  round(result.throughput_ops_per_sec / 1e6, 3),
                  round(result.mean_latency_us, 2),
                  round(result.p99_latency_us, 2)]])
    if source_model is not None:
        model = result.extra["source_model"]
        print(f"source model: aggregated open-loop, "
              f"{model['clients']:,} modeled clients over "
              f"{model['n_sources']} sources at "
              f"{model['rate_per_client_ops_s']:g} op/s each "
              f"(window {model['window']}, "
              f"{result.extra['stalled_arrivals']} stalled arrivals)")
    print_breakdown(f"{title}: phase breakdown (mean µs per op)", report)
    faults_report = result.extra.get("faults")
    if faults_report is not None:
        print_faults(f"{title}: faults", faults_report)
    if strict_sum:
        weighted = check_breakdown(result, report)
        print(f"phase sum {weighted:.3f} µs == mean latency "
              f"{result.mean_latency_us:.3f} µs (within 1%)")
    else:
        total_ops = sum(entry["count"] for entry in report.values())
        weighted = (sum(entry["phase_sum_us"] * entry["count"]
                        for entry in report.values()) / total_ops
                    if total_ops else float("nan"))
        print(f"total traced work {weighted:.3f} µs/op vs wall-clock mean "
              f"{result.mean_latency_us:.3f} µs (parallel fan-out)")
    util_report = collector.report() if collector is not None else None
    if args.util:
        print_table(f"{title}: resource utilization (measurement window)",
                    UTILIZATION_HEADERS, utilization_rows(util_report))
        print(format_analysis(analyze(util_report)))
    primitives_report = None
    profile = None
    if args.primitives:
        primitives_report = primitives.report()
        profile = critpath_profile(measured_roots(tracer))
        print_primitives(f"{title}: primitive telemetry", primitives_report)
        print_critpath(f"{title}: critical path (mean µs per op)", profile)
        weighted = check_critpath(result, profile)
        print(f"critical-path sum {weighted:.3f} µs == mean latency "
              f"{result.mean_latency_us:.3f} µs (exact)")
    host_report = None
    if hostprof is not None:
        host_report = hostprof.report()
        print_host(f"{title}: host self-profile", host_report)
    series_report = None
    if series is not None:
        series_report = series.report(utilization=collector,
                                      faults=faults_report)
        print_series(f"{title}: time series", series_report)
    views_report = None
    if views is not None:
        views_report = views.report()
        print_views(f"{title}: online views", views_report)
    if args.json:
        from repro.bench.regress import (
            make_point,
            make_record,
            wall_section,
            write_record,
        )
        config = {"kind": kind, "flavor": flavor, "clients": n_clients,
                  "keys": args.keys, "seed": seed}
        if args.faults:
            config["faults"] = args.faults
        if source_model is not None:
            # The resolved model (with per-source windows) from the
            # harness, so the record reproduces the point exactly.
            config["source_model"] = result.extra["source_model"]
        config.update({key: value for key, value in point_kwargs.items()
                       if isinstance(value, (int, float, str, bool))})
        point = make_point(kind, flavor, result, config, phases=report,
                           utilization=util_report,
                           bottleneck=analyze(util_report),
                           primitives=primitives_report, critpath=profile,
                           faults=faults_report, host=host_report,
                           series=series_report, views=views_report,
                           wall=wall_section(result))
        write_record(make_record(benchmark or title, [point]), args.json)
        print(f"result record written to {args.json}")
    if args.trace:
        print(f"chrome trace written to {args.trace}")
    if session is not None:
        for path in session.paths:
            print(f"profile artifact written to {path}")
    return 0


class NullBenchmark:
    """pytest-benchmark stand-in for ``__main__`` runs.

    The benchmark scripts' test functions take the pytest-benchmark
    fixture; running one outside pytest only needs ``pedantic`` to
    call the target once and hand back its result — no timing, no
    stats. Lets ``standalone_main`` drive a test body unchanged.
    """

    def pedantic(self, target, args=(), kwargs=None, **_options):
        return target(*args, **(kwargs or {}))

    def __call__(self, target, *args, **kwargs):
        return target(*args, **kwargs)


def standalone_main(run, title, prefix=None, argv=None):
    """Minimal ``__main__`` for benchmark scripts without sweep plumbing.

    ``run()`` executes the benchmark and prints its own tables. The
    only flag is ``--profile[=cprofile|sample]``: an ambient
    :class:`~repro.obs.HostProfiler` meters every simulator the script
    builds internally, the whole run is captured as a cProfile session
    or sampled collapsed stacks, and the host self-profile is printed
    after the benchmark's own output.
    """
    parser = argparse.ArgumentParser(description=title)
    parser.add_argument("--profile", nargs="?", const="sample",
                        choices=["cprofile", "sample"], default=None,
                        metavar="MODE",
                        help="profile the simulator itself on the host "
                             "clock (events/sec, bucket shares, cProfile "
                             "or sampled collapsed stacks)")
    args = parser.parse_args(argv)
    if args.profile is None:
        run()
        return 0
    from repro.obs.hostprof import activate, deactivate, profile_session
    meter = activate(HostProfiler())
    session = profile_session(args.profile, prefix=prefix or "bench")
    try:
        with session:
            run()
    finally:
        deactivate(meter)
    if meter.events:
        print_host(f"{title}: host self-profile", meter.report())
    for path in session.paths:
        print(f"profile artifact written to {path}")
    return 0
