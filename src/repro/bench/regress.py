"""Machine-readable benchmark results and regression comparison.

Every benchmark run can be captured as a versioned JSON record —
config, seed, git commit, throughput, mean/p50/p99 latency, per-phase
breakdown, per-resource utilization, bottleneck verdict — via
``--json PATH`` on the bench CLI and the ``benchmarks/bench_fig*``
scripts. :func:`compare` then diffs two records under per-metric
tolerance bands, so "did this change regress fig3?" is a command with
an exit code instead of a table to eyeball::

    PYTHONPATH=src python benchmarks/bench_fig3_kv_read.py \\
        --clients 4 --keys 1000 --json /tmp/run.json
    PYTHONPATH=src python -m repro.bench.cli compare \\
        benchmarks/BENCH_baseline.json /tmp/run.json   # exit 1 on regression

The simulator is deterministic, so a same-commit self-compare matches
exactly; the tolerance bands absorb legitimate model recalibration and
cross-platform float noise, and anything beyond them is a regression.

Record shape (one file, one or more measurement points)::

    {"schema": "repro-bench-result", "schema_version": 3,
     "benchmark": "fig3",
     "provenance": {"git_commit": ..., "python": ...},
     "points": [{"id": "kv/prism-sw/c4",
                 "config": {...}, "metrics": {...},
                 "phases": {...}, "utilization": [...],
                 "bottleneck": {...},
                 "primitives": {...}, "critpath": {...},
                 "faults": {...}, "host": {...}}]}

All optional point fields are additive; v1 records (without
``primitives``/``critpath``) and v2 records (without ``host``) still
load and compare — only metrics present in both baseline and
tolerance bands are diffed.

The ``host`` section is *wall-clock* self-profiling of the simulator
itself (events/sec, host-time bucket shares; see
:mod:`repro.obs.hostprof`) — it describes the machine the benchmark
ran on, not the simulated system, so :func:`compare` only looks at it
in ``host=True`` mode, under deliberately wide bands that gate gross
(>2x) slowdowns of the simulator and nothing subtler.
"""

import json
import math
import platform
import subprocess

SCHEMA = "repro-bench-result"
#: v2 (additive over v1): points may carry "primitives" (the
#: PrimitiveCollector snapshot) and "critpath" (the per-op
#: critical-path profile). v3 (additive over v2): points may carry
#: "host" (wall-clock self-profiling of the simulator: events/sec,
#: wall seconds, bucket shares). v4 (additive over v3): points may
#: carry "series" (the windowed time-series report: per-window
#: throughput/latency/counters, MSER steady-state block, changepoint
#: annotations; see :mod:`repro.obs.series`). v5 (additive over v4):
#: points may carry "wall" (wall-clock cost of the simulated run:
#: wall_s, events_executed, events_per_sec) — recorded on every run,
#: unlike the richer "host" section which needs ``--profile``. v6
#: (additive over v5): points may carry "views" (the online
#: sliding-window telemetry report: end-of-run window rates, per-conn
#: EWMAs, hot keys, and the shadow-probe decision log; see
#: :mod:`repro.obs.views`). Every earlier field is unchanged, so this
#: tool still reads v1-v5 baselines.
SCHEMA_VERSION = 6
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6)

#: per-metric tolerance bands: direction is which way is *better*;
#: ``rel`` is the allowed relative degradation before failing
DEFAULT_TOLERANCES = {
    "throughput_ops_per_sec": {"direction": "higher", "rel": 0.02},
    "mean_us": {"direction": "lower", "rel": 0.02},
    "p50_us": {"direction": "lower", "rel": 0.02},
    "p99_us": {"direction": "lower", "rel": 0.05},
    "ops": {"direction": "higher", "rel": 0.02},
}

#: bands for ``compare(host=True)``: host wall-clock numbers vary with
#: load, CPU model, and interpreter version, so these are deliberately
#: wide — half the events/sec or double the wall time (a 2x simulator
#: slowdown) fails; anything subtler passes.
HOST_TOLERANCES = {
    "host.events_per_sec": {"direction": "higher", "rel": 0.5},
    "host.wall_s": {"direction": "lower", "rel": 1.0},
}

#: bands for ``compare(series=True)``: steady-state-only aggregates
#: from the windowed series (transient windows excluded by the MSER
#: detector), so these can be as tight as the end-of-run bands without
#: averaging warm-up noise into the gate.
SERIES_TOLERANCES = {
    "series.steady_tput_ops_per_sec": {"direction": "higher", "rel": 0.02},
    "series.steady_mean_us": {"direction": "lower", "rel": 0.02},
    "series.steady_p99_us": {"direction": "lower", "rel": 0.05},
}


def git_commit():
    """Current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def point_id(kind, flavor, clients):
    return f"{kind}/{flavor}/c{clients}"


def result_metrics(result):
    """The comparable metrics of a :class:`~repro.workload.driver.RunResult`."""
    return {
        "ops": result.ops,
        "throughput_ops_per_sec": result.throughput_ops_per_sec,
        "mean_us": result.mean_latency_us,
        "p50_us": result.median_latency_us,
        "p99_us": result.p99_latency_us,
        "aborts": result.aborts,
        "retries": result.retries,
    }


def wall_section(result):
    """The ``wall`` point section from a :class:`RunResult`.

    Returns None when the harness did not record wall timing (old
    callers leave ``wall_s`` at 0.0), keeping the section strictly
    additive.
    """
    wall_s = getattr(result, "wall_s", 0.0)
    if not wall_s:
        return None
    events = result.extra.get("events_executed", 0)
    return {
        "wall_s": wall_s,
        "events_executed": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
    }


def make_point(kind, flavor, result, config, phases=None, utilization=None,
               bottleneck=None, primitives=None, critpath=None, faults=None,
               host=None, series=None, views=None, wall=None):
    """One measurement point: config + metrics (+ optional telemetry).

    ``config`` must contain everything needed to reproduce the point
    (clients, keys, seed, windows); it is compared verbatim by
    :func:`compare`, so a config drift fails loudly instead of
    producing an apples-to-oranges diff.
    """
    point = {
        "id": point_id(kind, flavor, result.clients),
        "kind": kind,
        "flavor": flavor,
        "config": dict(config),
        "metrics": result_metrics(result),
    }
    if phases is not None:
        point["phases"] = phases
    if utilization is not None:
        point["utilization"] = utilization
    if bottleneck is not None:
        point["bottleneck"] = bottleneck
    if primitives is not None:
        point["primitives"] = primitives
    if critpath is not None:
        point["critpath"] = critpath
    if faults is not None:
        point["faults"] = faults
    if host is not None:
        point["host"] = host
    if series is not None:
        point["series"] = series
    if views is not None:
        point["views"] = views
    if wall is not None:
        point["wall"] = wall
    return point


def make_record(benchmark, points):
    """Wrap measurement points in the versioned result envelope."""
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "provenance": {
            "git_commit": git_commit(),
            "python": platform.python_version(),
        },
        "points": list(points),
    }


def write_record(record, path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_record(path):
    with open(path, encoding="utf-8") as handle:
        record = json.load(handle)
    if record.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} file")
    if record.get("schema_version") not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"{path}: schema_version {record.get('schema_version')} "
            f"(this tool speaks {SUPPORTED_SCHEMA_VERSIONS})")
    return record


# -- comparison -------------------------------------------------------------


def _is_nan(value):
    return isinstance(value, float) and math.isnan(value)


def _check_metric(metric, base, run, band):
    """One finding dict for one metric of one point."""
    finding = {"metric": metric, "baseline": base, "run": run,
               "limit_rel": band["rel"], "direction": band["direction"]}
    if _is_nan(base) and _is_nan(run):
        finding.update(status="ok", delta_rel=0.0)
        return finding
    if _is_nan(run):
        finding.update(status="regression", delta_rel=float("inf"))
        return finding
    if _is_nan(base) or base == 0:
        # No meaningful baseline: a real measurement can only be news.
        finding.update(status="ok", delta_rel=0.0)
        return finding
    delta = (run - base) / base
    if band["direction"] == "higher":
        degraded = delta < -band["rel"]
        improved = delta > 0
    else:
        degraded = delta > band["rel"]
        improved = delta < 0
    finding["delta_rel"] = delta
    finding["status"] = ("regression" if degraded
                         else "improved" if improved else "ok")
    return finding


def compare(baseline, run, tolerances=None, host=False, series=False):
    """Diff two result records; returns a report dict.

    ``report["ok"]`` is False when any baseline point is missing from
    the run, any point's config drifted, or any metric degraded beyond
    its tolerance band. Improvements never fail.

    ``host=True`` compares the *host* self-profiling sections instead
    of the simulated metrics, under :data:`HOST_TOLERANCES` — wide
    bands that only gate gross (>2x) simulator slowdowns. A baseline
    point without a ``host`` section (any v1/v2 record, or a run made
    without ``--profile``) is skipped silently: old baselines are not
    errors.

    ``series=True`` compares *steady-state-only* aggregates from the
    windowed series sections (``series.steady_state``), under
    :data:`SERIES_TOLERANCES` — the MSER detector has already excluded
    transient windows, so these gates never average warm-up noise. A
    baseline point without a ``series`` section (any v1-v3 record, or
    a run made without ``--series``) is skipped silently.

    ``host=True`` and ``series=True`` combine: every point is checked
    against *both* band families (the union of their metrics), and a
    trip in either fails the compare. ``tolerances`` overrides are
    looked up across the union of the selected families.
    """
    bands = {}
    if host:
        bands.update(HOST_TOLERANCES)
    if series:
        bands.update(SERIES_TOLERANCES)
    if not bands:
        bands = dict(DEFAULT_TOLERANCES)
    if tolerances:
        for metric, rel in tolerances.items():
            if metric not in bands:
                raise ValueError(f"no tolerance band for metric {metric!r}")
            bands[metric] = dict(bands[metric], rel=rel)

    findings = []
    run_points = {point["id"]: point for point in run["points"]}
    for base_point in baseline["points"]:
        pid = base_point["id"]
        run_point = run_points.get(pid)
        if run_point is None:
            findings.append({"point": pid, "metric": "-", "status": "missing",
                             "baseline": None, "run": None,
                             "delta_rel": None, "limit_rel": None,
                             "direction": None})
            continue
        drifted = sorted(
            key for key in
            set(base_point["config"]) | set(run_point["config"])
            if base_point["config"].get(key) != run_point["config"].get(key))
        if drifted:
            findings.append({
                "point": pid, "metric": f"config:{','.join(drifted)}",
                "status": "config-drift", "baseline": None, "run": None,
                "delta_rel": None, "limit_rel": None, "direction": None})
            continue
        if host:
            base_host = base_point.get("host")
            run_host = run_point.get("host") or {}
            for metric in HOST_TOLERANCES:
                if base_host is None:
                    break
                band = bands[metric]
                key = metric.split(".", 1)[1]
                if key not in base_host:
                    continue
                finding = _check_metric(metric, base_host[key],
                                        run_host.get(key, float("nan")),
                                        band)
                finding["point"] = pid
                findings.append(finding)
        if series:
            base_steady = (base_point.get("series") or {}).get("steady_state")
            run_steady = ((run_point.get("series") or {})
                          .get("steady_state") or {})
            for metric in SERIES_TOLERANCES:
                if base_steady is None:
                    break
                band = bands[metric]
                key = metric.split(".", 1)[1]
                if key not in base_steady:
                    continue
                finding = _check_metric(metric, base_steady[key],
                                        run_steady.get(key, float("nan")),
                                        band)
                finding["point"] = pid
                findings.append(finding)
        if host or series:
            continue
        for metric, band in bands.items():
            if metric not in base_point["metrics"]:
                continue
            finding = _check_metric(metric, base_point["metrics"][metric],
                                    run_point["metrics"].get(metric,
                                                             float("nan")),
                                    band)
            finding["point"] = pid
            findings.append(finding)

    bad = [f for f in findings
           if f["status"] in ("regression", "missing", "config-drift")]
    return {
        "ok": not bad,
        "baseline_commit": baseline.get("provenance", {}).get("git_commit"),
        "run_commit": run.get("provenance", {}).get("git_commit"),
        "findings": findings,
        "regressions": bad,
    }


def format_compare(report):
    """Plain-text rendering of a :func:`compare` report."""

    def fmt(value):
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = []
    for finding in report["findings"]:
        delta = finding.get("delta_rel")
        delta_text = "-" if delta is None else f"{delta:+.2%}"
        lines.append(
            f"  {finding['status']:<12} {finding['point']:<24} "
            f"{finding['metric']:<24} base={fmt(finding['baseline'])} "
            f"run={fmt(finding['run'])} delta={delta_text}")
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(f"compare: {verdict} "
                 f"({len(report['regressions'])} finding(s) over tolerance)")
    return "\n".join(lines)
