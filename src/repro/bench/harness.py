"""End-to-end system builders and closed-loop measurement points.

Every figure point is an independent, deterministic simulation: build
the fabric and servers fresh, bulk-load the data, attach N closed-loop
clients spread over the paper's 11 client machines, run
warmup + measurement, and report a :class:`RunResult`.

``flavor`` selects the paper's comparison systems:

========  =====================================  =========================
kind      flavor                                 system
========  =====================================  =========================
kv        prism-sw / prism-hw / prism-bluefield  PRISM-KV on that backend
kv        pilaf-hw / pilaf-sw                    Pilaf on hw/sw RDMA
rs        prism-sw / prism-hw                    PRISM-RS
rs        abdlock-hw / abdlock-sw                lock-based ABD
tx        prism-sw / prism-hw                    PRISM-TX
tx        farm-hw / farm-sw                      FaRM
========  =====================================  =========================
"""

import gc
import time

from repro.apps.blockstore import (
    AbdLockClient,
    AbdLockReplica,
    PrismRsClient,
    PrismRsReplica,
)
from repro.apps.kv import PilafClient, PilafServer, PrismKvClient, PrismKvServer
from repro.apps.tx import FarmClient, FarmServer, PrismTxClient, PrismTxServer
from repro.net.topology import RACK, make_fabric
from repro.prism import (
    BlueFieldPrismBackend,
    HardwarePrismBackend,
    HardwareRdmaBackend,
    SoftwarePrismBackend,
    SoftwareRdmaBackend,
)
from repro.sim import Simulator
from repro.workload.driver import ClosedLoopDriver, OpenLoopDriver
from repro.workload.sources import AggregatedOpenLoopSource, partition_clients

N_CLIENT_HOSTS = 11  # the paper's testbed: up to 11 client machines

_PRISM_BACKENDS = {
    "prism-sw": SoftwarePrismBackend,
    "prism-hw": HardwarePrismBackend,
    "prism-bluefield": BlueFieldPrismBackend,
}
_RDMA_BACKENDS = {
    "hw": HardwareRdmaBackend,
    "sw": SoftwareRdmaBackend,
}

DEFAULT_N_KEYS = 20_000
DEFAULT_VALUE_SIZE = 512


def _client_hosts(n):
    return [f"client{i}" for i in range(n)]


def _value_for(key, value_size):
    return bytes([(key * 31 + i) % 256 for i in range(8)]) * (value_size // 8)


class _System:
    """A built system: knows how to hand out client executors."""

    def __init__(self, sim, fabric):
        self.sim = sim
        self.fabric = fabric

    def executor(self, index, host):
        raise NotImplementedError


class KvSystem(_System):
    def __init__(self, sim, fabric, flavor, n_keys, value_size,
                 spare_buffers=4096):
        super().__init__(sim, fabric)
        self.flavor = flavor
        if flavor in _PRISM_BACKENDS:
            self.server = PrismKvServer(sim, fabric, "server",
                                        _PRISM_BACKENDS[flavor],
                                        n_keys=n_keys,
                                        max_value_bytes=value_size,
                                        spare_buffers=spare_buffers)
            loader = self.server.load
            self._make = lambda host: PrismKvClient(sim, fabric, host,
                                                    self.server)
        elif flavor in ("pilaf-hw", "pilaf-sw"):
            backend = _RDMA_BACKENDS[flavor.split("-")[1]]
            self.server = PilafServer(sim, fabric, "server", backend,
                                      n_keys=n_keys,
                                      max_value_bytes=value_size)
            loader = self.server.load
            self._make = lambda host: PilafClient(sim, fabric, host,
                                                  self.server)
        else:
            raise ValueError(f"unknown kv flavor {flavor!r}")
        for key in range(n_keys):
            loader(key, _value_for(key, value_size))

    def executor(self, index, host):
        return self._make(host).execute


class RsSystem(_System):
    N_REPLICAS = 3

    def __init__(self, sim, fabric, flavor, n_keys, value_size,
                 spare_buffers=4096):
        super().__init__(sim, fabric)
        self.flavor = flavor
        names = [f"replica{i}" for i in range(self.N_REPLICAS)]
        if flavor in _PRISM_BACKENDS:
            self.replicas = [
                PrismRsReplica(sim, fabric, name, _PRISM_BACKENDS[flavor],
                               n_blocks=n_keys, block_size=value_size,
                               spare_buffers=spare_buffers)
                for name in names]
            self._make = lambda host, cid: PrismRsClient(
                sim, fabric, host, self.replicas, client_id=cid)
        elif flavor in ("abdlock-hw", "abdlock-sw"):
            backend = _RDMA_BACKENDS[flavor.split("-")[1]]
            self.replicas = [
                AbdLockReplica(sim, fabric, name, backend,
                               n_blocks=n_keys, block_size=value_size)
                for name in names]
            self._make = lambda host, cid: AbdLockClient(
                sim, fabric, host, self.replicas, client_id=cid, seed=cid)
        else:
            raise ValueError(f"unknown rs flavor {flavor!r}")
        for key in range(n_keys):
            value = _value_for(key, value_size)
            for replica in self.replicas:
                replica.load(key, value)

    def executor(self, index, host):
        return self._make(host, index + 1).execute


class TxSystem(_System):
    def __init__(self, sim, fabric, flavor, n_keys, value_size,
                 spare_buffers=4096):
        super().__init__(sim, fabric)
        self.flavor = flavor
        if flavor in _PRISM_BACKENDS:
            self.server = PrismTxServer(sim, fabric, "server",
                                        _PRISM_BACKENDS[flavor],
                                        n_keys=n_keys, value_size=value_size,
                                        spare_buffers=spare_buffers)
            self._make = lambda host, cid: PrismTxClient(
                sim, fabric, host, self.server, client_id=cid)
        elif flavor in ("farm-hw", "farm-sw"):
            backend = _RDMA_BACKENDS[flavor.split("-")[1]]
            self.server = FarmServer(sim, fabric, "server", backend,
                                     n_keys=n_keys, value_size=value_size)
            self._make = lambda host, cid: FarmClient(
                sim, fabric, host, self.server, client_id=cid, seed=cid)
        else:
            raise ValueError(f"unknown tx flavor {flavor!r}")
        for key in range(n_keys):
            self.server.load(key, _value_for(key, value_size))

    def executor(self, index, host):
        return self._make(host, index + 1).execute


_KINDS = {"kv": KvSystem, "rs": RsSystem, "tx": TxSystem}
_SERVER_HOSTS = {
    "kv": ["server"],
    "rs": [f"replica{i}" for i in range(RsSystem.N_REPLICAS)],
    "tx": ["server"],
}


def build_system(kind, flavor, sim, n_keys=DEFAULT_N_KEYS,
                 value_size=DEFAULT_VALUE_SIZE, profile=RACK,
                 n_client_hosts=N_CLIENT_HOSTS, spare_buffers=4096):
    """Create fabric + servers + loaded data; returns the system."""
    hosts = _SERVER_HOSTS[kind] + _client_hosts(n_client_hosts)
    fabric = make_fabric(sim, profile, hosts)
    return _KINDS[kind](sim, fabric, flavor, n_keys, value_size,
                        spare_buffers=spare_buffers)


def run_point(kind, flavor, workload_factory, n_clients,
              n_keys=DEFAULT_N_KEYS, value_size=DEFAULT_VALUE_SIZE,
              warmup_us=300.0, measure_us=1500.0, profile=RACK,
              n_client_hosts=N_CLIENT_HOSTS, tracer=None,
              utilization=None, primitives=None, faults=None,
              hostprof=None, flight=None, series=None, views=None,
              source_model=None):
    """One deterministic measurement point.

    ``workload_factory(client_index)`` builds each client's workload.

    ``source_model`` switches the point from N closed-loop client
    coroutines to **aggregated open-loop arrival sources** (see
    :mod:`repro.workload.sources`): a dict with at least
    ``rate_per_client_ops_s``, plus optional ``read_fraction`` /
    ``zipf`` / ``seed`` / ``window`` / ``n_sources``. ``n_clients``
    then counts *modeled* clients (10⁵–10⁶ is fine), spread over
    ``n_sources`` coroutines (default: one per client host), and
    ``workload_factory`` is unused — the source draws its own keys.
    The model is recorded in ``result.extra["source_model"]``.
    Pass a :class:`repro.obs.Tracer` to collect per-operation span
    trees, a :class:`repro.obs.UtilizationCollector` to account
    per-resource busy time and queue depth, and/or a
    :class:`repro.obs.PrimitiveCollector` for primitive-level counters
    (CAS outcomes, pointer-chase depth, allocator watermarks, key
    hotness). The defaults leave all three off; none changes timing,
    since they only observe transitions the run already makes.

    ``faults`` takes a :class:`repro.faults.FaultPlan` (or a spec
    string for :func:`repro.faults.parse_faults`): the run then
    suffers the plan's seeded message loss/duplication/jitter, crash
    schedule, and free-list starvation, clients adopt the plan's retry
    policy, and the injector's counters land in
    ``result.extra["faults"]`` — the goodput-under-faults report.

    ``hostprof`` takes a :class:`repro.obs.HostProfiler`: the run is
    then metered on the *wall* clock (events/sec, per-bucket host-time
    shares) and the profiler's report — purely host-side, never
    affecting simulated timing — is the caller's to read afterwards.

    ``flight`` takes a :class:`repro.obs.FlightRecorder`: the run then
    leaves a bounded causal event log (operation open/close, request
    sends/replies/timeouts/backoffs, CAS misses, NAKs, chain aborts,
    fault injections) that :mod:`repro.obs.forensics` turns into
    per-request timelines and diagnoses. Like the other collectors it
    never touches simulated timing.

    ``series`` takes a :class:`repro.obs.SeriesCollector`: the run is
    then bucketed into fixed-width windows on the simulated clock
    (throughput, goodput, latency digests, retry/NAK counters), with
    MSER steady-state detection and changepoint annotation on top (see
    :mod:`repro.obs.series`). Also timing-neutral.

    ``views`` takes a :class:`repro.obs.ViewCollector`: the run then
    maintains *online* sliding-window signals (per-connection/per-key
    CAS retry, NAK, chase-depth, timeout/backoff, service-time rates
    and EWMAs) queryable mid-run by application code and shadow-mode
    probes, whose decisions land in the collector's bounded decision
    log (see :mod:`repro.obs.views`). Also timing-neutral.
    """
    sim = Simulator()
    if hostprof is not None:
        sim.set_hostprof(hostprof)
    if flight is not None:
        sim.set_flight(flight)
    if series is not None:
        sim.set_series(series.configure(warmup_us, measure_us))
    if views is not None:
        sim.set_views(views)
    if faults is not None:
        if isinstance(faults, str):
            from repro.faults import parse_faults
            faults = parse_faults(faults)
        sim.set_faults(faults)
    if tracer is not None:
        sim.set_tracer(tracer)
    if utilization is not None:
        sim.set_utilization(utilization)
        # Report utilization over the measurement window, not warmup.
        utilization.measure_from = warmup_us
        utilization.measure_until = warmup_us + measure_us
    if primitives is not None:
        sim.set_primitives(primitives)
    if source_model is not None:
        spec = dict(source_model)
        n_sources = min(spec.pop("n_sources", n_client_hosts), n_clients)
        rate = spec.pop("rate_per_client_ops_s")
        sources = [
            AggregatedOpenLoopSource(
                chunk, rate, n_keys,
                read_fraction=spec.get("read_fraction", 1.0),
                value_size=value_size, zipf=spec.get("zipf", 0.0),
                seed=spec.get("seed", 0), source_id=i,
                window=spec.get("window"))
            for i, chunk in
            enumerate(partition_clients(n_clients, n_sources))]
        # In-flight concurrency is bounded by the windows, not the
        # modeled population — size the buffer pipeline to the windows.
        concurrency = sum(source.window for source in sources)
    else:
        sources = None
        concurrency = n_clients
    # Spare buffers must cover the recycling pipeline: retired buffers
    # sit in client-side batches and the daemon queue before reposting.
    system = build_system(kind, flavor, sim, n_keys=n_keys,
                          value_size=value_size, profile=profile,
                          n_client_hosts=n_client_hosts,
                          spare_buffers=4096 + 48 * concurrency)
    if sources is not None:
        driver = OpenLoopDriver(sim, warmup_us=warmup_us,
                                measure_us=measure_us, tracer=sim.tracer)
        for index, source in enumerate(sources):
            host = f"client{index % n_client_hosts}"
            driver.add_source(system.executor(index, host), source)
    else:
        driver = ClosedLoopDriver(sim, warmup_us=warmup_us,
                                  measure_us=measure_us, tracer=sim.tracer)
        for index in range(n_clients):
            host = f"client{index % n_client_hosts}"
            driver.add_client(system.executor(index, host),
                              workload_factory(index))
    # The run allocates heavily (events, spans) but retains almost
    # nothing cycle-forming; generational GC passes mid-run are pure
    # overhead. Simulated results are unaffected (GC never changes
    # program semantics), so pause collection for the measured run.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    wall_start = time.perf_counter()
    try:
        result = driver.run()
    finally:
        wall_s = time.perf_counter() - wall_start
        if gc_was_enabled:
            gc.enable()
    result.extra["events_executed"] = sim.events_executed
    # Wall-clock cost of the simulated run itself (setup and analysis
    # excluded): the regress schema's ``wall`` section, available on
    # every run — unlike the ``host`` section, which needs --profile.
    # Stored on the equality-excluded field, not ``extra``: wall time
    # is host-side and must not break exact RunResult comparisons.
    result.wall_s = wall_s
    if sources is not None:
        model = sources[0].describe()
        model["clients"] = n_clients
        model["n_sources"] = len(sources)
        model["windows"] = [source.window for source in sources]
        result.extra["source_model"] = model
    if hostprof is not None:
        from repro.obs.hostprof import deactivate
        deactivate(hostprof)
    if utilization is not None:
        utilization.finish(sim.now)
    if series is not None:
        series.finish(sim.now)
    if views is not None:
        views.finish(sim.now)
    if sim.faults is not None:
        report = sim.faults.report()
        # Goodput: operations that *completed* per second of measured
        # time, i.e. the throughput that survived the fault plan.
        report["goodput_mops"] = result.throughput_ops_per_sec / 1e6
        result.extra["faults"] = report
    return result


def sweep_clients(kind, flavor, workload_factory, client_counts, **kwargs):
    """Throughput-vs-latency curve: one run_point per client count."""
    return [run_point(kind, flavor, workload_factory, n, **kwargs)
            for n in client_counts]
