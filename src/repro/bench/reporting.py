"""Plain-text tables for benchmark output (and EXPERIMENTS.md)."""

import os


def print_table(title, headers, rows, out=print):
    """Render an aligned text table.

    ``rows`` is a list of sequences; floats are formatted to two
    decimals.
    """
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    formatted = [[fmt(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(row[i]) for row in formatted), default=0))
              for i in range(len(headers))]
    out("")
    out(f"== {title} ==")
    out("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out("  ".join("-" * w for w in widths))
    for row in formatted:
        out("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    out("")


def curve_rows(results):
    """Rows for a throughput/latency sweep table."""
    return [[r.clients, round(r.throughput_ops_per_sec / 1e6, 3),
             round(r.mean_latency_us, 2), round(r.p99_latency_us, 2),
             r.aborts]
            for r in results]


CURVE_HEADERS = ["clients", "Mops/s", "mean_us", "p99_us", "aborts"]


def peak_throughput(results):
    """Max throughput across a sweep (the 'saturation' number)."""
    return max(r.throughput_ops_per_sec for r in results)


def maybe_export(figure_name, curves):
    """Write a figure's sweep data when REPRO_EXPORT_DIR is set.

    Benchmarks call this after printing their tables; with
    ``REPRO_EXPORT_DIR=figures pytest benchmarks/ --benchmark-only``
    every figure's CSV + gnuplot script lands in that directory.
    """
    out_dir = os.environ.get("REPRO_EXPORT_DIR")
    if not out_dir:
        return None
    from repro.bench.export import export_sweep_figure
    return export_sweep_figure(figure_name, curves, out_dir=out_dir)


UTILIZATION_HEADERS = ["resource", "kind", "busy", "q_mean", "q_max",
                       "q_delay_p99_us"]


def utilization_rows(report, top=None):
    """Rows for a per-resource utilization table, busiest first.

    ``report`` is :meth:`repro.obs.UtilizationCollector.report` output.
    Resources without a capacity ceiling (channels, fabric occupancy)
    sort after capacity-bearing ones and show ``-`` for busy fraction.
    """
    def order(entry):
        util = entry.get("utilization")
        return (0, -util) if util is not None else (1, 0.0)

    rows = []
    for entry in sorted(report, key=order):
        queue = entry.get("queue", {})
        delay = queue.get("delay_us") or {}
        util = entry.get("utilization")
        p99 = delay.get("p99")
        rows.append([
            entry["name"], entry["kind"],
            "-" if util is None else round(util, 3),
            round(queue.get("mean_depth", 0.0), 2),
            queue.get("max_depth", 0),
            "-" if p99 is None or p99 != p99 else round(p99, 2),
        ])
    return rows[:top] if top else rows


def _fmt_hist(items, limit=8):
    """``[[bucket, count], ...]`` as ``{bucket: count, ...}`` text."""
    if not items:
        return "{}"
    shown = ", ".join(f"{bucket}: {count}" for bucket, count
                      in items[:limit])
    more = "" if len(items) <= limit else ", ..."
    return "{" + shown + more + "}"


def _fmt_topk(entries, limit=5):
    if not entries:
        return "(none)"
    return ", ".join(
        (f"{entry['key']:#x}" if isinstance(entry["key"], int)
         else str(entry["key"])) + f" x{entry['count']}"
        for entry in entries[:limit])


def primitives_report_lines(report, top=5):
    """Human-readable rendering of a
    :meth:`repro.obs.PrimitiveCollector.report` snapshot."""
    cas = report["cas"]
    chains = report["chains"]
    chase = report["pointer_chase"]
    lines = []
    lines.append(
        f"CAS: {cas['attempts']} attempts, {cas['misses']} misses "
        f"({cas['miss_rate']:.2%}), retry chains "
        f"{_fmt_hist(cas['retry_chains'])} "
        f"(open: {cas['open_retry_chains']})")
    for mode, outcomes in cas["by_mode"].items():
        lines.append(f"  mode {mode}: ok={outcomes['ok']} "
                     f"miss={outcomes['miss']}")
    lines.append("  contended addresses (top-K by misses): "
                 + _fmt_topk(cas["contended_topk"], top))
    lines.append("  hot targets (top-K by attempts): "
                 + _fmt_topk(cas["hot_targets_topk"], top))
    lines.append(
        f"chains: {chains['requests']} requests "
        f"({chains['committed']} committed, {chains['aborted']} aborted), "
        f"lengths {_fmt_hist(chains['lengths'])}, "
        f"derefs/chain {_fmt_hist(chains['hops'])}")
    if chains["abort_reasons"]:
        reasons = ", ".join(f"{reason}: {count}" for reason, count
                            in chains["abort_reasons"].items())
        lines.append(f"  abort reasons: {reasons}")
    if chains["nak_reasons"]:
        naks = "; ".join(
            f"{opname}: " + ", ".join(f"{cls} x{count}" for cls, count
                                      in classes.items())
            for opname, classes in chains["nak_reasons"].items())
        lines.append(f"  NAKs: {naks}")
    lines.append(
        f"  ops executed {chains['ops_executed']}, "
        f"skipped {chains['ops_skipped']}")
    if chase["depth_by_op"]:
        depths = "; ".join(f"{opname} {_fmt_hist(hist)}" for opname, hist
                           in chase["depth_by_op"].items())
        lines.append(f"pointer chase (derefs per op): {depths} "
                     f"(bounded reads: {chase['bounded_reads']})")
    if report["allocator"]:
        lines.append("allocator free-list watermarks:")
        for row in report["allocator"]:
            lines.append(
                f"  {row['name']}#{row['freelist']}: "
                f"depth {row['depth']}/{row['capacity']} "
                f"(occupancy {row['occupancy']:.1%}), low watermark "
                f"{row['low_watermark']} (lifetime "
                f"{row['lifetime_low_watermark']}), pops {row['pops']}, "
                f"exhaustions {row['exhaustions']}")
    if report["keys"]:
        lines.append("hot keys (top-K per app):")
        for app, entry in report["keys"].items():
            ops = ", ".join(f"{kind}: {count}" for kind, count
                            in entry["ops"].items())
            lines.append(f"  {app} ({ops}): " + _fmt_topk(entry["topk"], top))
    return lines


def print_primitives(title, report, top=5, out=print):
    """Print the primitive-telemetry report as a titled block."""
    out("")
    out(f"== {title} ==")
    for line in primitives_report_lines(report, top=top):
        out(line)
    out("")


def faults_report_lines(report):
    """Human-readable goodput-under-faults summary.

    ``report`` is the dict :func:`repro.bench.harness.run_point` stores
    in ``result.extra["faults"]`` (the injector's counters plus the
    bound plan and the run's goodput).
    """
    plan = report.get("plan", {})
    retry = plan.get("retry", {})
    lines = []
    crashes = plan.get("crashes", [])
    lines.append(
        f"plan: seed={plan.get('seed')} drop={plan.get('drop', 0.0):g} "
        f"dup={plan.get('duplicate', 0.0):g} "
        f"jitter={plan.get('jitter_us', 0.0):g}us "
        f"crashes={len(crashes)} starve={plan.get('starve', 0.0):g}")
    lines.append(
        f"retry policy: timeout={retry.get('timeout_us', 0.0):g}us, "
        f"max_retries={retry.get('max_retries')}, backoff "
        f"{retry.get('backoff_base_us', 0.0):g}.."
        f"{retry.get('backoff_max_us', 0.0):g}us")
    lines.append(
        f"injected: {report.get('messages_dropped', 0)} dropped, "
        f"{report.get('messages_duplicated', 0)} duplicated, "
        f"{report.get('messages_delayed', 0)} delayed "
        f"(+{report.get('delay_injected_us', 0.0):g}us), "
        f"{report.get('crash_drops', 0)} killed at down hosts")
    if crashes or report.get("crashes", 0):
        hosts_down = report.get("hosts_down", [])
        lines.append(
            f"crashes: {report.get('crashes', 0)} fired, "
            f"{report.get('recoveries', 0)} recovered, still down: "
            + (", ".join(hosts_down) if hosts_down else "(none)"))
    if report.get("starved_buffers", 0):
        lines.append(
            f"starvation: {report.get('starved_buffers', 0)} buffers "
            f"withheld, {report.get('restored_buffers', 0)} restored")
    lines.append(
        f"recovered: {report.get('timeouts', 0)} timeouts, "
        f"{report.get('retransmissions', 0)} retransmissions, "
        f"{report.get('retries_exhausted', 0)} gave up, "
        f"{report.get('recycles_abandoned', 0)} recycle reports abandoned")
    goodput = report.get("goodput_mops")
    if goodput is not None:
        lines.append(f"goodput under faults: {goodput:.3f} Mops/s")
    return lines


def print_faults(title, report, out=print):
    """Print the goodput-under-faults report as a titled block."""
    out("")
    out(f"== {title} ==")
    for line in faults_report_lines(report):
        out(line)
    out("")


def host_report_lines(report):
    """Human-readable simulator self-profile summary.

    ``report`` is :meth:`repro.obs.HostProfiler.report` output — wall
    clock only, so these numbers describe the machine running the
    simulation, never the simulated system.
    """
    lines = []
    stride = report.get("stride", 1)
    sampled = "" if stride == 1 else f" (sampling 1/{stride} events)"
    lines.append(
        f"host: {report['events']} events in {report['wall_s']:.3f}s wall "
        f"= {report['events_per_sec']:,.0f} events/s, "
        f"{report['resumes_per_sec']:,.0f} resumes/s{sampled}")
    buckets = report.get("buckets", {})
    parts = [f"{name} {entry['share']:.1%}"
             for name, entry in buckets.items() if entry["seconds"] > 0]
    if parts:
        lines.append(
            "  attribution: " + ", ".join(parts)
            + f" (attributed {report['attributed_share']:.1%} of wall)")
    return lines


def print_host(title, report, out=print):
    """Print the host self-profile as a titled block."""
    out("")
    out(f"== {title} ==")
    for line in host_report_lines(report):
        out(line)
    out("")


def flight_summary_lines(dump, top=3):
    """Human-readable flight-recorder digest: counts + worst stories.

    ``dump`` is :meth:`repro.obs.FlightRecorder.to_dict` output (or a
    loaded flight dump). Shows the ring-buffer health line, the
    anomaly count, and the ``top`` worst requests' one-line headers —
    the full narratives live in the ``explain`` subcommand.
    """
    from repro.obs.forensics import (
        crash_windows,
        is_anomalous,
        timelines,
        worst_requests,
    )
    by_op, global_events = timelines(dump.get("events", []))
    anomalous = sum(1 for tl in by_op.values() if is_anomalous(tl))
    lines = [
        f"flight: {dump.get('recorded', 0)} events recorded "
        f"({dump.get('evicted', 0)} evicted, capacity "
        f"{dump.get('capacity', 0)}), {dump.get('ops_opened', 0)} ops, "
        f"{anomalous} anomalous"
    ]
    windows = crash_windows(global_events)
    for host, down, up in windows:
        up_text = f"{up:.0f} µs" if up != float("inf") else "end of run"
        lines.append(f"  crash window: {host} down {down:.0f} µs -> "
                     f"{up_text}")
    for timeline in worst_requests(by_op, top=top)[:top]:
        latency = timeline["latency_us"]
        if latency is None:
            latency = timeline["end"] - timeline["start"]
        lines.append(
            f"  worst: op #{timeline['op']} {timeline['kind'] or '?'} "
            f"(client {timeline['client']}) {latency:.2f} µs "
            f"status={timeline['status']}")
    return lines


def print_flight(title, dump, top=3, out=print):
    """Print the flight-recorder digest as a titled block."""
    out("")
    out(f"== {title} ==")
    for line in flight_summary_lines(dump, top=top):
        out(line)
    out("")


#: sparkline glyphs, lowest to highest (space = empty window)
SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def sparkline(values):
    """Render ``values`` as a block-character sparkline.

    ``None``/NaN entries render as spaces (no data); otherwise values
    scale linearly between the series min and max. A flat non-empty
    series renders at mid-height so it reads as "present and steady".
    """
    cleaned = [None if v is None or v != v else v for v in values]
    present = [v for v in cleaned if v is not None]
    if not present:
        return " " * len(values)
    low, high = min(present), max(present)
    span = high - low
    glyphs = SPARK_GLYPHS[1:]
    chars = []
    for v in cleaned:
        if v is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(glyphs[len(glyphs) // 2])
        else:
            index = int((v - low) / span * (len(glyphs) - 1) + 0.5)
            chars.append(glyphs[index])
    return "".join(chars)


def _series_marker_line(report, n_shown):
    """One marker char per window: w/s boundaries, f faults, ! deviations."""
    window_us = report["window_us"]
    steady = report.get("steady_state", {})
    marks = [" "] * n_shown

    def mark(index, char):
        if 0 <= index < len(marks) and marks[index] == " ":
            marks[index] = char

    for annotation in report.get("annotations", []):
        if annotation["kind"] == "fault.drop":
            # The aggregate drop annotation spans first..last injected
            # drop; marking that whole span would flood the line under
            # a scattered low-rate plan. Drop windows are marked from
            # their own counters below.
            continue
        first = int(annotation["start_us"] // window_us)
        last = int(max(annotation["end_us"] - 1e-9, annotation["start_us"])
                   // window_us)
        char = "f" if annotation["kind"].startswith("fault.") else "!"
        for index in range(first, last + 1):
            mark(index, char)
    for index, window in enumerate(report["windows"][:n_shown]):
        counters = window.get("counters") or {}
        if any(counters.get(name) for name in
               ("drops", "dups", "delays", "crash_drops")):
            mark(index, "f")
    mark(int(steady.get("configured_warmup_us", 0.0) // window_us), "w")
    mark(int(steady.get("steady_from_us", 0.0) // window_us), "s")
    return "".join(marks)


def series_report_lines(report, out_width=72):
    """Human-readable windowed-series summary with sparklines.

    ``report`` is :meth:`repro.obs.SeriesCollector.report` output.
    Two sparklines (throughput, mean latency) over the window grid, a
    marker line (``w`` warmup boundary, ``s`` steady-state start,
    ``f`` fault window, ``!`` deviation), the MSER steady-state
    verdict, the reconciliation line, and one line per annotation.
    """
    steady = report.get("steady_state", {})
    recon = report.get("reconciliation", {})
    # Render up to the end of the measurement window: the drain tail
    # (in-flight ops completing after it) is a few sparse part-width
    # windows whose inflated per-µs rates would dominate the scale.
    measure_end = report["measure_end_us"]
    windows = [w for w in report["windows"] if w["start"] < measure_end]
    drained = report["n_windows"] - len(windows)
    tail = f" + {drained} drain" if drained else ""
    lines = [
        f"series: {report['n_windows']} windows x "
        f"{report['window_us']:g} µs "
        f"(run {report['run_end_us']:.0f} µs, measure ends "
        f"{measure_end:.0f} µs; showing {len(windows)}{tail})"
    ]
    tput = [w["tput_ops_per_sec"] / 1e6 or None for w in windows]
    lat = [w["lat_mean_us"] if w["ops"] else None for w in windows]
    lines.append(f"  tput  |{sparkline(tput)}| peak "
                 f"{max((v or 0.0) for v in tput):.3f} Mops/s")
    lines.append(f"  lat   |{sparkline(lat)}| mean "
                 f"{steady.get('band', {}).get('mean', float('nan')):.2f} µs "
                 f"steady")
    marker = _series_marker_line(report, len(windows))
    if marker.strip():
        lines.append(f"        |{marker}| w=warmup s=steady f=fault "
                     f"!=deviation")
    transient = steady.get("transient_end_us", 0.0)
    warmup = steady.get("configured_warmup_us", 0.0)
    if steady.get("warmup_sufficient", True):
        lines.append(
            f"  steady state: transient ends {transient:.0f} µs (MSER); "
            f"warmup {warmup:g} µs covers it [OK]")
    else:
        lines.append(
            f"  WARNING: detected transient ({transient:.0f} µs) is longer "
            f"than configured warmup ({warmup:g} µs) — measured window "
            f"includes warm-up noise; raise --warmup-us")
    lines.append(
        f"  steady window: {steady.get('steady_windows', 0)} windows from "
        f"{steady.get('steady_from_us', 0.0):.0f} µs, "
        f"{steady.get('steady_measured_ops', 0)} measured ops, "
        f"mean {steady.get('steady_mean_us', float('nan')):.2f} µs, "
        f"p99 {steady.get('steady_p99_us', float('nan')):.2f} µs, "
        f"{steady.get('steady_tput_ops_per_sec', 0.0) / 1e6:.3f} Mops/s")
    merged = recon.get("merged", {})
    exact = "exact" if recon.get("digest_exact") else "approx (compressed)"
    lines.append(
        f"  reconciliation: window measured sum "
        f"{recon.get('window_measured_sum')} "
        f"{'==' if recon.get('window_measured_sum') == recon.get('measured_ops') else '!='} "
        f"{recon.get('measured_ops')} measured ops; merged digest "
        f"p50 {merged.get('p50_us', float('nan')):.2f} / "
        f"p99 {merged.get('p99_us', float('nan')):.2f} µs [{exact}]")
    annotations = report.get("annotations", [])
    if annotations:
        lines.append(f"  annotations ({len(annotations)}):")
        for annotation in annotations:
            cause = annotation.get("cause")
            suffix = f" — cause: {cause}" if cause else ""
            lines.append(
                f"    [{annotation['kind']}] "
                f"{annotation['start_us']:.0f}..{annotation['end_us']:.0f} µs"
                f" {annotation['label']}{suffix}")
    else:
        lines.append("  annotations: none (steady run)")
    for row in report.get("utilization", []):
        lines.append(f"  busy  |{sparkline(row['busy'][:len(windows)])}| "
                     f"{row['name']} ({row['kind']})")
    return lines


def print_series(title, report, out=print):
    """Print the windowed-series report as a titled block."""
    out("")
    out(f"== {title} ==")
    for line in series_report_lines(report):
        out(line)
    out("")


def views_report_lines(report, top=5):
    """Human-readable online-views summary with decision transcript.

    ``report`` is :meth:`repro.obs.ViewCollector.report` output: the
    end-of-run state of the sliding-window signals (totals plus the
    rate over the final window), the per-connection EWMA views, the
    hot contended addresses, and the shadow-probe decision log.
    """
    signals = report.get("signals", {})
    decisions = report.get("decisions", {})
    lines = []
    parts = [f"{name} {entry['total']:g}"
             for name, entry in signals.items() if entry["total"]]
    lines.append(
        f"views: window {report['window_us']:g} µs x "
        f"{report['n_buckets']} buckets; totals "
        + (", ".join(parts) if parts else "(no signals)"))
    conns = report.get("connections", {})
    shown = sorted(conns.items())[:top]
    for conn, row in shown:
        chase = row.get("chase_depth_ewma", float("nan"))
        service = row.get("service_time_ewma_us", float("nan"))
        lines.append(
            f"  conn {conn}: cas {row.get('cas_attempt_total', 0):g} "
            f"({row.get('cas_retry_total', 0):g} retries), "
            f"chase ewma {chase:.2f} "
            f"(p99 {row.get('chase_depth_p99', float('nan')):.2f}), "
            f"service ewma {service:.2f} µs, "
            f"timeouts {row.get('timeout_total', 0):g}, "
            f"backoffs {row.get('backoff_total', 0):g}")
    if len(conns) > len(shown):
        lines.append(f"  ... and {len(conns) - len(shown)} more connection(s)")
    hot = report.get("hot_keys", [])
    if hot:
        lines.append("  hot CAS targets: " + ", ".join(
            (f"{entry['key']:#x}" if isinstance(entry["key"], int)
             else str(entry["key"]))
            + f" x{entry['cas_retry_total']:g}" for entry in hot[:top])
            + (f" ({report.get('evicted_keys', 0)} keys evicted)"
               if report.get("evicted_keys") else ""))
    recorded = decisions.get("recorded", 0)
    lines.append(
        f"  decisions: {recorded} recorded "
        f"({decisions.get('evicted', 0)} evicted, capacity "
        f"{decisions.get('capacity', 0)}); probes: "
        + (", ".join(report.get("probes", [])) or "(none)"))
    for entry in decisions.get("log", []):
        inputs = entry.get("inputs", {})
        detail = ", ".join(
            f"{key}={value:.3g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in inputs.items() if key != "conn")
        lines.append(
            f"    [{entry['t_us']:.1f} µs] {entry['name']} "
            f"conn={inputs.get('conn', '-')}: {entry['verdict']} ({detail})")
    return lines


def print_views(title, report, top=5, out=print):
    """Print the online-views report as a titled block."""
    out("")
    out(f"== {title} ==")
    for line in views_report_lines(report, top=top):
        out(line)
    out("")


def low_load_latency(results):
    """Mean latency of the single-client point."""
    for r in results:
        if r.clients == min(x.clients for x in results):
            return r.mean_latency_us
    raise ValueError("empty sweep")
