"""Plain-text tables for benchmark output (and EXPERIMENTS.md)."""

import os


def print_table(title, headers, rows, out=print):
    """Render an aligned text table.

    ``rows`` is a list of sequences; floats are formatted to two
    decimals.
    """
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    formatted = [[fmt(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(row[i]) for row in formatted), default=0))
              for i in range(len(headers))]
    out("")
    out(f"== {title} ==")
    out("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out("  ".join("-" * w for w in widths))
    for row in formatted:
        out("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    out("")


def curve_rows(results):
    """Rows for a throughput/latency sweep table."""
    return [[r.clients, round(r.throughput_ops_per_sec / 1e6, 3),
             round(r.mean_latency_us, 2), round(r.p99_latency_us, 2),
             r.aborts]
            for r in results]


CURVE_HEADERS = ["clients", "Mops/s", "mean_us", "p99_us", "aborts"]


def peak_throughput(results):
    """Max throughput across a sweep (the 'saturation' number)."""
    return max(r.throughput_ops_per_sec for r in results)


def maybe_export(figure_name, curves):
    """Write a figure's sweep data when REPRO_EXPORT_DIR is set.

    Benchmarks call this after printing their tables; with
    ``REPRO_EXPORT_DIR=figures pytest benchmarks/ --benchmark-only``
    every figure's CSV + gnuplot script lands in that directory.
    """
    out_dir = os.environ.get("REPRO_EXPORT_DIR")
    if not out_dir:
        return None
    from repro.bench.export import export_sweep_figure
    return export_sweep_figure(figure_name, curves, out_dir=out_dir)


UTILIZATION_HEADERS = ["resource", "kind", "busy", "q_mean", "q_max",
                       "q_delay_p99_us"]


def utilization_rows(report, top=None):
    """Rows for a per-resource utilization table, busiest first.

    ``report`` is :meth:`repro.obs.UtilizationCollector.report` output.
    Resources without a capacity ceiling (channels, fabric occupancy)
    sort after capacity-bearing ones and show ``-`` for busy fraction.
    """
    def order(entry):
        util = entry.get("utilization")
        return (0, -util) if util is not None else (1, 0.0)

    rows = []
    for entry in sorted(report, key=order):
        queue = entry.get("queue", {})
        delay = queue.get("delay_us") or {}
        util = entry.get("utilization")
        p99 = delay.get("p99")
        rows.append([
            entry["name"], entry["kind"],
            "-" if util is None else round(util, 3),
            round(queue.get("mean_depth", 0.0), 2),
            queue.get("max_depth", 0),
            "-" if p99 is None or p99 != p99 else round(p99, 2),
        ])
    return rows[:top] if top else rows


def low_load_latency(results):
    """Mean latency of the single-client point."""
    for r in results:
        if r.clients == min(x.clients for x in results):
            return r.mean_latency_us
    raise ValueError("empty sweep")
