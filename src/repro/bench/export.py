"""Export figure data as CSV / gnuplot-ready files.

The benchmark suite prints human tables; this module writes the same
series to disk so users can regenerate the paper's plots::

    from repro.bench.export import FigureData
    fig = FigureData("fig3", x_label="throughput_mops",
                     y_label="mean_latency_us")
    fig.add_series("prism-kv", [(r.throughput_ops_per_sec / 1e6,
                                 r.mean_latency_us) for r in results])
    fig.write_csv("out/fig3.csv")
    fig.write_gnuplot("out/fig3.gp", "out/fig3.csv")
"""

import os


class FigureData:
    """Named (x, y) series for one figure."""

    def __init__(self, name, x_label="x", y_label="y"):
        self.name = name
        self.x_label = x_label
        self.y_label = y_label
        self.series = {}   # name -> [(x, y), ...]

    def add_series(self, series_name, points):
        if series_name in self.series:
            raise ValueError(f"duplicate series {series_name!r}")
        self.series[series_name] = [(float(x), float(y))
                                    for x, y in points]
        return self

    def add_sweep(self, series_name, results,
                  x=lambda r: r.throughput_ops_per_sec / 1e6,
                  y=lambda r: r.mean_latency_us):
        """Convenience for a list of RunResults (throughput/latency)."""
        return self.add_series(series_name,
                               [(x(result), y(result))
                                for result in results])

    # -- writers ------------------------------------------------------------

    def write_csv(self, path):
        """Long-format CSV: series,x,y — easy to pivot anywhere."""
        _ensure_parent(path)
        with open(path, "w") as handle:
            handle.write(f"series,{self.x_label},{self.y_label}\n")
            for series_name, points in self.series.items():
                for x, y in points:
                    handle.write(f"{series_name},{x:.6g},{y:.6g}\n")
        return path

    def write_gnuplot(self, path, csv_path, terminal="pngcairo"):
        """A gnuplot script that plots the CSV (one line per series)."""
        _ensure_parent(path)
        plots = ", \\\n     ".join(
            f"'{csv_path}' using 2:3 every :::{i}::{i} "
            f"with linespoints title '{name}'"
            for i, name in enumerate(self.series))
        # every-based selection needs blank-line-separated blocks; emit
        # a companion .dat instead for robustness.
        dat_path = os.path.splitext(csv_path)[0] + ".dat"
        with open(dat_path, "w") as handle:
            for name, points in self.series.items():
                handle.write(f"# {name}\n")
                for x, y in points:
                    handle.write(f"{x:.6g} {y:.6g}\n")
                handle.write("\n\n")
        plots = ", \\\n     ".join(
            f"'{dat_path}' index {i} using 1:2 "
            f"with linespoints title '{name}'"
            for i, name in enumerate(self.series))
        script = (
            f"set terminal {terminal}\n"
            f"set output '{self.name}.png'\n"
            f"set xlabel '{self.x_label}'\n"
            f"set ylabel '{self.y_label}'\n"
            f"set key top left\n"
            f"plot {plots}\n")
        with open(path, "w") as handle:
            handle.write(script)
        return path


def _ensure_parent(path):
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


def export_sweep_figure(name, curves, out_dir="figures",
                        x_label="throughput_mops",
                        y_label="mean_latency_us"):
    """One-call export for a {flavor: [RunResult, ...]} dict."""
    figure = FigureData(name, x_label=x_label, y_label=y_label)
    for flavor, results in curves.items():
        figure.add_sweep(flavor, results)
    csv_path = os.path.join(out_dir, f"{name}.csv")
    gp_path = os.path.join(out_dir, f"{name}.gp")
    figure.write_csv(csv_path)
    figure.write_gnuplot(gp_path, csv_path)
    return csv_path, gp_path
