"""Command-line experiment runner.

Regenerate any paper figure (or run a custom point) without pytest::

    python -m repro.bench.cli fig1
    python -m repro.bench.cli fig3 --clients 1,8,32 --keys 4000
    python -m repro.bench.cli point --kind tx --flavor prism-sw \\
        --clients 96 --zipf 0.9
    python -m repro.bench.cli list

Figure commands print the same tables as the benchmark suite but let
you rescale client counts / key counts for quicker (or bigger) runs.

Regression workflow: ``--json PATH`` on ``point`` and the fig3/4/6/9
sweeps writes a versioned result record (see
:mod:`repro.bench.regress`); ``compare baseline.json run.json`` diffs
two records under per-metric tolerance bands and exits non-zero on
regression — the CI perf-smoke gate is exactly that pipeline. ``--util``
prints per-resource utilization and the bottleneck verdict;
``--primitives`` prints primitive-level telemetry (CAS contention,
pointer-chase depth, allocator watermarks, key hotness) plus the
per-operation critical-path profile. All telemetry flags leave
simulated timing bit-identical.

``--faults SPEC`` (e.g. ``seed=3,drop=0.01,crash=replica1@500+400``)
runs any point or sweep under a seeded fault plan — message loss /
duplication / jitter, crash-stop windows, free-list starvation — with
timeout + retry recovery on, and prints the goodput-under-faults
report (see :mod:`repro.faults` and docs/faults.md).

``--profile[=cprofile|sample]`` turns the lens on the simulator
itself: every measured point is metered on the *wall* clock
(events/sec, per-bucket host-time shares; see
:mod:`repro.obs.hostprof`), the whole command is captured as either a
cProfile session (``<command>.pstats`` + collapsed digest) or sampled
collapsed stacks (``flame.<command>.txt``, flamegraph.pl-ready), and
``--json`` records gain a ``host`` section (schema v3).
``compare --host`` then diffs those host sections under wide bands
that only gate gross (>2x) simulator slowdowns. Host profiling never
touches the simulated clock — results stay bit-identical.

``--flight[=N]`` arms the causal flight recorder (a bounded ring of N
events, default 65536; see :mod:`repro.obs.flight`) on every measured
point: each point prints a digest, and when the run looks anomalous —
aborted operations, ack timeouts, exhausted retries, crash-window
drops — the raw event log is dumped to ``flight.<command>.json``
(``--flight-dump PATH`` picks the path and forces a dump even on
clean runs; sweeps dump the first anomalous point). ``explain
<flight.json> [--top K]`` replays a dump into per-request timelines
and prints the K worst requests' causal narratives
(:mod:`repro.obs.forensics`). Like every collector, ``--flight``
leaves simulated timing and ``--json`` records bit-identical.

``--series[=WINDOW_US]`` collects windowed time-series telemetry on
the simulated clock (default window 50 µs; see
:mod:`repro.obs.series`): per-window throughput/goodput/latency
digests and retry/timeout/NAK counters, an MSER steady-state verdict
that warns when the configured warmup is shorter than the detected
transient, and changepoint annotations cross-referenced against
injected fault windows. Each point prints sparklines + the annotated
report, ``--json`` records gain a ``series`` section (schema v4), and
``compare --series`` diffs steady-state-only aggregates so regression
gates stop averaging warm-up noise. ``--warmup-us``/``--measure-us``
set the measurement geometry the steady-state verdict is judged
against (defaults 300/1500 µs; fig7/fig10 measure 2000 µs).

``--views[=WINDOW_US]`` installs the *online* telemetry views (default
window 50 µs; see :mod:`repro.obs.views`): per-connection/per-key
sliding-window CAS-retry/NAK/timeout/backoff rates, pointer-chase and
service-time EWMAs — queryable mid-run by policy code — plus the
bounded decision log that shadow-mode probes write into. On the
fig7/fig10 contention sweeps a shadow RFP-crossover probe is armed
automatically: it logs which transport (one-sided vs RPC) the RFP rule
would pick per connection, switching nothing, and with ``--series``
also on its verdicts are validated against the post-hoc changepoint
windows. Each point prints the views report, ``--json`` records gain a
``views`` section (schema v6), and ``--views-log PATH`` writes the
decision-log transcript to a file (the CI artifact). ``compare
--host --series`` now combine: both band families are checked and a
trip in either fails — the host gate also covers the views-off hook
cost (one ``is None`` check per hook).
"""

import argparse
import sys
import time

from repro.bench.harness import run_point, sweep_clients
from repro.bench.microbench import (
    CLASSIC_PRIMITIVES,
    PRIMITIVES,
    measure_one_sided_read,
    measure_primitive,
    measure_rpc_read,
    measure_two_rdma_reads,
)
from repro.bench.reporting import (
    CURVE_HEADERS,
    UTILIZATION_HEADERS,
    curve_rows,
    print_faults,
    print_flight,
    print_host,
    print_primitives,
    print_series,
    print_table,
    print_views,
    utilization_rows,
    views_report_lines,
)
from repro.net.topology import CLUSTER, DATACENTER, DIRECT, RACK
from repro.obs import (
    FLIGHT_DEFAULT_CAPACITY,
    SERIES_DEFAULT_WINDOW_US,
    VIEWS_DEFAULT_WINDOW_US,
    FlightRecorder,
    HostProfiler,
    PrimitiveCollector,
    RfpCrossoverProbe,
    SeriesCollector,
    Tracer,
    UtilizationCollector,
    ViewCollector,
    analyze,
    critpath_profile,
    crossover_vs_series,
    format_analysis,
    write_chrome_trace,
)
from repro.workload import (
    YCSB_A,
    YCSB_C,
    YcsbTransactionalWorkload,
    YcsbWorkload,
)

DEFAULT_CLIENTS = [1, 8, 32, 96, 176]

#: measurement geometry used when --warmup-us/--measure-us are absent
#: (the values harness.run_point has always defaulted to)
DEFAULT_WARMUP_US = 300.0
DEFAULT_MEASURE_US = 1500.0
#: fig7/fig10 have always measured a longer window
CONTENTION_MEASURE_US = 2000.0


def _measure_windows(args, default_measure=DEFAULT_MEASURE_US):
    """Resolve --warmup-us/--measure-us against a command's defaults."""
    warmup = (args.warmup_us if args.warmup_us is not None
              else DEFAULT_WARMUP_US)
    measure = (args.measure_us if args.measure_us is not None
               else default_measure)
    return warmup, measure


def _parse_int_list(text):
    return [int(piece) for piece in text.split(",") if piece]


def cmd_motivation(args):
    print_table("§2.1 motivation (512 B, one ToR switch)",
                ["operation", "latency_us"],
                [["one-sided READ", measure_one_sided_read(profile=RACK)],
                 ["two-sided eRPC", measure_rpc_read(profile=RACK)],
                 ["two dependent READs", measure_two_rdma_reads(profile=RACK)]])


def cmd_fig1(args):
    columns = ["rdma", "prism-sw", "prism-bluefield", "prism-hw"]
    rows = []
    for primitive in PRIMITIVES:
        row = [primitive]
        for backend in columns:
            if backend == "rdma" and primitive not in CLASSIC_PRIMITIVES:
                row.append("-")
            else:
                row.append(measure_primitive(backend, primitive,
                                             profile=DIRECT))
        rows.append(row)
    print_table("Fig. 1: primitive latency, direct link (µs)",
                ["primitive"] + columns, rows)


def cmd_fig2(args):
    tiers = [("rack", RACK), ("cluster", CLUSTER),
             ("datacenter", DATACENTER)]
    rows = []
    for name, profile in tiers:
        rows.append([name,
                     measure_two_rdma_reads(profile=profile),
                     measure_primitive("prism-sw", "indirect-read",
                                       profile=profile),
                     measure_primitive("prism-bluefield", "indirect-read",
                                       profile=profile),
                     measure_primitive("prism-hw", "indirect-read",
                                       profile=profile)])
    print_table("Fig. 2: indirect read latency by deployment (µs)",
                ["tier", "2x-rdma", "prism-sw", "bluefield", "prism-hw"],
                rows)


_FIGURE_SYSTEMS = {
    "fig3": ("kv", ["prism-sw", "pilaf-hw", "pilaf-sw"], 11,
             lambda keys, zipf: (lambda i: YCSB_C(keys, zipf=zipf, seed=11,
                                                  client_id=i))),
    "fig4": ("kv", ["prism-sw", "pilaf-hw", "pilaf-sw"], 13,
             lambda keys, zipf: (lambda i: YCSB_A(keys, zipf=zipf, seed=13,
                                                  client_id=i))),
    "fig6": ("rs", ["prism-sw", "abdlock-hw", "abdlock-sw"], 17,
             lambda keys, zipf: (lambda i: YCSB_A(keys, zipf=zipf, seed=17,
                                                  client_id=i))),
    "fig9": ("tx", ["prism-sw", "farm-hw", "farm-sw"], 23,
             lambda keys, zipf: (lambda i: YcsbTransactionalWorkload(
                 keys, keys_per_txn=1, zipf=zipf, seed=23, client_id=i))),
}


def _point_faults(title, result):
    """Print the goodput-under-faults report; returns it for ``--json``."""
    report = result.extra.get("faults")
    if report is not None:
        print_faults(f"{title} faults", report)
    return report


def _point_host(title, hostprof):
    """Print one point's host self-profile; returns it for ``--json``."""
    if hostprof is None:
        return None
    report = hostprof.report()
    print_host(f"{title} host self-profile", report)
    return report


def _point_series(title, series, utilization=None, faults=None):
    """Print one point's windowed-series report; returns it for ``--json``."""
    if series is None:
        return None
    report = series.report(utilization=utilization, faults=faults)
    print_series(f"{title} time series", report)
    return report


def _make_views(args):
    """Build the point's ViewCollector; fig7/fig10 arm the RFP probe."""
    if not args.views:
        return None
    views = ViewCollector(args.views)
    if args.command in ("fig7", "fig10"):
        # The demonstration probe: shadow-mode RFP crossover detection
        # on the contention sweeps (see repro.obs.views); it logs which
        # transport the RFP rule would pick and switches nothing.
        views.add_probe(RfpCrossoverProbe())
    return views


def _point_views(title, views, series_report=None, state=None):
    """Print one point's online-views report; returns it for ``--json``.

    With a ``series_report`` from the same run and probe decisions on
    record, the shadow verdicts are validated against the post-hoc
    changepoint windows and the agreement verdict printed. ``state``
    accumulates the per-point report lines for ``--views-log``.
    """
    if views is None:
        return None
    report = views.report()
    print_views(f"{title} online views", report)
    if series_report is not None and report["decisions"]["recorded"]:
        check = crossover_vs_series(views.decision_log(), series_report)
        verdict = ("agree" if check["agree"]
                   else f"CONFLICT ({len(check['conflicts'])})")
        print(f"shadow probe vs series changepoints: {verdict} "
              f"({check['decisions']} decision(s), "
              f"{check['changepoints']} changepoint window(s))")
    if state is not None:
        state.setdefault("lines", []).append(f"== {title} ==")
        state["lines"].extend(views_report_lines(report))
    return report


def _views_log_done(args, state):
    """--views-log: write the accumulated decision-log transcript."""
    if args.views_log and state.get("lines"):
        with open(args.views_log, "w", encoding="utf-8") as handle:
            handle.write("\n".join(state["lines"]) + "\n")
        print(f"views decision-log report written to {args.views_log}")


def _point_primitives(title, primitives, tracer, result=None):
    """Report one point's primitive telemetry + critical-path profile.

    Returns ``(report, profile)`` for the ``--json`` record. With
    ``result``, also reconciles the critical-path sums against the
    measured mean latency (they match exactly by construction).
    """
    from repro.bench.tracing import (
        check_critpath,
        measured_roots,
        print_critpath,
    )
    report = primitives.report()
    profile = critpath_profile(measured_roots(tracer))
    print_primitives(f"{title} primitive telemetry", report)
    print_critpath(f"{title} critical path (mean µs per op)", profile)
    if result is not None:
        weighted = check_critpath(result, profile)
        print(f"critical-path sum {weighted:.3f} µs == mean latency "
              f"{result.mean_latency_us:.3f} µs (exact)")
    return report, profile


#: flight events that make a run worth a post-mortem on their own
_FLIGHT_ANOMALY_KINDS = {"req.timeout", "req.exhausted", "fault.crash_drop"}


def _flight_anomalous(flight, result):
    """Dump-on-anomaly trigger: failed ops, timeouts, retry give-ups."""
    if result is not None and result.aborts:
        return True
    for event in flight.events:
        if event["kind"] in _FLIGHT_ANOMALY_KINDS:
            return True
        if event["kind"] == "op.close" and event.get("status") != "ok":
            return True
    return False


def _write_flight(flight, path, anomaly):
    flight.dump(path)
    why = "anomaly detected; " if anomaly else ""
    print(f"flight dump written to {path} ({why}inspect with: "
          f"python -m repro.bench.cli explain {path})")
    return path


def _point_flight(args, label, flight, result):
    """Digest + dump handling for a single-point command."""
    print_flight(f"{label} flight recorder", flight.to_dict())
    anomaly = _flight_anomalous(flight, result)
    path = args.flight_dump or (f"flight.{args.command}.json"
                                if anomaly else None)
    if path:
        _write_flight(flight, path, anomaly)


def _sweep_flight(args, label, flight, result, state):
    """Digest + dump handling for one point of a sweep.

    Only the first anomalous point writes a dump (``state`` carries
    that across points); :func:`_sweep_flight_done` covers the
    ``--flight-dump``-but-no-anomaly case after the sweep.
    """
    print_flight(f"{label} flight recorder", flight.to_dict())
    state["last"] = flight
    if state.get("written") is None and _flight_anomalous(flight, result):
        path = args.flight_dump or f"flight.{args.command}.json"
        state["written"] = _write_flight(flight, path, True)


def _sweep_flight_done(args, state):
    """--flight-dump promises a dump even when every point was clean."""
    if (args.flight_dump and state.get("written") is None
            and state.get("last") is not None):
        _write_flight(state["last"], args.flight_dump, False)


def cmd_figure_sweep(args):
    kind, flavors, seed, workload_maker = _FIGURE_SYSTEMS[args.command]
    telemetry = bool(args.json or args.util)
    warmup_us, measure_us = _measure_windows(args)
    # --trace on a sweep traces one designated point: the first flavor
    # at the largest client count (the most interesting trace, and one
    # file — a trace per point would clobber the same path).
    trace_target = ((flavors[0], max(args.clients)) if args.trace
                    else None)
    flight_state = {}
    views_state = {}
    points = []
    for flavor in flavors:
        started = time.perf_counter()
        results = []
        for n_clients in args.clients:
            # --series needs the timeline monitors for its per-window
            # busy fractions, so it implies a UtilizationCollector.
            collector = (UtilizationCollector()
                         if telemetry or args.series else None)
            primitives = PrimitiveCollector() if args.primitives else None
            tracing = trace_target == (flavor, n_clients)
            tracer = Tracer() if (args.primitives or tracing) else None
            hostprof = HostProfiler() if args.profile else None
            flight = (FlightRecorder(args.flight) if args.flight
                      else None)
            series = SeriesCollector(args.series) if args.series else None
            views = _make_views(args)
            result = run_point(kind, flavor,
                               workload_maker(args.keys, args.zipf),
                               n_clients, n_keys=args.keys,
                               warmup_us=warmup_us, measure_us=measure_us,
                               tracer=tracer, utilization=collector,
                               primitives=primitives, faults=args.faults,
                               hostprof=hostprof, flight=flight,
                               series=series, views=views)
            results.append(result)
            if tracing:
                write_chrome_trace(tracer.roots, args.trace,
                                   process_spans=tracer.process_spans)
                print(f"chrome trace written to {args.trace} "
                      f"({flavor} c={n_clients})")
            faults_report = _point_faults(
                f"{args.command}: {flavor} c={n_clients}", result)
            host_report = _point_host(
                f"{args.command}: {flavor} c={n_clients}", hostprof)
            series_report = _point_series(
                f"{args.command}: {flavor} c={n_clients}", series,
                utilization=collector, faults=faults_report)
            views_report = _point_views(
                f"{args.command}: {flavor} c={n_clients}", views,
                series_report=series_report, state=views_state)
            if flight is not None:
                _sweep_flight(args, f"{args.command}: {flavor} "
                              f"c={n_clients}", flight, result,
                              flight_state)
            prim_report = profile = None
            if args.primitives:
                prim_report, profile = _point_primitives(
                    f"{args.command}: {flavor} c={n_clients}",
                    primitives, tracer, result=result)
            if telemetry:
                util = collector.report()
                verdict = analyze(util)
                if args.util:
                    print_table(
                        f"{args.command}: {flavor} c={n_clients} "
                        "resource utilization",
                        UTILIZATION_HEADERS, utilization_rows(util, top=10))
                    print(format_analysis(verdict))
                if args.json:
                    from repro.bench.regress import make_point
                    config = {"kind": kind, "flavor": flavor,
                              "clients": n_clients, "keys": args.keys,
                              "zipf": args.zipf, "seed": seed,
                              "warmup_us": warmup_us,
                              "measure_us": measure_us}
                    if args.faults:
                        config["faults"] = args.faults
                    points.append(make_point(kind, flavor, result, config,
                                             utilization=util,
                                             bottleneck=verdict,
                                             primitives=prim_report,
                                             critpath=profile,
                                             faults=faults_report,
                                             host=host_report,
                                             series=series_report,
                                             views=views_report))
        wall_s = time.perf_counter() - started
        events = sum(r.extra.get("events_executed", 0) for r in results)
        rate = f", {events / wall_s:,.0f} events/s" if wall_s > 0 else ""
        print_table(f"{args.command}: {flavor} "
                    f"({wall_s:.1f}s wall{rate})",
                    CURVE_HEADERS, curve_rows(results))
    _sweep_flight_done(args, flight_state)
    _views_log_done(args, views_state)
    if args.json:
        from repro.bench.regress import make_record, write_record
        write_record(make_record(args.command, points), args.json)
        print(f"result record written to {args.json}")


def cmd_contention(args):
    kind = "rs" if args.command == "fig7" else "tx"
    flavors = (["prism-sw", "abdlock-hw"] if kind == "rs"
               else ["prism-sw", "farm-hw"])
    # --trace designates the first flavor at the most skewed zipf.
    trace_target = (flavors[0], args.zipfs[-1]) if args.trace else None
    warmup_us, measure_us = _measure_windows(
        args, default_measure=CONTENTION_MEASURE_US)
    flight_state = {}
    views_state = {}
    rows = []
    for zipf in args.zipfs:
        row = [zipf]
        for flavor in flavors:
            if kind == "rs":
                workload = (lambda i, z=zipf: YcsbWorkload(
                    args.keys, read_fraction=0.5, zipf=z, seed=19,
                    client_id=i))
            else:
                workload = (lambda i, z=zipf: YcsbTransactionalWorkload(
                    args.keys, keys_per_txn=1, zipf=z, seed=29,
                    client_id=i))
            primitives = PrimitiveCollector() if args.primitives else None
            tracing = trace_target == (flavor, zipf)
            tracer = Tracer() if (args.primitives or tracing) else None
            hostprof = HostProfiler() if args.profile else None
            flight = (FlightRecorder(args.flight) if args.flight
                      else None)
            series = SeriesCollector(args.series) if args.series else None
            collector = UtilizationCollector() if args.series else None
            views = _make_views(args)
            result = run_point(kind, flavor, workload, args.clients[0],
                               n_keys=args.keys, warmup_us=warmup_us,
                               measure_us=measure_us,
                               tracer=tracer, utilization=collector,
                               primitives=primitives,
                               faults=args.faults, hostprof=hostprof,
                               flight=flight, series=series, views=views)
            if tracing:
                write_chrome_trace(tracer.roots, args.trace,
                                   process_spans=tracer.process_spans)
                print(f"chrome trace written to {args.trace} "
                      f"({flavor} zipf={zipf})")
            _point_faults(f"{args.command}: {flavor} zipf={zipf}", result)
            _point_host(f"{args.command}: {flavor} zipf={zipf}", hostprof)
            series_report = _point_series(
                f"{args.command}: {flavor} zipf={zipf}", series,
                utilization=collector, faults=result.extra.get("faults"))
            _point_views(f"{args.command}: {flavor} zipf={zipf}", views,
                         series_report=series_report, state=views_state)
            if flight is not None:
                _sweep_flight(args, f"{args.command}: {flavor} "
                              f"zipf={zipf}", flight, result, flight_state)
            if args.primitives:
                _point_primitives(
                    f"{args.command}: {flavor} zipf={zipf}",
                    primitives, tracer, result=result)
            row.append(result.mean_latency_us if kind == "rs"
                       else result.throughput_ops_per_sec / 1e6)
        rows.append(row)
    _sweep_flight_done(args, flight_state)
    _views_log_done(args, views_state)
    metric = "mean latency (µs)" if kind == "rs" else "throughput (M/s)"
    print_table(f"{args.command}: {metric} vs zipf",
                ["zipf"] + flavors, rows)


def cmd_point(args):
    if args.kind == "tx":
        workload = (lambda i: YcsbTransactionalWorkload(
            args.keys, keys_per_txn=1, zipf=args.zipf, seed=1, client_id=i))
    else:
        workload = (lambda i: YcsbWorkload(
            args.keys, read_fraction=args.read_fraction, zipf=args.zipf,
            seed=1, client_id=i))
    collector = (UtilizationCollector()
                 if (args.json or args.util or args.series) else None)
    primitives = PrimitiveCollector() if args.primitives else None
    hostprof = HostProfiler() if args.profile else None
    flight = FlightRecorder(args.flight) if args.flight else None
    series = SeriesCollector(args.series) if args.series else None
    views = _make_views(args)
    warmup_us, measure_us = _measure_windows(args)
    phases = None
    tracer = None
    if args.trace or args.primitives:
        from repro.bench.tracing import print_breakdown, run_traced_point
        result, phases, tracer = run_traced_point(
            args.kind, args.flavor, workload, args.clients[0],
            trace_path=args.trace, utilization=collector,
            primitives=primitives, n_keys=args.keys, faults=args.faults,
            hostprof=hostprof, flight=flight, series=series, views=views,
            warmup_us=warmup_us, measure_us=measure_us)
        print_table(f"{args.kind}/{args.flavor}", CURVE_HEADERS,
                    curve_rows([result]))
        print_breakdown(f"{args.kind}/{args.flavor}: phase breakdown "
                        "(mean µs per op)", phases)
        if args.trace:
            print(f"chrome trace written to {args.trace}")
    else:
        result = run_point(args.kind, args.flavor, workload, args.clients[0],
                           n_keys=args.keys, utilization=collector,
                           faults=args.faults, hostprof=hostprof,
                           flight=flight, series=series, views=views,
                           warmup_us=warmup_us, measure_us=measure_us)
        print_table(f"{args.kind}/{args.flavor}", CURVE_HEADERS,
                    curve_rows([result]))
    faults_report = _point_faults(f"{args.kind}/{args.flavor}", result)
    host_report = _point_host(f"{args.kind}/{args.flavor}", hostprof)
    series_report = _point_series(f"{args.kind}/{args.flavor}", series,
                                  utilization=collector,
                                  faults=faults_report)
    views_state = {}
    views_report = _point_views(f"{args.kind}/{args.flavor}", views,
                                series_report=series_report,
                                state=views_state)
    _views_log_done(args, views_state)
    if flight is not None:
        _point_flight(args, f"{args.kind}/{args.flavor}", flight, result)
    prim_report = profile = None
    if args.primitives:
        prim_report, profile = _point_primitives(
            f"{args.kind}/{args.flavor}", primitives, tracer, result=result)
    util_report = collector.report() if collector is not None else None
    verdict = analyze(util_report) if util_report is not None else None
    if args.util:
        print_table(f"{args.kind}/{args.flavor}: resource utilization "
                    "(measurement window)",
                    UTILIZATION_HEADERS, utilization_rows(util_report))
        print(format_analysis(verdict))
    if args.json:
        from repro.bench.regress import make_point, make_record, write_record
        config = {"kind": args.kind, "flavor": args.flavor,
                  "clients": args.clients[0], "keys": args.keys,
                  "zipf": args.zipf, "read_fraction": args.read_fraction,
                  "seed": 1, "warmup_us": warmup_us,
                  "measure_us": measure_us}
        if args.faults:
            config["faults"] = args.faults
        point = make_point(args.kind, args.flavor, result, config,
                           phases=phases, utilization=util_report,
                           bottleneck=verdict, primitives=prim_report,
                           critpath=profile, faults=faults_report,
                           host=host_report, series=series_report,
                           views=views_report)
        write_record(make_record(f"point:{args.kind}/{args.flavor}", [point]),
                     args.json)
        print(f"result record written to {args.json}")


def cmd_compare(args):
    from repro.bench.regress import compare, format_compare, load_record
    if len(args.paths) != 2:
        print("usage: repro.bench.cli compare <baseline.json> <run.json>",
              file=sys.stderr)
        return 2
    tolerances = {}
    for spec in args.tolerance or []:
        metric, sep, frac = spec.partition("=")
        if not sep:
            print(f"--tolerance expects metric=frac, got {spec!r}",
                  file=sys.stderr)
            return 2
        tolerances[metric] = float(frac)
    baseline = load_record(args.paths[0])
    run = load_record(args.paths[1])
    report = compare(baseline, run, tolerances=tolerances, host=args.host,
                     series=args.series is not None)
    print(f"baseline: {args.paths[0]} "
          f"(commit {report['baseline_commit'] or 'unknown'})")
    print(f"run:      {args.paths[1]} "
          f"(commit {report['run_commit'] or 'unknown'})")
    print(format_compare(report))
    return 0 if report["ok"] else 1


def cmd_explain(args):
    from repro.obs import explain_lines, load_flight_dump
    if len(args.paths) != 1:
        print("usage: repro.bench.cli explain <flight.json> [--top K]",
              file=sys.stderr)
        return 2
    dump = load_flight_dump(args.paths[0])
    for line in explain_lines(dump, top=args.top):
        print(line)
    return 0


def cmd_list(args):
    print("figures: motivation fig1 fig2 fig3 fig4 fig6 fig7 fig9 fig10")
    print("systems: kv={prism-sw,prism-hw,prism-bluefield,pilaf-hw,pilaf-sw}")
    print("         rs={prism-sw,prism-hw,abdlock-hw,abdlock-sw}")
    print("         tx={prism-sw,prism-hw,farm-hw,farm-sw}")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli",
        description="Regenerate figures from the PRISM paper.")
    parser.add_argument("command",
                        choices=["motivation", "fig1", "fig2", "fig3",
                                 "fig4", "fig6", "fig7", "fig9", "fig10",
                                 "point", "compare", "explain", "list"])
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="(compare) baseline.json and run.json; "
                             "(explain) a flight dump")
    parser.add_argument("--clients", type=_parse_int_list,
                        default=DEFAULT_CLIENTS,
                        help="comma-separated client counts")
    parser.add_argument("--keys", type=int, default=8000)
    parser.add_argument("--zipf", type=float, default=0.0)
    parser.add_argument("--zipfs", type=lambda t: [float(x) for x in
                                                   t.split(",")],
                        default=[0.0, 0.5, 0.9, 1.2])
    parser.add_argument("--kind", choices=["kv", "rs", "tx"], default="kv")
    parser.add_argument("--flavor", default="prism-sw")
    parser.add_argument("--read-fraction", type=float, default=0.5)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="(point, fig3/4/6/7/9/10) write Chrome "
                             "trace-event JSON to PATH; sweeps trace one "
                             "designated point (first flavor at the "
                             "largest client count / most skewed zipf)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="(point, fig3/4/6/9) write a machine-readable "
                             "result record (repro.bench.regress schema)")
    parser.add_argument("--util", action="store_true",
                        help="(point, fig3/4/6/9) print per-resource "
                             "utilization and the bottleneck verdict")
    parser.add_argument("--primitives", action="store_true",
                        help="(point, fig3/4/6/7/9/10) print primitive-level "
                             "telemetry (CAS contention, pointer-chase "
                             "depth, allocator watermarks, key hotness) and "
                             "the per-op critical-path profile")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="(point, fig3/4/6/7/9/10) run under a seeded "
                             "fault plan, e.g. seed=3,drop=0.01 or "
                             "crash=replica1@500+400 (see "
                             "repro.faults.parse_faults); prints the "
                             "goodput-under-faults report")
    parser.add_argument("--tolerance", action="append", metavar="METRIC=REL",
                        default=None,
                        help="(compare) override a tolerance band, e.g. "
                             "--tolerance p99_us=0.10 (repeatable)")
    parser.add_argument("--profile", nargs="?", const="sample",
                        choices=["cprofile", "sample"], default=None,
                        metavar="MODE",
                        help="profile the simulator itself on the host "
                             "clock: meter events/sec and per-bucket wall "
                             "time for every measured point, and capture "
                             "the whole command as a cProfile session "
                             "(cprofile: <command>.pstats + collapsed "
                             "digest) or sampled collapsed stacks (sample, "
                             "the default: flame.<command>.txt)")
    parser.add_argument("--flight", nargs="?", const=FLIGHT_DEFAULT_CAPACITY,
                        type=int, default=None, metavar="N",
                        help="(point, fig3/4/6/7/9/10) arm the causal "
                             "flight recorder with an N-event ring "
                             f"(default {FLIGHT_DEFAULT_CAPACITY}); prints "
                             "a per-point digest and dumps the event log "
                             "on anomalies (aborts, timeouts, exhausted "
                             "retries) for the explain subcommand")
    parser.add_argument("--series", nargs="?",
                        const=SERIES_DEFAULT_WINDOW_US, type=float,
                        default=None, metavar="WINDOW_US",
                        help="(point, fig3/4/6/7/9/10) collect windowed "
                             "time-series telemetry on the simulated clock "
                             f"(default window {SERIES_DEFAULT_WINDOW_US:g} "
                             "µs): per-window throughput/latency/retry "
                             "counters with sparklines, MSER steady-state "
                             "detection, and fault-correlated changepoint "
                             "annotations; (compare) diff the records' "
                             "steady-state-only series aggregates instead "
                             "of the end-of-run metrics")
    parser.add_argument("--views", nargs="?",
                        const=VIEWS_DEFAULT_WINDOW_US, type=float,
                        default=None, metavar="WINDOW_US",
                        help="(point, fig3/4/6/7/9/10) install the online "
                             "telemetry views (default window "
                             f"{VIEWS_DEFAULT_WINDOW_US:g} µs): "
                             "per-connection/per-key sliding-window "
                             "CAS-retry/NAK/timeout rates and chase/"
                             "service-time EWMAs, queryable mid-run, plus "
                             "the shadow-probe decision log; fig7/fig10 arm "
                             "the RFP-crossover probe automatically")
    parser.add_argument("--views-log", metavar="PATH", default=None,
                        help="(with --views) write the per-point views "
                             "reports and decision-log transcript to PATH")
    parser.add_argument("--warmup-us", type=float, default=None,
                        metavar="US",
                        help="(point, fig3/4/6/7/9/10) warmup before the "
                             "measurement window (default "
                             f"{DEFAULT_WARMUP_US:g} µs); the series "
                             "steady-state verdict checks it covers the "
                             "detected transient")
    parser.add_argument("--measure-us", type=float, default=None,
                        metavar="US",
                        help="(point, fig3/4/6/7/9/10) measurement window "
                             f"length (default {DEFAULT_MEASURE_US:g} µs; "
                             f"fig7/fig10 use {CONTENTION_MEASURE_US:g} µs)")
    parser.add_argument("--flight-dump", metavar="PATH", default=None,
                        help="(with --flight) write the flight dump to "
                             "PATH even when the run is clean; sweeps "
                             "still prefer the first anomalous point")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="(explain) how many worst-request narratives "
                             "to print (default 5)")
    parser.add_argument("--host", action="store_true",
                        help="(compare) diff the records' host "
                             "self-profiling sections (events/sec, wall "
                             "seconds) under wide bands instead of the "
                             "simulated metrics; combines with --series "
                             "(both families checked, either failing "
                             "fails the compare)")
    return parser


#: commands that run a measurement point --trace/--flight can attach to
_POINT_COMMANDS = {"fig3", "fig4", "fig6", "fig7", "fig9", "fig10", "point"}


def main(argv=None):
    args = build_parser().parse_args(argv)
    # Fail fast instead of silently ignoring per-point flags on
    # commands that never run a sweepable measurement point.
    for flag, value, allowed in (
            ("--trace", args.trace, _POINT_COMMANDS),
            ("--flight", args.flight, _POINT_COMMANDS),
            ("--series", args.series, _POINT_COMMANDS | {"compare"}),
            ("--views", args.views, _POINT_COMMANDS),
            ("--views-log", args.views_log, _POINT_COMMANDS),
            ("--warmup-us", args.warmup_us, _POINT_COMMANDS),
            ("--measure-us", args.measure_us, _POINT_COMMANDS)):
        if value is not None and args.command not in allowed:
            print(f"{flag} is not supported by {args.command!r}: only "
                  "point and the fig sweeps run a measurement point "
                  "(supported: " + ", ".join(sorted(allowed)) + ")",
                  file=sys.stderr)
            return 2
    if args.flight is not None and args.flight < 1:
        print("--flight capacity must be >= 1", file=sys.stderr)
        return 2
    if args.series is not None and args.series <= 0:
        print("--series window must be > 0 µs", file=sys.stderr)
        return 2
    if args.views is not None and args.views <= 0:
        print("--views window must be > 0 µs", file=sys.stderr)
        return 2
    if args.views_log and args.views is None:
        print("--views-log requires --views", file=sys.stderr)
        return 2
    if args.warmup_us is not None and args.warmup_us <= 0:
        print("--warmup-us must be positive", file=sys.stderr)
        return 2
    if args.measure_us is not None and args.measure_us <= 0:
        print("--measure-us must be positive (the warmup must end "
              "before the run does)", file=sys.stderr)
        return 2
    dispatch = {
        "motivation": cmd_motivation,
        "fig1": cmd_fig1,
        "fig2": cmd_fig2,
        "fig3": cmd_figure_sweep,
        "fig4": cmd_figure_sweep,
        "fig6": cmd_figure_sweep,
        "fig9": cmd_figure_sweep,
        "fig7": cmd_contention,
        "fig10": cmd_contention,
        "point": cmd_point,
        "compare": cmd_compare,
        "explain": cmd_explain,
        "list": cmd_list,
    }
    if args.profile is None:
        return int(dispatch[args.command](args) or 0)
    # --profile: besides the per-point meters the commands install, an
    # ambient profiler catches simulators built internally (fig1/fig2/
    # motivation microbenches), and the whole command is captured as a
    # cProfile session or sampled collapsed stacks.
    from repro.obs.hostprof import activate, deactivate, profile_session
    ambient = activate(HostProfiler())
    session = profile_session(args.profile, prefix=args.command)
    try:
        with session:
            result = dispatch[args.command](args)
    finally:
        deactivate(ambient)
    if ambient.events:
        print_host(f"{args.command}: host self-profile", ambient.report())
    for path in session.paths:
        print(f"profile artifact written to {path}")
    return int(result or 0)


if __name__ == "__main__":
    sys.exit(main())
