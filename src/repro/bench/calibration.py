"""Calibration: where every timing constant comes from.

The simulator's credibility rests on its device models being anchored
to the paper's own measurements (§2.1, §4.3, Figs. 1-2). This module
is the single place that states each anchor and measures the model
against it; ``tests/bench/test_calibration.py`` asserts the whole table
on every test run, so a drive-by constant tweak that breaks calibration
fails CI immediately.

Anchors (paper value -> where the model encodes it):

==========================================  ========  =======================================
measurement                                 paper      model knob(s)
==========================================  ========  =======================================
RDMA READ, 512 B, direct link               2.5 µs     nic_base_op_us + PCIe + DIRECT profile
PRISM-SW overhead over RDMA                 +2.5-2.8   sw_pipeline_latency_us + occupancies
one-sided READ, 512 B, one switch           3.2 µs     RACK profile (0.6 µs switch RTT)
two-sided eRPC, 512 B, one switch           5.6 µs     RpcConfig dispatch/service/client costs
two dependent READs vs one RPC              +0.8 µs    (emergent from the two rows above)
ToR switch round trip                       0.6 µs     RACK vs DIRECT one-way delta
three-tier cluster round trip               3 µs       CLUSTER profile
datacenter RDMA round trip                  24 µs      DATACENTER profile
BlueField host-memory access                ~3 µs      bf_host_access_us
40 GbE line rate                            5 GB/s     bytes_per_us = 5000
==========================================  ========  =======================================
"""

from repro.bench.microbench import (
    measure_one_sided_read,
    measure_primitive,
    measure_rpc_read,
    measure_two_rdma_reads,
)
from repro.net.topology import (
    CLUSTER,
    DATACENTER,
    DIRECT,
    RACK,
)


class Anchor:
    """One calibration point: paper value, tolerance, and a measurer."""

    def __init__(self, name, paper_value, tolerance, measure):
        self.name = name
        self.paper_value = paper_value
        self.tolerance = tolerance
        self.measure = measure

    def check(self):
        measured = self.measure()
        error = abs(measured - self.paper_value)
        return {
            "anchor": self.name,
            "paper": self.paper_value,
            "measured": round(measured, 3),
            "tolerance": self.tolerance,
            "ok": error <= self.tolerance,
        }


def _sw_overhead():
    return (measure_primitive("prism-sw", "read", profile=DIRECT)
            - measure_primitive("rdma", "read", profile=DIRECT))


def _switch_rtt():
    return 2 * (RACK.one_way_latency_us - DIRECT.one_way_latency_us)


def anchors():
    """The full calibration table as checkable anchors."""
    return [
        Anchor("rdma read 512B direct (µs)", 2.5, 0.4,
               lambda: measure_primitive("rdma", "read", profile=DIRECT)),
        Anchor("prism-sw overhead (µs)", 2.65, 0.7, _sw_overhead),
        Anchor("one-sided read 512B rack (µs)", 3.2, 0.4,
               lambda: measure_one_sided_read(profile=RACK)),
        Anchor("erpc 512B rack (µs)", 5.6, 0.6,
               lambda: measure_rpc_read(profile=RACK)),
        Anchor("2 reads minus 1 rpc (µs)", 0.8, 0.8,
               lambda: (measure_two_rdma_reads(profile=RACK)
                        - measure_rpc_read(profile=RACK))),
        Anchor("ToR switch RTT (µs)", 0.6, 0.1, _switch_rtt),
        Anchor("cluster RTT (µs)", 3.0, 0.3,
               lambda: 2 * (CLUSTER.one_way_latency_us
                            - DIRECT.one_way_latency_us)),
        Anchor("datacenter RTT (µs)", 24.0, 1.0,
               lambda: 2 * (DATACENTER.one_way_latency_us
                            - DIRECT.one_way_latency_us)),
        Anchor("40GbE bytes/µs", 5000.0, 1.0,
               lambda: RACK.bytes_per_us),
    ]


def report():
    """Check every anchor; returns the list of row dicts."""
    return [anchor.check() for anchor in anchors()]


def main():
    from repro.bench.reporting import print_table
    rows = [[r["anchor"], r["paper"], r["measured"],
             "OK" if r["ok"] else "FAIL"] for r in report()]
    print_table("Calibration anchors (paper §2.1/§4.3 vs model)",
                ["anchor", "paper", "measured", "status"], rows)


if __name__ == "__main__":
    main()
