"""Primitive-level microbenchmarks (Figs. 1-2, §2.1 motivation).

Each measurement is one client issuing one operation (512-byte
payloads, as in the paper) against a freshly built server on the given
topology, repeated a few times and averaged — the simulator is
deterministic, so repeats only smooth out queue-state effects.
"""

from repro.core.ops import AllocateOp, CasMode, CasOp, ReadOp, WriteOp
from repro.net.message import ETHERNET_HEADER_BYTES
from repro.net.topology import DIRECT, make_fabric
from repro.prism import (
    BlueFieldPrismBackend,
    HardwarePrismBackend,
    HardwareRdmaBackend,
    PrismClient,
    PrismServer,
    SoftwarePrismBackend,
)
from repro.rpc.erpc import RpcClient, RpcServer
from repro.sim import Simulator

BACKENDS = {
    "rdma": HardwareRdmaBackend,
    "prism-sw": SoftwarePrismBackend,
    "prism-bluefield": BlueFieldPrismBackend,
    "prism-hw": HardwarePrismBackend,
}

VALUE_SIZE = 512


def _op_read(client, addrs, rkeys):
    return ReadOp(addr=addrs["data"], length=VALUE_SIZE,
                  rkey=rkeys["data"])


def _op_write(client, addrs, rkeys):
    return WriteOp(addr=addrs["data"], data=b"w" * VALUE_SIZE,
                   rkey=rkeys["data"])


def _op_indirect_read(client, addrs, rkeys):
    return ReadOp(addr=addrs["pointer"], length=VALUE_SIZE,
                  rkey=rkeys["data"], indirect=True)


def _op_allocate(client, addrs, rkeys):
    return AllocateOp(freelist=addrs["freelist"], data=b"a" * VALUE_SIZE,
                      rkey=rkeys["buffers"])


def _op_enhanced_cas(client, addrs, rkeys):
    # A 16-byte masked CAS_GT — the versioned-install shape (§3.3).
    return CasOp(target=addrs["meta"], data=(1 << 120).to_bytes(16, "little"),
                 rkey=rkeys["data"], mode=CasMode.GT,
                 compare_mask=(1 << 64) - 1, operand_width=16)


PRIMITIVES = {
    "read": _op_read,
    "write": _op_write,
    "indirect-read": _op_indirect_read,
    "allocate": _op_allocate,
    "enhanced-cas": _op_enhanced_cas,
}

#: primitives expressible on a stock RDMA NIC
CLASSIC_PRIMITIVES = ("read", "write")


def _build(sim, backend_name, profile):
    fabric = make_fabric(sim, profile, ["client", "server"])
    server = PrismServer(sim, fabric, "server", BACKENDS[backend_name])
    data_addr, data_rkey = server.add_region(1 << 20)
    freelist, buffers_rkey = server.create_freelist(VALUE_SIZE + 16, 4096)
    client = PrismClient(sim, fabric, "client", server)
    # Seed: a value, a pointer to it, and a 16-byte versioned slot.
    server.space.write(data_addr, b"v" * VALUE_SIZE)
    server.space.write_ptr(data_addr + VALUE_SIZE, data_addr)
    server.space.write(data_addr + VALUE_SIZE + 8, bytes(16))
    addrs = {
        "data": data_addr,
        "pointer": data_addr + VALUE_SIZE,
        "meta": data_addr + VALUE_SIZE + 8,
        "freelist": freelist,
    }
    rkeys = {"data": data_rkey, "buffers": buffers_rkey}
    return client, addrs, rkeys


def measure_primitive(backend_name, primitive, profile=DIRECT, repeats=5):
    """Mean latency (µs) of one primitive on one backend/topology."""
    sim = Simulator()
    client, addrs, rkeys = _build(sim, backend_name, profile)
    samples = []

    def run():
        for _ in range(repeats):
            op = PRIMITIVES[primitive](client, addrs, rkeys)
            start = sim.now
            result = yield from client.execute(op)
            result.raise_on_nak()
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e6)
    return sum(samples) / len(samples)


def measure_two_rdma_reads(profile=DIRECT, repeats=5):
    """Latency of the Pilaf-style pointer-chase: two dependent READs."""
    sim = Simulator()
    client, addrs, rkeys = _build(sim, "rdma", profile)
    samples = []

    def run():
        for _ in range(repeats):
            start = sim.now
            pointer = yield from client.read(addrs["pointer"], 8,
                                             rkey=rkeys["data"])
            target = int.from_bytes(pointer, "little")
            yield from client.read(target, VALUE_SIZE, rkey=rkeys["data"])
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e6)
    return sum(samples) / len(samples)


def measure_rpc_read(profile=DIRECT, repeats=5):
    """Latency of a 512 B read served by a two-sided eRPC (§2.1)."""
    sim = Simulator()
    fabric = make_fabric(sim, profile, ["client", "server"])
    store = {"value": b"v" * VALUE_SIZE}
    rpc_server = RpcServer(sim, fabric, "server")
    rpc_server.register("read", lambda args: (store["value"], VALUE_SIZE))
    rpc_client = RpcClient(sim, fabric, "client")
    samples = []

    def run():
        for _ in range(repeats):
            start = sim.now
            value = yield from rpc_client.call("server", "read", None,
                                               request_payload_bytes=16)
            assert len(value) == VALUE_SIZE
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e6)
    return sum(samples) / len(samples)


def measure_one_sided_read(profile=DIRECT, repeats=5):
    """Latency of a plain hardware-RDMA 512 B READ (§2.1)."""
    return measure_primitive("rdma", "read", profile=profile,
                             repeats=repeats)
