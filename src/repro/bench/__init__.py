"""Benchmark harnesses regenerating the paper's figures.

:mod:`repro.bench.harness` builds whole systems (server(s) + loaded
data + client populations) and runs closed-loop measurement points;
:mod:`repro.bench.microbench` measures single primitives (Figs. 1-2,
§2.1); :mod:`repro.bench.reporting` prints the tables the benchmark
suite emits and EXPERIMENTS.md records.
"""

from repro.bench.harness import run_point, sweep_clients
from repro.bench.microbench import (
    measure_primitive,
    measure_rpc_read,
    PRIMITIVES,
)
from repro.bench.reporting import print_table

__all__ = [
    "PRIMITIVES",
    "measure_primitive",
    "measure_rpc_read",
    "print_table",
    "run_point",
    "sweep_clients",
]
