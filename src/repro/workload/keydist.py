"""Key-access distributions: uniform and Zipf.

The Zipf sampler uses the standard YCSB parameterization: key rank
``i`` (1-based) is drawn with probability proportional to ``1 / i^s``
where ``s`` is the *zipf coefficient* on the figures' x-axes. Sampling
is inverse-CDF over a precomputed table (numpy), so a draw is one
binary search — fast enough for millions of simulated ops.

Ranks are shuffled onto key ids so that "hot" keys are spread over the
table rather than clustered at low ids.
"""

import numpy as np


class UniformKeys:
    """Uniform key choice over ``[0, n_keys)``."""

    def __init__(self, n_keys, seed=0):
        self.n_keys = n_keys
        self._rng = np.random.default_rng(seed)

    def sample(self):
        return int(self._rng.integers(0, self.n_keys))

    def sample_block(self, count):
        """Draw ``count`` keys in one vectorized call.

        numpy's bounded-integer sampler is elementwise, so the block is
        the exact same stream ``count`` single :meth:`sample` calls
        would produce — callers may buffer blocks without changing any
        simulated result, they only pay the numpy call overhead once.
        """
        return self._rng.integers(0, self.n_keys, size=count).tolist()

    def sample_distinct(self, count):
        """Draw ``count`` distinct keys (for multi-key transactions)."""
        if count > self.n_keys:
            raise ValueError("more distinct keys requested than exist")
        return [int(k) for k in
                self._rng.choice(self.n_keys, size=count, replace=False)]


class ZipfKeys:
    """Zipf(``coefficient``) key choice over ``[0, n_keys)``.

    ``coefficient == 0`` degenerates to uniform, matching the leftmost
    points of Figs. 7 and 10.
    """

    def __init__(self, n_keys, coefficient, seed=0, permutation_seed=0):
        if coefficient < 0:
            raise ValueError("zipf coefficient must be >= 0")
        self.n_keys = n_keys
        self.coefficient = coefficient
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, n_keys + 1, dtype=np.float64)
        weights = ranks ** (-coefficient)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Permute ranks onto key ids. The permutation seed must be
        # SHARED by all clients of one experiment (contention requires
        # everyone to agree on which keys are hot); the sampling stream
        # (``seed``) is per-client.
        self._rank_to_key = np.random.default_rng(
            permutation_seed ^ 0x5EED).permutation(n_keys)

    def sample(self):
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u, side="left"))
        return int(self._rank_to_key[min(rank, self.n_keys - 1)])

    def sample_block(self, count):
        """Vectorized draw, stream-identical to ``count`` singles
        (``rng.random(count)`` advances PCG64 exactly like ``count``
        scalar draws; the searchsorted/table steps are elementwise)."""
        us = self._rng.random(count)
        ranks = np.minimum(np.searchsorted(self._cdf, us, side="left"),
                           self.n_keys - 1)
        return self._rank_to_key[ranks].tolist()

    def sample_distinct(self, count):
        if count > self.n_keys:
            raise ValueError("more distinct keys requested than exist")
        seen = []
        while len(seen) < count:
            key = self.sample()
            if key not in seen:
                seen.append(key)
        return seen


def make_distribution(n_keys, zipf=0.0, seed=0, permutation_seed=0):
    """Uniform when ``zipf`` is 0/None, Zipf otherwise."""
    if not zipf:
        return UniformKeys(n_keys, seed=seed)
    return ZipfKeys(n_keys, zipf, seed=seed,
                    permutation_seed=permutation_seed)
