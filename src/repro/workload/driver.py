"""Closed-loop measurement driver.

Mirrors the paper's methodology: a fixed population of closed-loop
clients (no think time) issue operations back to back; after a warmup
window, latencies and completions are recorded for the measurement
window. Sweeping the client population out traces the
throughput-versus-latency curves of Figs. 3, 4, 6, and 9.
"""

import inspect
from dataclasses import dataclass, field

from repro.obs.trace import NULL_TRACER
from repro.sim.stats import LatencyRecorder


@dataclass
class RunResult:
    """Summary of one driver run (one point on a curve)."""

    clients: int
    ops: int
    throughput_ops_per_sec: float
    mean_latency_us: float
    median_latency_us: float
    p99_latency_us: float
    aborts: int = 0
    retries: int = 0
    extra: dict = field(default_factory=dict)

    def row(self):
        """Compact dict for printing benchmark tables."""
        return {
            "clients": self.clients,
            "ops": self.ops,
            "tput_Mops": self.throughput_ops_per_sec / 1e6,
            "mean_us": round(self.mean_latency_us, 2),
            "p99_us": round(self.p99_latency_us, 2),
        }


def _accepts_span(executor):
    """True if ``executor(op, span=...)`` is callable with a span.

    Checked once per client at registration (not per op) so the hot
    loop pays no introspection cost. Executors that predate tracing
    (plain ``executor(op)``) keep working untraced.
    """
    try:
        signature = inspect.signature(executor)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == "span":
            return True
    return False


class ClosedLoopDriver:
    """Runs N closed-loop clients against an application adapter.

    Each client needs an *executor*: a callable ``executor(op)``
    returning a process generator that performs the operation and
    optionally returns a dict (e.g. ``{"retries": 2}``).
    """

    GOLDEN = 0.6180339887498949  # low-discrepancy stagger sequence

    def __init__(self, sim, warmup_us=200.0, measure_us=2_000.0,
                 stagger_us=30.0, tracer=None):
        self.sim = sim
        self.warmup_us = warmup_us
        self.measure_us = measure_us
        #: clients start spread over [0, stagger_us) — without this,
        #: identical closed-loop clients phase-lock into convoys that
        #: burst-queue at the server ports, inflating latency in a way
        #: real (decorrelated) clients do not.
        self.stagger_us = stagger_us
        self.tracer = tracer or NULL_TRACER
        self._clients = []

    def add_client(self, executor, workload):
        self._clients.append((executor, workload, _accepts_span(executor)))
        return self

    @property
    def end_time(self):
        return self.warmup_us + self.measure_us

    def _client_loop(self, index, executor, workload, recorder, counters,
                     takes_span):
        if self.stagger_us:
            yield self.sim.timeout((index * self.GOLDEN % 1.0)
                                   * self.stagger_us)
        traced = self.tracer.enabled
        flight = self.sim.flight
        series = self.sim.series
        while self.sim.now < self.end_time:
            op = workload.next_op()
            root = None
            op_id = None
            start = self.sim.now
            if flight is not None:
                name = getattr(op, "kind", None) or type(op).__name__
                op_id = flight.op_open(f"op.{name}", client=index)
            if traced:
                name = getattr(op, "kind", None) or type(op).__name__
                root = self.tracer.root(f"op.{name}", client=index)
                if takes_span:
                    info = yield from executor(op, span=root)
                else:
                    info = yield from executor(op)
                root.finish()
            else:
                info = yield from executor(op)
            finish = self.sim.now
            measured = start >= self.warmup_us and finish <= self.end_time
            aborts = info.get("aborts", 0) if info else 0
            if op_id is not None:
                flight.op_close(
                    op_id, status="aborted" if aborts else "ok",
                    latency_us=finish - start, aborts=aborts,
                    retries=info.get("retries", 0) if info else 0,
                    measured=measured)
            if series is not None:
                series.record_op(finish, finish - start, measured,
                                 ok=not aborts)
            if measured:
                recorder.record(finish, finish - start)
                counters["ops"] += 1
                if root is not None:
                    root.annotate(measured=True)
                if info:
                    counters["aborts"] += info.get("aborts", 0)
                    counters["retries"] += info.get("retries", 0)

    def run(self):
        """Execute the experiment; returns a :class:`RunResult`."""
        if not self._clients:
            raise ValueError("no clients added")
        recorder = LatencyRecorder(warmup_until=self.warmup_us)
        counters = {"ops": 0, "aborts": 0, "retries": 0}
        processes = [
            self.sim.spawn(
                self._client_loop(i, executor, workload, recorder, counters,
                                  takes_span),
                name=f"client{i}")
            for i, (executor, workload, takes_span) in
            enumerate(self._clients)
        ]
        done = self.sim.all_of(processes)
        waiter = self.sim.spawn(self._await(done), name="driver")
        self.sim.run_until_complete(waiter)
        window = self.measure_us
        throughput = counters["ops"] / window * 1e6 if window > 0 else 0.0
        return RunResult(
            clients=len(self._clients),
            ops=counters["ops"],
            throughput_ops_per_sec=throughput,
            mean_latency_us=recorder.mean(),
            median_latency_us=recorder.median(),
            p99_latency_us=recorder.p99(),
            aborts=counters["aborts"],
            retries=counters["retries"],
        )

    @staticmethod
    def _await(event):
        yield event
