"""Closed-loop measurement driver.

Mirrors the paper's methodology: a fixed population of closed-loop
clients (no think time) issue operations back to back; after a warmup
window, latencies and completions are recorded for the measurement
window. Sweeping the client population out traces the
throughput-versus-latency curves of Figs. 3, 4, 6, and 9.
"""

import inspect
from dataclasses import dataclass, field

from repro.obs.trace import NULL_TRACER
from repro.sim.stats import LatencyRecorder


@dataclass
class RunResult:
    """Summary of one driver run (one point on a curve)."""

    clients: int
    ops: int
    throughput_ops_per_sec: float
    mean_latency_us: float
    median_latency_us: float
    p99_latency_us: float
    aborts: int = 0
    retries: int = 0
    extra: dict = field(default_factory=dict)
    #: wall-clock seconds the simulated run cost on the host (regress
    #: schema ``wall`` section). Excluded from equality: two identical
    #: simulations never take identical host time, and the
    #: observers-don't-perturb tests compare results exactly.
    wall_s: float = field(default=0.0, compare=False)

    def row(self):
        """Compact dict for printing benchmark tables."""
        return {
            "clients": self.clients,
            "ops": self.ops,
            "tput_Mops": self.throughput_ops_per_sec / 1e6,
            "mean_us": round(self.mean_latency_us, 2),
            "p99_us": round(self.p99_latency_us, 2),
        }


def _accepts_span(executor):
    """True if ``executor(op, span=...)`` is callable with a span.

    Checked once per client at registration (not per op) so the hot
    loop pays no introspection cost. Executors that predate tracing
    (plain ``executor(op)``) keep working untraced.
    """
    try:
        signature = inspect.signature(executor)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == "span":
            return True
    return False


class ClosedLoopDriver:
    """Runs N closed-loop clients against an application adapter.

    Each client needs an *executor*: a callable ``executor(op)``
    returning a process generator that performs the operation and
    optionally returns a dict (e.g. ``{"retries": 2}``).
    """

    GOLDEN = 0.6180339887498949  # low-discrepancy stagger sequence

    def __init__(self, sim, warmup_us=200.0, measure_us=2_000.0,
                 stagger_us=30.0, tracer=None):
        self.sim = sim
        self.warmup_us = warmup_us
        self.measure_us = measure_us
        #: clients start spread over [0, stagger_us) — without this,
        #: identical closed-loop clients phase-lock into convoys that
        #: burst-queue at the server ports, inflating latency in a way
        #: real (decorrelated) clients do not.
        self.stagger_us = stagger_us
        self.tracer = tracer or NULL_TRACER
        self._clients = []

    def add_client(self, executor, workload):
        self._clients.append((executor, workload, _accepts_span(executor)))
        return self

    @property
    def end_time(self):
        return self.warmup_us + self.measure_us

    def _client_loop(self, index, executor, workload, recorder, counters,
                     takes_span):
        sim = self.sim
        if self.stagger_us:
            yield sim.timeout((index * self.GOLDEN % 1.0)
                              * self.stagger_us)
        traced = self.tracer.enabled
        flight = sim.flight
        series = sim.series
        warmup_until = self.warmup_us
        end_time = warmup_until + self.measure_us
        next_op = workload.next_op
        # Root-span labels are one of a few op kinds; cache the
        # f-strings instead of rebuilding one per operation.
        labels = {}
        while sim._now < end_time:
            op = next_op()
            root = None
            op_id = None
            start = sim._now
            if flight is not None or traced:
                name = getattr(op, "kind", None) or type(op).__name__
                label = labels.get(name)
                if label is None:
                    label = labels[name] = f"op.{name}"
            if flight is not None:
                op_id = flight.op_open(label, client=index)
            if traced:
                root = self.tracer.root(label, client=index)
                if takes_span:
                    info = yield from executor(op, span=root)
                else:
                    info = yield from executor(op)
                root.finish()
            else:
                info = yield from executor(op)
            finish = sim._now
            measured = start >= warmup_until and finish <= end_time
            aborts = info.get("aborts", 0) if info else 0
            if op_id is not None:
                flight.op_close(
                    op_id, status="aborted" if aborts else "ok",
                    latency_us=finish - start, aborts=aborts,
                    retries=info.get("retries", 0) if info else 0,
                    measured=measured)
            if series is not None:
                series.record_op(finish, finish - start, measured,
                                 ok=not aborts)
            if measured:
                recorder.record(finish, finish - start)
                counters["ops"] += 1
                if root is not None:
                    root.annotate(measured=True)
                if info:
                    counters["aborts"] += info.get("aborts", 0)
                    counters["retries"] += info.get("retries", 0)

    def run(self):
        """Execute the experiment; returns a :class:`RunResult`."""
        if not self._clients:
            raise ValueError("no clients added")
        recorder = LatencyRecorder(warmup_until=self.warmup_us)
        counters = {"ops": 0, "aborts": 0, "retries": 0}
        processes = [
            self.sim.spawn(
                self._client_loop(i, executor, workload, recorder, counters,
                                  takes_span),
                name=f"client{i}")
            for i, (executor, workload, takes_span) in
            enumerate(self._clients)
        ]
        done = self.sim.all_of(processes)
        waiter = self.sim.spawn(self._await(done), name="driver")
        self.sim.run_until_complete(waiter)
        window = self.measure_us
        throughput = counters["ops"] / window * 1e6 if window > 0 else 0.0
        return RunResult(
            clients=len(self._clients),
            ops=counters["ops"],
            throughput_ops_per_sec=throughput,
            mean_latency_us=recorder.mean(),
            median_latency_us=recorder.median(),
            p99_latency_us=recorder.p99(),
            aborts=counters["aborts"],
            retries=counters["retries"],
        )

    @staticmethod
    def _await(event):
        yield event


class OpenLoopDriver:
    """Runs aggregated open-loop arrival sources against an adapter.

    Each source (see
    :class:`repro.workload.sources.AggregatedOpenLoopSource`) models
    thousands of clients in one coroutine: the source loop draws
    inter-arrival gaps, and every arrival spawns a fire-and-forget op
    process through the source's executor. The source's bounded
    in-flight window provides backpressure: a full window defers
    arrivals (counted, never dropped) until a completion frees a slot.

    Measurement accounting (warmup window, latency recorder, series /
    flight hooks) matches :class:`ClosedLoopDriver`, so results are
    comparable row for row; ``RunResult.clients`` is the *modeled*
    population, and ``extra`` carries the source model and the
    stalled-arrival count.
    """

    def __init__(self, sim, warmup_us=200.0, measure_us=2_000.0,
                 tracer=None):
        self.sim = sim
        self.warmup_us = warmup_us
        self.measure_us = measure_us
        self.tracer = tracer or NULL_TRACER
        self._sources = []

    def add_source(self, executor, source):
        self._sources.append((executor, source, _accepts_span(executor)))
        return self

    @property
    def end_time(self):
        return self.warmup_us + self.measure_us

    def _source_loop(self, index, executor, source, recorder, counters,
                     takes_span):
        sim = self.sim
        end_time = self.warmup_us + self.measure_us
        next_gap = source.next_gap_us
        next_op = source.next_op
        spawn = sim.spawn
        # Shared with the op runners: in-flight count and the gate a
        # stalled arrival waits on. One mutable cell, not attributes on
        # self — a driver may run many sources.
        state = {"in_flight": 0, "gate": None}
        while True:
            gap = next_gap()
            if sim._now + gap >= end_time:
                return
            yield sim.timeout(gap)
            if state["in_flight"] >= source.window:
                # Window full: defer this arrival until a completion
                # frees a slot. Deferred arrivals are counted — a large
                # number means the configured offered load exceeds what
                # the window can carry and the source is degrading to
                # window-limited closed-loop behaviour.
                counters["stalls"] += 1
                source.stalled_arrivals += 1
                gate = state["gate"]
                if gate is None:
                    gate = state["gate"] = sim.event()
                yield gate
                if sim._now >= end_time:
                    return
            state["in_flight"] += 1
            spawn(self._op_runner(index, executor, next_op(), recorder,
                                  counters, state, takes_span),
                  name="op")

    def _op_runner(self, index, executor, op, recorder, counters, state,
                   takes_span):
        sim = self.sim
        flight = sim.flight
        series = sim.series
        traced = self.tracer.enabled
        warmup_until = self.warmup_us
        end_time = warmup_until + self.measure_us
        start = sim._now
        root = None
        op_id = None
        if flight is not None or traced:
            label = f"op.{getattr(op, 'kind', None) or type(op).__name__}"
        if flight is not None:
            op_id = flight.op_open(label, client=index)
        info = None
        try:
            if traced:
                root = self.tracer.root(label, client=index)
                if takes_span:
                    info = yield from executor(op, span=root)
                else:
                    info = yield from executor(op)
                root.finish()
            else:
                info = yield from executor(op)
        finally:
            # Free the window slot even when the op fails — a crashing
            # executor must not wedge the arrival stream (the failure
            # itself still surfaces through the orphan-failure check).
            state["in_flight"] -= 1
            gate = state["gate"]
            if gate is not None:
                state["gate"] = None
                gate.succeed()
        finish = sim._now
        measured = start >= warmup_until and finish <= end_time
        aborts = info.get("aborts", 0) if info else 0
        if op_id is not None:
            flight.op_close(
                op_id, status="aborted" if aborts else "ok",
                latency_us=finish - start, aborts=aborts,
                retries=info.get("retries", 0) if info else 0,
                measured=measured)
        if series is not None:
            series.record_op(finish, finish - start, measured,
                             ok=not aborts)
        if measured:
            recorder.record(finish, finish - start)
            counters["ops"] += 1
            if root is not None:
                root.annotate(measured=True)
            if info:
                counters["aborts"] += aborts
                counters["retries"] += info.get("retries", 0)

    def run(self):
        """Execute the experiment; returns a :class:`RunResult`.

        The run ends when every source's arrival stream is exhausted;
        ops still in flight at ``end_time`` complete outside the
        measurement window (unmeasured), exactly like the closed-loop
        driver's tail ops.
        """
        if not self._sources:
            raise ValueError("no sources added")
        recorder = LatencyRecorder(warmup_until=self.warmup_us)
        counters = {"ops": 0, "aborts": 0, "retries": 0, "stalls": 0}
        processes = [
            self.sim.spawn(
                self._source_loop(i, executor, source, recorder, counters,
                                  takes_span),
                name=f"source{i}")
            for i, (executor, source, takes_span) in
            enumerate(self._sources)
        ]
        done = self.sim.all_of(processes)
        waiter = self.sim.spawn(ClosedLoopDriver._await(done), name="driver")
        self.sim.run_until_complete(waiter)
        window = self.measure_us
        throughput = counters["ops"] / window * 1e6 if window > 0 else 0.0
        n_clients = sum(source.n_clients
                        for _, source, _ in self._sources)
        result = RunResult(
            clients=n_clients,
            ops=counters["ops"],
            throughput_ops_per_sec=throughput,
            mean_latency_us=recorder.mean(),
            median_latency_us=recorder.median(),
            p99_latency_us=recorder.p99(),
            aborts=counters["aborts"],
            retries=counters["retries"],
        )
        result.extra["stalled_arrivals"] = counters["stalls"]
        result.extra["n_sources"] = len(self._sources)
        return result
