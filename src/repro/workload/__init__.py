"""Workload generation and measurement drivers for the evaluation."""

from repro.workload.keydist import UniformKeys, ZipfKeys, make_distribution
from repro.workload.ycsb import (
    KvOp,
    TxnOp,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YcsbTransactionalWorkload,
    YcsbWorkload,
)
from repro.workload.driver import ClosedLoopDriver, RunResult

__all__ = [
    "ClosedLoopDriver",
    "KvOp",
    "RunResult",
    "TxnOp",
    "UniformKeys",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YcsbTransactionalWorkload",
    "YcsbWorkload",
    "ZipfKeys",
    "make_distribution",
]
