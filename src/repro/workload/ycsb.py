"""YCSB-style workload definitions (Cooper et al., SoCC '10).

The paper evaluates on:

* **YCSB-C** — 100% reads (Fig. 3, Fig. 6's read side);
* **YCSB-A** — 50% reads / 50% writes (Fig. 4, Figs. 6-7);
* **YCSB-T** — short read-modify-write transactions (Figs. 9-10),
  per Dey et al., ICDEW '14.

All use 512-byte values and 8-byte keys, uniform or Zipf key choice.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.workload.keydist import make_distribution

DEFAULT_VALUE_SIZE = 512


@dataclass(frozen=True)
class KvOp:
    """One key-value operation: kind is 'get' or 'put'."""

    kind: str
    key: int
    value: bytes = b""


@dataclass(frozen=True)
class TxnOp:
    """One transaction: read ``read_keys``, then write ``write_keys``."""

    kind: str
    read_keys: Tuple[int, ...]
    write_keys: Tuple[int, ...]
    value: bytes = b""


class YcsbWorkload:
    """A read/write mix over a key distribution (one per client)."""

    def __init__(self, n_keys, read_fraction, value_size=DEFAULT_VALUE_SIZE,
                 zipf=0.0, seed=0, client_id=0):
        self.n_keys = n_keys
        self.read_fraction = read_fraction
        self.value_size = value_size
        self.client_id = client_id
        self._keys = make_distribution(n_keys, zipf=zipf,
                                       seed=seed * 7919 + client_id,
                                       permutation_seed=seed)
        import random
        self._coin = random.Random(seed * 104729 + client_id)
        self._payload = bytes((client_id + i) % 256
                              for i in range(value_size))
        # Key draws are served from vectorized blocks (stream-identical
        # to single draws, see ``sample_block``), and the frozen KvOp
        # value objects are interned per (kind, key) — a closed-loop
        # client re-issues the same few thousand ops for a whole run.
        self._key_block = []
        self._key_next = 0
        self._op_cache = {}

    _KEY_BLOCK = 64

    def next_op(self):
        index = self._key_next
        block = self._key_block
        if index >= len(block):
            block = self._key_block = self._keys.sample_block(self._KEY_BLOCK)
            index = 0
        self._key_next = index + 1
        key = block[index]
        if self._coin.random() < self.read_fraction:
            op = self._op_cache.get(key)
            if op is None:
                op = self._op_cache[key] = KvOp("get", key)
            return op
        return KvOp("put", key, self._payload)


def YCSB_C(n_keys, **kwargs):
    """Workload C: 100% reads."""
    return YcsbWorkload(n_keys, read_fraction=1.0, **kwargs)


def YCSB_A(n_keys, **kwargs):
    """Workload A: 50% reads / 50% updates."""
    return YcsbWorkload(n_keys, read_fraction=0.5, **kwargs)


def YCSB_B(n_keys, **kwargs):
    """Workload B: 95% reads / 5% updates (read-mostly)."""
    return YcsbWorkload(n_keys, read_fraction=0.95, **kwargs)


class YcsbTransactionalWorkload:
    """YCSB-T: short read-modify-write transactions.

    Each transaction reads ``keys_per_txn`` keys and writes them back —
    the classic read-modify-write shape used in the paper's Fig. 9/10.
    """

    def __init__(self, n_keys, keys_per_txn=2, value_size=DEFAULT_VALUE_SIZE,
                 zipf=0.0, seed=0, client_id=0):
        self.n_keys = n_keys
        self.keys_per_txn = keys_per_txn
        self.value_size = value_size
        self.client_id = client_id
        self._keys = make_distribution(n_keys, zipf=zipf,
                                       seed=seed * 7919 + client_id,
                                       permutation_seed=seed)
        self._payload = bytes((client_id + i) % 256
                              for i in range(value_size))

    def next_op(self):
        keys = tuple(sorted(self._keys.sample_distinct(self.keys_per_txn)))
        return TxnOp("txn", read_keys=keys, write_keys=keys,
                     value=self._payload)
