"""Aggregated open-loop arrival sources: thousands of clients per coroutine.

A fig-scale sweep with 10⁵–10⁶ *closed-loop* client coroutines is not
feasible in a CI budget: every client costs a generator frame, a stagger
timer, and a per-op resume chain, so the kernel's events/sec ceiling is
spent on bookkeeping rather than on the system under test. This module
trades per-client coroutines for **aggregated sources**, exploiting a
standard identity: the superposition of ``n`` independent Poisson
processes with rate λ is itself a Poisson process with rate ``nλ``. One
coroutine drawing exponential inter-arrival gaps at the aggregate rate
reproduces the *arrival process* of the whole client population exactly
— so a source modeling 100 000 clients costs the kernel the same per-op
work as one client, and sweeps into the Storm-style many-thousands-of-
connections regimes fit inside CI.

Fidelity caveats (documented in ``docs/performance.md``):

* **Open loop, not closed loop.** A closed-loop client waits for its
  previous op before issuing the next, so its offered load backs off
  under server congestion. An open-loop source keeps arriving at the
  configured rate regardless — the right model for "many independent
  clients each issuing rarely", the wrong one for "few clients
  hammering". The bounded in-flight ``window`` restores backpressure at
  saturation: when the window is full, arrivals *defer* (they queue
  behind the stall, counted in ``stalled_arrivals``) rather than drop,
  so a saturated source degrades gracefully into window-limited
  closed-loop behaviour — exactly what a real bounded client pool does.
* **Shared connection state.** All ops of one source ride one client
  adapter (one request channel, one reply service), so per-client NIC
  state (QP caches, channel depth telemetry) is per-source, not
  per-modeled-client. Spread the population over several sources (the
  driver default is one per client host) when that matters.
* **Key streams.** Keys come from one shared distribution per source
  (batched draws, see :meth:`repro.workload.keydist.UniformKeys.
  sample_block`), not one stream per modeled client. Aggregate key
  popularity — what contention experiments measure — is identical;
  per-client key locality is not modeled.

Determinism: all randomness (gaps, keys, read/write coin) derives from
``seed`` and ``source_id`` via independent PCG64 streams, so a given
configuration replays bit-identically.
"""

import numpy as np

from repro.workload.keydist import make_distribution
from repro.workload.ycsb import DEFAULT_VALUE_SIZE, KvOp

#: draws buffered per vectorized RNG call; amortizes numpy call
#: overhead without holding large arrays per source
_BLOCK = 256


class AggregatedOpenLoopSource:
    """``n_clients`` open-loop clients folded into one arrival stream.

    Each modeled client issues ops as a Poisson process at
    ``rate_per_client_ops_s``; the source draws inter-arrival gaps from
    the exponential distribution at the aggregate rate. ``window``
    bounds ops in flight across the whole aggregate (default: one slot
    per 256 modeled clients, at least 1, at most 1024 — a deep enough
    pipe to saturate a server while keeping the heap O(window)).

    The read/write mix and key distribution mirror
    :class:`repro.workload.ycsb.YcsbWorkload` (YCSB-C at
    ``read_fraction=1.0``), with all draws batched.
    """

    def __init__(self, n_clients, rate_per_client_ops_s, n_keys,
                 read_fraction=1.0, value_size=DEFAULT_VALUE_SIZE,
                 zipf=0.0, seed=0, source_id=0, window=None):
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if rate_per_client_ops_s <= 0:
            raise ValueError("rate_per_client_ops_s must be > 0")
        self.n_clients = n_clients
        self.rate_per_client_ops_s = rate_per_client_ops_s
        self.n_keys = n_keys
        self.read_fraction = read_fraction
        self.value_size = value_size
        self.zipf = zipf
        self.seed = seed
        self.source_id = source_id
        #: mean inter-arrival gap of the aggregate process, simulated µs
        self.mean_gap_us = 1e6 / (n_clients * rate_per_client_ops_s)
        if window is None:
            window = max(1, min(n_clients // 256 + 1, 1024))
        self.window = window
        self.stalled_arrivals = 0
        self._keys = make_distribution(n_keys, zipf=zipf,
                                       seed=seed * 7919 + source_id,
                                       permutation_seed=seed)
        self._gaps_rng = np.random.default_rng(
            (seed * 104729 + source_id) ^ 0xA44)
        self._coin_rng = np.random.default_rng(
            (seed * 94907 + source_id) ^ 0xC01)
        self._payload = bytes((source_id + i) % 256
                              for i in range(value_size))
        self._gap_block = ()
        self._gap_next = 0
        self._key_block = ()
        self._key_next = 0
        self._coin_block = ()
        self._coin_next = 0
        self._op_cache = {}

    def next_gap_us(self):
        """Exponential inter-arrival gap at the aggregate rate."""
        index = self._gap_next
        block = self._gap_block
        if index >= len(block):
            block = self._gap_block = self._gaps_rng.exponential(
                self.mean_gap_us, size=_BLOCK).tolist()
            index = 0
        self._gap_next = index + 1
        return block[index]

    def next_op(self):
        """The next operation of the aggregate stream."""
        index = self._key_next
        block = self._key_block
        if index >= len(block):
            block = self._key_block = self._keys.sample_block(_BLOCK)
            index = 0
        self._key_next = index + 1
        key = block[index]
        if self.read_fraction >= 1.0 or self._next_coin() < self.read_fraction:
            op = self._op_cache.get(key)
            if op is None:
                op = self._op_cache[key] = KvOp("get", key)
            return op
        return KvOp("put", key, self._payload)

    def _next_coin(self):
        index = self._coin_next
        block = self._coin_block
        if index >= len(block):
            block = self._coin_block = self._coin_rng.random(_BLOCK).tolist()
            index = 0
        self._coin_next = index + 1
        return block[index]

    def describe(self):
        """Config dict recorded next to results (regress schema)."""
        return {
            "model": "aggregated-open-loop",
            "clients": self.n_clients,
            "rate_per_client_ops_s": self.rate_per_client_ops_s,
            "read_fraction": self.read_fraction,
            "zipf": self.zipf,
            "window": self.window,
            "seed": self.seed,
        }


def partition_clients(n_clients, n_sources):
    """Spread ``n_clients`` over ``n_sources`` (earlier get the rest)."""
    if n_sources < 1:
        raise ValueError("n_sources must be >= 1")
    n_sources = min(n_sources, n_clients)
    base, rest = divmod(n_clients, n_sources)
    return [base + (1 if i < rest else 0) for i in range(n_sources)]
