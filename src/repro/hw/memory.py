"""Byte-addressable simulated host memory.

Every data structure the paper's systems build — hash tables, extent
stores, ABD metadata arrays, OCC timestamp slots — lives in one of
these arrays. Addresses are plain integers; address 0 is reserved as
the NULL pointer so stored pointers can be validity-checked.
"""

import struct

from repro.obs import hostprof as _hostprof

POINTER_SIZE = 8
NULL_PTR = 0

#: Precompiled little-endian codecs for the common integer widths.
#: ``unpack_from``/``pack_into`` work directly on the backing
#: bytearray — no intermediate ``bytes`` slice per access.
_STRUCTS = {
    1: struct.Struct("<B"),
    2: struct.Struct("<H"),
    4: struct.Struct("<I"),
    8: struct.Struct("<Q"),
}
_U64_UNPACK_FROM = _STRUCTS[8].unpack_from
_U64_PACK_INTO = _STRUCTS[8].pack_into


class MemoryError_(Exception):
    """Out-of-bounds or misaligned access to simulated memory."""


class HostMemory:
    """A contiguous simulated physical memory with a bump allocator.

    The first ``POINTER_SIZE`` bytes are reserved (NULL page) so that no
    valid allocation ever has address 0.
    """

    __slots__ = ("size", "_data", "_brk", "_fill_cache")

    def __init__(self, size):
        if size <= POINTER_SIZE:
            raise MemoryError_(f"memory too small: {size}")
        self.size = size
        self._data = bytearray(size)
        self._brk = POINTER_SIZE
        # byte value -> cached pattern for fill(); grown on demand so
        # repeated fills of the same value never re-allocate.
        self._fill_cache = {}

    # -- allocation (server-CPU setup-time; not simulated-time) ----------

    def sbrk(self, nbytes, align=8):
        """Carve ``nbytes`` from the bump allocator; returns the address."""
        if nbytes < 0:
            raise MemoryError_(f"negative allocation: {nbytes}")
        start = self._brk
        if align > 1:
            start = (start + align - 1) // align * align
        end = start + nbytes
        if end > self.size:
            raise MemoryError_(
                f"out of memory: need {nbytes} bytes at {start}, size {self.size}")
        self._brk = end
        return start

    @property
    def bytes_allocated(self):
        """High-water mark of the bump allocator."""
        return self._brk

    # -- raw access --------------------------------------------------------

    def _check(self, addr, length):
        if length < 0:
            raise MemoryError_(f"negative length: {length}")
        if addr < POINTER_SIZE or addr + length > self.size:
            raise MemoryError_(
                f"access [{addr}, {addr + length}) outside memory of size {self.size}")

    def read(self, addr, length):
        """Return ``length`` bytes starting at ``addr``."""
        self._check(addr, length)
        return bytes(self._data[addr:addr + length])

    def write(self, addr, data):
        """Store ``data`` (bytes-like) at ``addr``."""
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    # -- integer convenience ------------------------------------------------

    def read_uint(self, addr, width=POINTER_SIZE):
        """Read an unsigned little-endian integer of ``width`` bytes.

        The common widths (1/2/4/8) decode through precompiled
        :class:`struct.Struct` codecs straight off the backing array —
        no per-call ``int.from_bytes`` or intermediate ``bytes`` copy.
        Integer codecs charge the ambient host profiler's "codec"
        bucket (a single None check when profiling is off).
        """
        hp = _hostprof.ACTIVE
        if hp is None or not hp._timing:
            codec = _STRUCTS.get(width)
            if codec is None:
                return int.from_bytes(self.read(addr, width), "little")
            if addr < POINTER_SIZE or addr + width > self.size:
                self._check(addr, width)
            return codec.unpack_from(self._data, addr)[0]
        hp.enter("codec")
        try:
            codec = _STRUCTS.get(width)
            if codec is None:
                return int.from_bytes(self.read(addr, width), "little")
            if addr < POINTER_SIZE or addr + width > self.size:
                self._check(addr, width)
            return codec.unpack_from(self._data, addr)[0]
        finally:
            hp.exit()

    def write_uint(self, addr, value, width=POINTER_SIZE):
        """Write an unsigned little-endian integer of ``width`` bytes."""
        hp = _hostprof.ACTIVE
        if hp is not None and not hp._timing:
            hp = None
        if hp is not None:
            hp.enter("codec")
        try:
            if value < 0 or value >= 1 << (8 * width):
                raise MemoryError_(
                    f"value {value} does not fit in {width} bytes")
            codec = _STRUCTS.get(width)
            if codec is None:
                self.write(addr, value.to_bytes(width, "little"))
            else:
                if addr < POINTER_SIZE or addr + width > self.size:
                    self._check(addr, width)
                codec.pack_into(self._data, addr, value)
        finally:
            if hp is not None:
                hp.exit()

    def read_ptr(self, addr):
        """Read a stored pointer (8-byte unsigned)."""
        hp = _hostprof.ACTIVE
        if hp is None or not hp._timing:
            if addr < POINTER_SIZE or addr + 8 > self.size:
                self._check(addr, 8)
            return _U64_UNPACK_FROM(self._data, addr)[0]
        return self.read_uint(addr, POINTER_SIZE)

    def write_ptr(self, addr, target):
        """Store a pointer (8-byte unsigned)."""
        self.write_uint(addr, target, POINTER_SIZE)

    def fill(self, addr, length, byte=0):
        """Set ``length`` bytes at ``addr`` to ``byte``.

        Fill patterns are cached per byte value (and grown to the
        largest length seen), so repeated fills — allocator scrubs,
        slot retirement — do not allocate a fresh ``length``-byte
        string every call.
        """
        self._check(addr, length)
        if length == 0:
            return
        pattern = self._fill_cache.get(byte)
        if pattern is None or len(pattern) < length:
            pattern = bytes([byte]) * max(length, 64)
            self._fill_cache[byte] = pattern
        # A memoryview slice of the cached pattern is zero-copy; the
        # bytearray slice-assign copies straight from it.
        self._data[addr:addr + length] = memoryview(pattern)[:length]

    def contains(self, addr, length=1):
        """True if [addr, addr+length) is a valid (non-NULL-page) range.

        ``addr`` must itself address a real byte (``addr < size``): a
        zero-length range hanging off the end of memory is *not*
        contained — pointers one-past-the-end are never dereferenceable.
        Zero-length ``read``/``write`` remain permissive anywhere in
        [POINTER_SIZE, size] (they touch nothing).
        """
        return (POINTER_SIZE <= addr < self.size and length >= 0
                and addr + length <= self.size)
