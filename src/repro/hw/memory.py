"""Byte-addressable simulated host memory.

Every data structure the paper's systems build — hash tables, extent
stores, ABD metadata arrays, OCC timestamp slots — lives in one of
these arrays. Addresses are plain integers; address 0 is reserved as
the NULL pointer so stored pointers can be validity-checked.
"""

from repro.obs import hostprof as _hostprof

POINTER_SIZE = 8
NULL_PTR = 0


class MemoryError_(Exception):
    """Out-of-bounds or misaligned access to simulated memory."""


class HostMemory:
    """A contiguous simulated physical memory with a bump allocator.

    The first ``POINTER_SIZE`` bytes are reserved (NULL page) so that no
    valid allocation ever has address 0.
    """

    def __init__(self, size):
        if size <= POINTER_SIZE:
            raise MemoryError_(f"memory too small: {size}")
        self.size = size
        self._data = bytearray(size)
        self._brk = POINTER_SIZE

    # -- allocation (server-CPU setup-time; not simulated-time) ----------

    def sbrk(self, nbytes, align=8):
        """Carve ``nbytes`` from the bump allocator; returns the address."""
        if nbytes < 0:
            raise MemoryError_(f"negative allocation: {nbytes}")
        start = self._brk
        if align > 1:
            start = (start + align - 1) // align * align
        end = start + nbytes
        if end > self.size:
            raise MemoryError_(
                f"out of memory: need {nbytes} bytes at {start}, size {self.size}")
        self._brk = end
        return start

    @property
    def bytes_allocated(self):
        """High-water mark of the bump allocator."""
        return self._brk

    # -- raw access --------------------------------------------------------

    def _check(self, addr, length):
        if length < 0:
            raise MemoryError_(f"negative length: {length}")
        if addr < POINTER_SIZE or addr + length > self.size:
            raise MemoryError_(
                f"access [{addr}, {addr + length}) outside memory of size {self.size}")

    def read(self, addr, length):
        """Return ``length`` bytes starting at ``addr``."""
        self._check(addr, length)
        return bytes(self._data[addr:addr + length])

    def write(self, addr, data):
        """Store ``data`` (bytes-like) at ``addr``."""
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    # -- integer convenience ------------------------------------------------

    def read_uint(self, addr, width=POINTER_SIZE):
        """Read an unsigned little-endian integer of ``width`` bytes.

        Integer codecs charge the ambient host profiler's "codec"
        bucket (a single None check when profiling is off).
        """
        hp = _hostprof.ACTIVE
        if hp is None:
            return int.from_bytes(self.read(addr, width), "little")
        hp.enter("codec")
        try:
            return int.from_bytes(self.read(addr, width), "little")
        finally:
            hp.exit()

    def write_uint(self, addr, value, width=POINTER_SIZE):
        """Write an unsigned little-endian integer of ``width`` bytes."""
        hp = _hostprof.ACTIVE
        if hp is not None:
            hp.enter("codec")
        try:
            if value < 0 or value >= 1 << (8 * width):
                raise MemoryError_(
                    f"value {value} does not fit in {width} bytes")
            self.write(addr, value.to_bytes(width, "little"))
        finally:
            if hp is not None:
                hp.exit()

    def read_ptr(self, addr):
        """Read a stored pointer (8-byte unsigned)."""
        return self.read_uint(addr, POINTER_SIZE)

    def write_ptr(self, addr, target):
        """Store a pointer (8-byte unsigned)."""
        self.write_uint(addr, target, POINTER_SIZE)

    def fill(self, addr, length, byte=0):
        """Set ``length`` bytes at ``addr`` to ``byte``."""
        self._check(addr, length)
        self._data[addr:addr + length] = bytes([byte]) * length

    def contains(self, addr, length=1):
        """True if [addr, addr+length) is a valid (non-NULL-page) range."""
        return addr >= POINTER_SIZE and length >= 0 and addr + length <= self.size
