"""CPU core pools.

Two-sided RPC handlers and the software PRISM stack occupy cores for a
per-operation service time; when offered load exceeds core capacity the
queueing delay shows up directly in the measured latency curves, which
is how the paper's saturation knees arise when the CPU (rather than the
network) is the bottleneck.
"""

from repro.obs.trace import NULL_SPAN
from repro.sim.resources import Resource


class CorePool:
    """A pool of identical cores, FIFO-scheduled."""

    def __init__(self, sim, cores, name="cpu"):
        self.sim = sim
        self.cores = cores
        self.name = name
        # kind="cpu": with a utilization collector installed, the pool
        # self-registers so core busy %, run-queue depth, and dispatch
        # delay show up in the per-run report and bottleneck verdict.
        self._pool = Resource(sim, capacity=cores, name=name, kind="cpu")
        self.ops_executed = 0

    def execute(self, service_time_us, work=None, span=NULL_SPAN):
        """Process helper: occupy one core for ``service_time_us``.

        ``work``, if given, is a plain callable run at the *end* of the
        service interval (when the simulated instruction stream would
        have completed); its return value is this generator's value.

        ``span`` parents a queue span (waiting for a free core) and a
        cpu span (the service interval) for tracing.
        """
        with span.child(f"{self.name}.queue", phase="queue"):
            yield self._pool.acquire()
        try:
            with span.child(f"{self.name}.exec", phase="cpu"):
                yield self.sim.timeout(service_time_us)
            self.ops_executed += 1
            if work is not None:
                return work()
            return None
        finally:
            self._pool.release()

    @property
    def queue_length(self):
        return self._pool.queue_length

    def utilization(self, elapsed):
        """Mean busy fraction over ``elapsed`` microseconds."""
        return self._pool.utilization(elapsed)
