"""Binary layout codecs shared by all applications.

PRISM operations move raw bytes; the applications impose structure on
those bytes. The codecs here centralize the little-endian packing so
that client-side and server-side views of a structure can never drift
apart.
"""

from repro.obs import hostprof as _hostprof
from repro.hw.memory import POINTER_SIZE

U16 = 2
U32 = 4
U64 = 8
BOUNDED_PTR_SIZE = POINTER_SIZE + U64  # ⟨ptr, bound⟩ struct of §3.1

# Host-profiling: the public codec entry points charge their wall time
# to the "codec" bucket of the ambient profiler (repro.obs.hostprof).
# Internals call the _raw helpers so a profiled pack() is sampled once,
# not once per field. With no profiler active (the default) each hook
# is a single module-attribute None check.


def _pack_uint_raw(value, width):
    return value.to_bytes(width, "little")


def _unpack_uint_raw(data, offset, width):
    return int.from_bytes(data[offset:offset + width], "little")


def pack_uint(value, width):
    """Little-endian unsigned encode; raises if it does not fit."""
    hp = _hostprof.ACTIVE
    if hp is None:
        return value.to_bytes(width, "little")
    hp.enter("codec")
    try:
        return value.to_bytes(width, "little")
    finally:
        hp.exit()


def unpack_uint(data, offset=0, width=U64):
    """Little-endian unsigned decode from ``data[offset:offset+width]``."""
    hp = _hostprof.ACTIVE
    if hp is None:
        return int.from_bytes(data[offset:offset + width], "little")
    hp.enter("codec")
    try:
        return int.from_bytes(data[offset:offset + width], "little")
    finally:
        hp.exit()


def pack_bounded_ptr(addr, bound):
    """Encode the ⟨ptr, bound⟩ struct used by bounded indirect ops."""
    hp = _hostprof.ACTIVE
    if hp is not None:
        hp.enter("codec")
    try:
        return (_pack_uint_raw(addr, POINTER_SIZE)
                + _pack_uint_raw(bound, U64))
    finally:
        if hp is not None:
            hp.exit()


def unpack_bounded_ptr(data, offset=0):
    """Decode a ⟨ptr, bound⟩ struct; returns (addr, bound)."""
    hp = _hostprof.ACTIVE
    if hp is not None:
        hp.enter("codec")
    try:
        addr = _unpack_uint_raw(data, offset, POINTER_SIZE)
        bound = _unpack_uint_raw(data, offset + POINTER_SIZE, U64)
        return addr, bound
    finally:
        if hp is not None:
            hp.exit()


class FieldStruct:
    """A tiny named-field binary struct.

    Fields are ``(name, width_bytes)`` pairs laid out contiguously in
    declaration order. Values are unsigned little-endian integers;
    a width of None marks a trailing variable-length bytes field.
    """

    def __init__(self, *fields):
        self.fields = list(fields)
        self._offsets = {}
        offset = 0
        for index, (name, width) in enumerate(self.fields):
            if width is None and index != len(self.fields) - 1:
                raise ValueError("variable-length field must be last")
            self._offsets[name] = offset
            if width is not None:
                offset += width
        self.fixed_size = offset

    def offset(self, name):
        """Byte offset of ``name`` from the start of the struct."""
        return self._offsets[name]

    def width(self, name):
        """Declared width of ``name`` (None for the variable tail)."""
        for field_name, field_width in self.fields:
            if field_name == name:
                return field_width
        raise KeyError(name)

    def pack(self, **values):
        """Encode the struct; variable tail defaults to b''."""
        hp = _hostprof.ACTIVE
        if hp is not None:
            hp.enter("codec")
        try:
            parts = []
            for name, width in self.fields:
                value = values.get(name, 0 if width is not None else b"")
                if width is None:
                    parts.append(bytes(value))
                else:
                    parts.append(_pack_uint_raw(value, width))
            return b"".join(parts)
        finally:
            if hp is not None:
                hp.exit()

    def unpack(self, data):
        """Decode into a dict (variable tail under its field name)."""
        hp = _hostprof.ACTIVE
        if hp is not None:
            hp.enter("codec")
        try:
            values = {}
            for name, width in self.fields:
                offset = self._offsets[name]
                if width is None:
                    values[name] = bytes(data[offset:])
                else:
                    values[name] = _unpack_uint_raw(data, offset, width)
            return values
        finally:
            if hp is not None:
                hp.exit()
