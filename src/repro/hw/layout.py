"""Binary layout codecs shared by all applications.

PRISM operations move raw bytes; the applications impose structure on
those bytes. The codecs here centralize the little-endian packing so
that client-side and server-side views of a structure can never drift
apart.
"""

from repro.hw.memory import POINTER_SIZE

U16 = 2
U32 = 4
U64 = 8
BOUNDED_PTR_SIZE = POINTER_SIZE + U64  # ⟨ptr, bound⟩ struct of §3.1


def pack_uint(value, width):
    """Little-endian unsigned encode; raises if it does not fit."""
    return value.to_bytes(width, "little")


def unpack_uint(data, offset=0, width=U64):
    """Little-endian unsigned decode from ``data[offset:offset+width]``."""
    return int.from_bytes(data[offset:offset + width], "little")


def pack_bounded_ptr(addr, bound):
    """Encode the ⟨ptr, bound⟩ struct used by bounded indirect ops."""
    return pack_uint(addr, POINTER_SIZE) + pack_uint(bound, U64)


def unpack_bounded_ptr(data, offset=0):
    """Decode a ⟨ptr, bound⟩ struct; returns (addr, bound)."""
    addr = unpack_uint(data, offset, POINTER_SIZE)
    bound = unpack_uint(data, offset + POINTER_SIZE, U64)
    return addr, bound


class FieldStruct:
    """A tiny named-field binary struct.

    Fields are ``(name, width_bytes)`` pairs laid out contiguously in
    declaration order. Values are unsigned little-endian integers;
    a width of None marks a trailing variable-length bytes field.
    """

    def __init__(self, *fields):
        self.fields = list(fields)
        self._offsets = {}
        offset = 0
        for index, (name, width) in enumerate(self.fields):
            if width is None and index != len(self.fields) - 1:
                raise ValueError("variable-length field must be last")
            self._offsets[name] = offset
            if width is not None:
                offset += width
        self.fixed_size = offset

    def offset(self, name):
        """Byte offset of ``name`` from the start of the struct."""
        return self._offsets[name]

    def width(self, name):
        """Declared width of ``name`` (None for the variable tail)."""
        for field_name, field_width in self.fields:
            if field_name == name:
                return field_width
        raise KeyError(name)

    def pack(self, **values):
        """Encode the struct; variable tail defaults to b''."""
        parts = []
        for name, width in self.fields:
            value = values.get(name, 0 if width is not None else b"")
            if width is None:
                parts.append(bytes(value))
            else:
                parts.append(pack_uint(value, width))
        return b"".join(parts)

    def unpack(self, data):
        """Decode into a dict (variable tail under its field name)."""
        values = {}
        for name, width in self.fields:
            offset = self._offsets[name]
            if width is None:
                values[name] = bytes(data[offset:])
            else:
                values[name] = unpack_uint(data, offset, width)
        return values
