"""Binary layout codecs shared by all applications.

PRISM operations move raw bytes; the applications impose structure on
those bytes. The codecs here centralize the little-endian packing so
that client-side and server-side views of a structure can never drift
apart.
"""

import struct

from repro.obs import hostprof as _hostprof
from repro.hw.memory import POINTER_SIZE

U16 = 2
U32 = 4
U64 = 8
BOUNDED_PTR_SIZE = POINTER_SIZE + U64  # ⟨ptr, bound⟩ struct of §3.1

# Precompiled codecs for the common widths (same table as hw.memory):
# ``int.from_bytes`` + a slice per field is the slow path now.
_STRUCTS = {
    1: struct.Struct("<B"),
    2: struct.Struct("<H"),
    4: struct.Struct("<I"),
    8: struct.Struct("<Q"),
}
_U64_STRUCT = _STRUCTS[8]
_BOUNDED_PTR_STRUCT = struct.Struct("<QQ")

# Host-profiling: the public codec entry points charge their wall time
# to the "codec" bucket of the ambient profiler (repro.obs.hostprof).
# Internals call the _raw helpers so a profiled pack() is sampled once,
# not once per field. With no profiler active (the default) each hook
# is a single module-attribute None check.


def _pack_uint_raw(value, width):
    codec = _STRUCTS.get(width)
    if codec is None:
        return value.to_bytes(width, "little")
    try:
        return codec.pack(value)
    except struct.error:
        # Out-of-range: re-encode via to_bytes for the canonical
        # OverflowError the callers (and tests) rely on.
        return value.to_bytes(width, "little")


def _unpack_uint_raw(data, offset, width):
    codec = _STRUCTS.get(width)
    if codec is None:
        return int.from_bytes(data[offset:offset + width], "little")
    return codec.unpack_from(data, offset)[0]


def pack_uint(value, width):
    """Little-endian unsigned encode; raises if it does not fit."""
    hp = _hostprof.ACTIVE
    if hp is None or not hp._timing:
        return _pack_uint_raw(value, width)
    hp.enter("codec")
    try:
        return _pack_uint_raw(value, width)
    finally:
        hp.exit()


def unpack_uint(data, offset=0, width=U64):
    """Little-endian unsigned decode from ``data[offset:offset+width]``."""
    hp = _hostprof.ACTIVE
    if hp is None or not hp._timing:
        codec = _STRUCTS.get(width)
        if codec is None:
            return int.from_bytes(data[offset:offset + width], "little")
        return codec.unpack_from(data, offset)[0]
    hp.enter("codec")
    try:
        return _unpack_uint_raw(data, offset, width)
    finally:
        hp.exit()


def _pack_bounded_ptr_raw(addr, bound):
    try:
        return _BOUNDED_PTR_STRUCT.pack(addr, bound)
    except struct.error:
        return (addr.to_bytes(POINTER_SIZE, "little")
                + bound.to_bytes(U64, "little"))


def pack_bounded_ptr(addr, bound):
    """Encode the ⟨ptr, bound⟩ struct used by bounded indirect ops."""
    hp = _hostprof.ACTIVE
    if hp is None or not hp._timing:
        return _pack_bounded_ptr_raw(addr, bound)
    hp.enter("codec")
    try:
        return _pack_bounded_ptr_raw(addr, bound)
    finally:
        hp.exit()


def unpack_bounded_ptr(data, offset=0):
    """Decode a ⟨ptr, bound⟩ struct; returns (addr, bound)."""
    hp = _hostprof.ACTIVE
    if hp is None or not hp._timing:
        return _BOUNDED_PTR_STRUCT.unpack_from(data, offset)
    hp.enter("codec")
    try:
        return _BOUNDED_PTR_STRUCT.unpack_from(data, offset)
    finally:
        hp.exit()


class FieldStruct:
    """A tiny named-field binary struct.

    Fields are ``(name, width_bytes)`` pairs laid out contiguously in
    declaration order. Values are unsigned little-endian integers;
    a width of None marks a trailing variable-length bytes field.
    """

    def __init__(self, *fields):
        self.fields = list(fields)
        self._offsets = {}
        offset = 0
        for index, (name, width) in enumerate(self.fields):
            if width is None and index != len(self.fields) - 1:
                raise ValueError("variable-length field must be last")
            self._offsets[name] = offset
            if width is not None:
                offset += width
        self.fixed_size = offset

    def offset(self, name):
        """Byte offset of ``name`` from the start of the struct."""
        return self._offsets[name]

    def width(self, name):
        """Declared width of ``name`` (None for the variable tail)."""
        for field_name, field_width in self.fields:
            if field_name == name:
                return field_width
        raise KeyError(name)

    def pack(self, **values):
        """Encode the struct; variable tail defaults to b''."""
        hp = _hostprof.ACTIVE
        if hp is not None and not hp._timing:
            hp = None
        if hp is not None:
            hp.enter("codec")
        try:
            parts = []
            for name, width in self.fields:
                value = values.get(name, 0 if width is not None else b"")
                if width is None:
                    parts.append(bytes(value))
                else:
                    parts.append(_pack_uint_raw(value, width))
            return b"".join(parts)
        finally:
            if hp is not None:
                hp.exit()

    def unpack(self, data):
        """Decode into a dict (variable tail under its field name)."""
        hp = _hostprof.ACTIVE
        if hp is not None and not hp._timing:
            hp = None
        if hp is not None:
            hp.enter("codec")
        try:
            values = {}
            for name, width in self.fields:
                offset = self._offsets[name]
                if width is None:
                    values[name] = bytes(data[offset:])
                else:
                    values[name] = _unpack_uint_raw(data, offset, width)
            return values
        finally:
            if hp is not None:
                hp.exit()
