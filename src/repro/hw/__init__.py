"""Hardware models: host memory, NICs, PCIe, and CPU core pools.

Memory here is *functional* — a real byte-addressable array on which
every PRISM/RDMA operation executes — while the NIC/PCIe/CPU classes
contribute *timing* (service delays, queueing) to the discrete-event
simulation.
"""

from repro.hw.cpu import CorePool
from repro.hw.memory import HostMemory, MemoryError_, NULL_PTR
from repro.hw.pcie import PcieLink

__all__ = ["CorePool", "HostMemory", "MemoryError_", "NULL_PTR", "PcieLink"]
