"""PCIe cost model.

The paper's hardware projection (§4.3) charges every extra host-memory
access an indirect/chained primitive performs with one additional PCIe
round trip, using measurements from Neugebauer et al. [35]. We model
the link as a fixed round-trip latency plus a small per-byte DMA cost.
"""


class PcieLink:
    """Latency model for NIC <-> host-memory transfers."""

    def __init__(self, round_trip_us=0.85, bytes_per_us=15_000.0):
        self.round_trip_us = round_trip_us
        self.bytes_per_us = bytes_per_us

    def read_time(self, nbytes):
        """One DMA read: request/completion round trip + payload streaming."""
        return self.round_trip_us + nbytes / self.bytes_per_us

    def write_time(self, nbytes):
        """One posted DMA write: half a round trip + payload streaming."""
        return self.round_trip_us / 2 + nbytes / self.bytes_per_us

    def access_time(self, kind, nbytes):
        """Time for one access-trace entry: ``kind`` is "r" or "w".

        The common currency between timing backends and the tracer's
        per-phase attribution: both price an engine
        :class:`~repro.prism.engine.Access` through this one method, so
        the "pcie" slice of a traced op equals what the backend charged.
        """
        if kind == "r":
            return self.read_time(nbytes)
        return self.write_time(nbytes)
