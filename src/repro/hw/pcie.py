"""PCIe cost model.

The paper's hardware projection (§4.3) charges every extra host-memory
access an indirect/chained primitive performs with one additional PCIe
round trip, using measurements from Neugebauer et al. [35]. We model
the link as a fixed round-trip latency plus a small per-byte DMA cost.
"""


class PcieLink:
    """Latency model for NIC <-> host-memory transfers.

    The link charges latency inline (no queueing of its own — DMA
    engines are per-PU), so utilization telemetry is charge-based: when
    a :class:`~repro.obs.timeline.ChargeMonitor` is attached via
    :meth:`set_monitor`, backends call :meth:`record` for every host
    access they price, and the monitor accumulates windowed DMA busy
    time (normalized by the NIC's parallelism into a utilization).
    """

    def __init__(self, round_trip_us=0.85, bytes_per_us=15_000.0):
        self.round_trip_us = round_trip_us
        self.bytes_per_us = bytes_per_us
        self.monitor = None

    def set_monitor(self, monitor):
        """Attach a charge monitor; returns it for chaining."""
        self.monitor = monitor
        return monitor

    def record(self, kind, nbytes):
        """Charge one access's DMA time to the attached monitor."""
        if self.monitor is not None:
            self.monitor.charge(self.access_time(kind, nbytes),
                                units=nbytes)

    def read_time(self, nbytes):
        """One DMA read: request/completion round trip + payload streaming."""
        return self.round_trip_us + nbytes / self.bytes_per_us

    def write_time(self, nbytes):
        """One posted DMA write: half a round trip + payload streaming."""
        return self.round_trip_us / 2 + nbytes / self.bytes_per_us

    def access_time(self, kind, nbytes):
        """Time for one access-trace entry: ``kind`` is "r" or "w".

        The common currency between timing backends and the tracer's
        per-phase attribution: both price an engine
        :class:`~repro.prism.engine.Access` through this one method, so
        the "pcie" slice of a traced op equals what the backend charged.
        """
        if kind == "r":
            return self.read_time(nbytes)
        return self.write_time(nbytes)
