"""Deterministic random-number streams.

Every stochastic component (key choice, think time, backoff jitter)
draws from its own named substream so that adding a component never
perturbs the draws of another — runs stay reproducible as the system
grows.
"""

import random
import zlib


class SeededRng:
    """A root seed fanning out into independent named substreams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the substream for ``name``."""
        if name not in self._streams:
            mixed = zlib.crc32(name.encode()) ^ (self.seed * 0x9E3779B1 & 0xFFFFFFFF)
            self._streams[name] = random.Random(mixed)
        return self._streams[name]

    def fork(self, index):
        """Derive a child SeededRng, e.g. one per client."""
        return SeededRng(seed=(self.seed * 1_000_003 + index + 1) & 0x7FFFFFFF)
