"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot future living on a simulator's timeline.
Processes wait on events by yielding them; the kernel resumes the
process when the event triggers, delivering ``event.value`` (or raising
the failure exception inside the generator).
"""


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yielding non-events...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter
    supplied, typically a short reason string.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class TimeoutExpired(TimeoutError):
    """A bounded wait (``Simulator.with_timeout``, a request timeout)
    ran out of simulated time before its event triggered.

    Subclasses the builtin :class:`TimeoutError` so existing
    ``except TimeoutError`` handlers keep working; carries the budget
    so retry layers can report what they waited for.
    """

    def __init__(self, timeout_us, what="wait"):
        super().__init__(f"{what} did not complete within {timeout_us} us")
        self.timeout_us = timeout_us
        self.what = what


class _LateCall:
    """A callback registered on an already-processed event.

    A tiny ``__slots__`` callable for the ready queue — the hot path
    never allocates closures for this (or anything else).
    """

    __slots__ = ("callback", "event")

    def __init__(self, callback, event):
        self.callback = callback
        self.event = event

    def __call__(self):
        self.callback(self.event)


class Event:
    """A one-shot occurrence on the simulation timeline.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called,
    callbacks scheduled) -> *processed* (callbacks have run).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self):
        """True once ``succeed`` or ``fail`` has been called."""
        return self._triggered

    @property
    def processed(self):
        """True once the kernel has run this event's callbacks."""
        return self._processed

    @property
    def ok(self):
        """True if the event succeeded; None while still pending."""
        return self._ok

    @property
    def value(self):
        """Payload delivered to waiters (or the failure exception)."""
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully, delivering ``value``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        # Same-instant work goes on the ready deque (FIFO == the old
        # heap's seq order at one timestamp) — no heap push, no seq.
        # The event itself is the deque entry (it is callable, see
        # ``__call__``); appending a bound ``_process`` method would
        # allocate one per trigger on the hottest kernel path.
        self.sim._ready.append(self)
        return self

    def fail(self, exception):
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.sim._ready.append(self)
        return self

    def add_callback(self, callback):
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback fires on the
        next kernel step rather than being silently dropped.
        """
        if self._processed:
            self.sim._ready.append(_LateCall(callback, self))
        else:
            self.callbacks.append(callback)

    def discard_callback(self, callback):
        """Remove ``callback`` if attached; no-op otherwise."""
        if callback in self.callbacks:
            self.callbacks.remove(callback)

    def waiter_detached(self, callback):
        """A process that was waiting on this event went away
        (interrupt, timeout race). Removes its resume callback and,
        once nobody is listening anymore, cancels the event so that
        resource-backed subclasses can hand back whatever the dead
        waiter held or queued for.
        """
        self.discard_callback(callback)
        if not self.callbacks:
            self.cancel()

    def cancel(self):
        """Abandon interest in this event.

        The base event has nothing to release, so this is a no-op;
        subclasses that represent a claim on a resource (a queued
        ``Resource.acquire``, a blocked ``Store.get``, a composite
        wait) override it to withdraw that claim. Cancelling never
        un-triggers an event and is always safe to call twice.
        """

    def _process(self):
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    # A triggered event on the ready deque is dispatched by calling it;
    # subclasses that use ``__call__`` for another deque role (pending
    # zero-delay timers) dispatch on their trigger state instead.
    __call__ = _process

    def __repr__(self):
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<Event {state} at t={self.sim.now:.3f}>"


class TimerEvent(Event):
    """The event behind ``Simulator.timeout``: fires at a fixed time.

    The simulator stores the timer itself as the queue payload — no
    per-timeout lambda. Cancelling a pending timer *withdraws* it: a
    heap-resident timer is tombstoned (skipped, and compacted away in
    bulk once tombstones dominate) instead of firing into the void.
    This is what keeps the queue O(in-flight) when ``with_timeout`` /
    ``any_of`` waits are won by the guarded event and the losing timer
    is abandoned — previously each one sat in the heap until its
    deadline.
    """

    __slots__ = ("_fire_value", "cancelled")

    def __init__(self, sim, value=None):
        # Inlined Event.__init__ — timers are the single most common
        # allocation in the kernel; skip the super() call.
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._triggered = False
        self._processed = False
        self._fire_value = value
        self.cancelled = False

    def fire(self):
        """Heap-pop path: trigger (the kernel already checked ``cancelled``)."""
        self.succeed(self._fire_value)

    def __call__(self):
        """Ready-deque path: a pending entry is a zero-delay timer
        firing (unless cancelled); a triggered entry is running its
        callbacks, like any other event."""
        if self._triggered:
            self._process()
        elif not self.cancelled:
            self.succeed(self._fire_value)

    def cancel(self):
        if self.cancelled or self._triggered:
            return
        self.cancelled = True
        self.sim._note_timer_cancelled()


class _Composite(Event):
    """Shared sub-event bookkeeping for :class:`AnyOf`/:class:`AllOf`.

    Keeps the ``(event, callback)`` subscription pairs so that when the
    waiting process detaches (interrupt), the composite can detach from
    its sub-events in turn. Without this, an interrupted quorum wait
    left stale callbacks on the sub-events, and a sub-event triggering
    later could resume work nobody was waiting for — or strand a
    granted resource slot forever.
    """

    __slots__ = ("_events", "_subscriptions")

    def __init__(self, sim, events):
        super().__init__(sim)
        self._events = list(events)
        self._subscriptions = []

    def _subscribe(self):
        for index, event in enumerate(self._events):
            callback = self._make_callback(index)
            self._subscriptions.append((event, callback))
            event.add_callback(callback)

    def cancel(self):
        """Withdraw from every sub-event still pending.

        Cascades: a sub-event left with no other listeners is itself
        cancelled, so e.g. an interrupted quorum wait hands back any
        resource slots its branches were queued for. A composite that
        already triggered consumed a real sub-event value, so it keeps
        its remaining subscriptions (their callbacks are inert).
        """
        if self._triggered:
            return
        subscriptions, self._subscriptions = self._subscriptions, []
        for event, callback in subscriptions:
            event.waiter_detached(callback)


class AnyOf(_Composite):
    """Triggers when the first of several events triggers.

    The value is the ``(index, value)`` pair of the first event. Failure
    of the first event to trigger propagates as failure of the AnyOf.
    """

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        self._subscribe()

    def _make_callback(self, index):
        def on_trigger(event):
            if self._triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)
            # Withdraw losing *timers* so they don't sit in the heap
            # until their (now meaningless) deadlines. Only timers:
            # auto-cancelling a losing resource claim here would move
            # its withdrawal earlier within the timestep than the
            # waiter's own explicit cancel, perturbing grant order.
            for sub, callback in self._subscriptions:
                if (sub is not event and not sub._triggered
                        and type(sub) is TimerEvent):
                    sub.waiter_detached(callback)
        return on_trigger


class AllOf(_Composite):
    """Triggers when every one of several events has triggered.

    The value is the list of individual values, in input order. The
    first failure fails the AllOf immediately.
    """

    __slots__ = ("_remaining", "_values")

    def __init__(self, sim, events):
        super().__init__(sim, events)
        self._remaining = len(self._events)
        self._values = [None] * len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        self._subscribe()

    def _make_callback(self, index):
        def on_trigger(event):
            if self._triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(list(self._values))
        return on_trigger
