"""Contention points: FIFO resources, stores, and bandwidth pipes.

These model the queueing behaviour that produces the paper's
throughput/latency curves: CPU core pools, NIC processing units, and
link serialization are all instances of these classes.
"""

from collections import deque

from repro.obs.trace import NULL_SPAN
from repro.sim.events import Event, SimulationError


class Resource:
    """A ``capacity``-server FIFO resource.

    Usage from a process::

        grant = yield resource.acquire()
        ...
        resource.release()

    Fairness is strict FIFO, which keeps runs deterministic.

    ``kind`` classifies the resource for utilization reports and the
    bottleneck analyzer ("cpu", "nic", "wire", ...). When the owning
    simulator has a utilization collector installed
    (``sim.set_utilization``), the resource self-registers a
    :class:`~repro.obs.timeline.ResourceMonitor` that observes every
    acquire/grant/release; with no collector the hooks are a single
    ``is None`` check and timing is untouched.
    """

    def __init__(self, sim, capacity=1, name=None, kind="other"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self.kind = kind
        self._in_use = 0
        self._waiters = deque()
        self._total_acquired = 0
        self._busy_time = 0.0
        self._last_change = 0.0
        self.monitor = None
        self._wait_since = None
        if sim.utilization is not None:
            sim.utilization.watch_resource(self)

    @property
    def in_use(self):
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self):
        """Number of acquire requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self):
        """Request a slot; the returned event fires when granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self._total_acquired += 1
            if self.monitor is not None:
                self.monitor.on_request(queued=False)
                self.monitor.on_grant(0.0, from_queue=False)
            event.succeed(self)
        else:
            self._waiters.append(event)
            if self.monitor is not None:
                self.monitor.on_request(queued=True)
                self._wait_since.append(self.sim.now)
        return event

    def release(self):
        """Free a slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            event = self._waiters.popleft()
            self._total_acquired += 1
            if self.monitor is not None:
                self.monitor.on_release()
                self.monitor.on_grant(
                    self.sim.now - self._wait_since.popleft(),
                    from_queue=True)
            event.succeed(self)
        else:
            self._account()
            self._in_use -= 1
            if self.monitor is not None:
                self.monitor.on_release()

    def utilization(self, elapsed):
        """Mean busy fraction over ``elapsed`` simulated microseconds."""
        if elapsed <= 0:
            return 0.0
        self._account()
        return self._busy_time / (elapsed * self.capacity)

    def _account(self):
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def occupy(self, duration):
        """Process helper: hold one slot for ``duration``.

        Equivalent to acquire / timeout / release, expressed as a
        sub-generator for ``yield from``.
        """
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``."""

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name or "store"
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit ``item``; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self):
        """Event that fires with the next item (FIFO)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Immediately pop an item, or return None if empty."""
        if self._items:
            return self._items.popleft()
        return None


class BandwidthPipe:
    """A serializing transmission port of fixed bandwidth.

    Models a NIC TX port or link: each message occupies the port for
    ``size / bytes_per_us`` plus a fixed per-message overhead. The event
    returned by :meth:`transmit` fires when the last byte has left the
    port — propagation delay is added by the fabric, not here.
    """

    def __init__(self, sim, bytes_per_us, per_message_us=0.0, name=None):
        if bytes_per_us <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bytes_per_us = float(bytes_per_us)
        self.per_message_us = float(per_message_us)
        self.name = name or "pipe"
        self._port = Resource(sim, capacity=1, name=f"{self.name}.port",
                              kind="wire")
        if self._port.monitor is not None:
            # Enrich the port's utilization row with wire throughput.
            self._port.monitor.extra = lambda: {
                "bytes": self.bytes_total,
                "messages": self.messages_total}
        # Direction-neutral totals: a pipe serves as either a TX or an
        # RX port, so "bytes that crossed it" is the honest name — an
        # RX pipe's total is bytes *received*, not sent.
        self.bytes_total = 0
        self.messages_total = 0

    @property
    def bytes_sent(self):
        """Deprecated alias for :attr:`bytes_total` (TX-centric name)."""
        return self.bytes_total

    @property
    def messages_sent(self):
        """Deprecated alias for :attr:`messages_total`."""
        return self.messages_total

    def serialization_time(self, size_bytes):
        """Time for ``size_bytes`` to cross the port."""
        return self.per_message_us + size_bytes / self.bytes_per_us

    def transmit(self, size_bytes, span=NULL_SPAN):
        """Process helper: occupy the port long enough to send the message.

        ``span`` parents two tracing children: a queue span for the
        wait on the (busy) port and a wire span for the serialization
        itself.
        """
        with span.child(f"{self.name}.queue", phase="queue"):
            yield self._port.acquire()
        try:
            with span.child(f"{self.name}.xmit", phase="wire",
                            bytes=size_bytes):
                yield self.sim.timeout(self.serialization_time(size_bytes))
            self.bytes_total += size_bytes
            self.messages_total += 1
        finally:
            self._port.release()

    def utilization(self, elapsed):
        """Mean busy fraction of the port over ``elapsed`` microseconds."""
        return self._port.utilization(elapsed)
