"""Contention points: FIFO resources, stores, and bandwidth pipes.

These model the queueing behaviour that produces the paper's
throughput/latency curves: CPU core pools, NIC processing units, and
link serialization are all instances of these classes.
"""

from collections import deque

from repro.obs.trace import NULL_SPAN, Span
from repro.sim.events import Event, SimulationError


class AcquireEvent(Event):
    """The event returned by :meth:`Resource.acquire`.

    Cancellation (waiter interrupted, timeout race lost) withdraws the
    claim: a still-queued request leaves the waiter queue; a request
    whose slot was already granted — but never consumed by the dead
    waiter — releases the slot back, handing it to the next live
    waiter. Without this, an interrupted ``acquire()`` left its event
    in the queue and ``release()`` granted the slot to the dead waiter
    forever, leaking capacity one interrupt at a time.
    """

    __slots__ = ("resource", "cancelled")

    def __init__(self, resource):
        # Inlined Event.__init__ — acquire events are the hottest
        # allocation on the model path; skip the super() call.
        self.sim = resource.sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._triggered = False
        self._processed = False
        self.resource = resource
        self.cancelled = False

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        self.resource._waiter_cancelled(self)


class GetEvent(Event):
    """The event returned by :meth:`Store.get`.

    Cancellation removes a blocked getter from the queue; if an item
    was already handed to the (now dead) getter, the item is put back
    at the front of the buffer so it goes to the next live getter in
    FIFO order instead of vanishing.
    """

    __slots__ = ("store", "cancelled")

    def __init__(self, store):
        # Inlined Event.__init__ (see AcquireEvent).
        self.sim = store.sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._triggered = False
        self._processed = False
        self.store = store
        self.cancelled = False

    def cancel(self):
        if self.cancelled:
            return
        self.cancelled = True
        self.store._getter_cancelled(self)


class Resource:
    """A ``capacity``-server FIFO resource.

    Usage from a process::

        grant = yield resource.acquire()
        ...
        resource.release()

    Fairness is strict FIFO, which keeps runs deterministic.

    ``kind`` classifies the resource for utilization reports and the
    bottleneck analyzer ("cpu", "nic", "wire", ...). When the owning
    simulator has a utilization collector installed
    (``sim.set_utilization``), the resource self-registers a
    :class:`~repro.obs.timeline.ResourceMonitor` that observes every
    acquire/grant/release; with no collector the hooks are a single
    ``is None`` check and timing is untouched.
    """

    __slots__ = ("sim", "capacity", "name", "kind", "_in_use", "_waiters",
                 "_total_acquired", "_busy_time", "_last_change", "monitor",
                 "_wait_since")

    def __init__(self, sim, capacity=1, name=None, kind="other"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self.kind = kind
        self._in_use = 0
        self._waiters = deque()
        self._total_acquired = 0
        self._busy_time = 0.0
        self._last_change = 0.0
        self.monitor = None
        self._wait_since = None
        if sim.utilization is not None:
            sim.utilization.watch_resource(self)

    @property
    def in_use(self):
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self):
        """Number of acquire requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self):
        """Request a slot; the returned event fires when granted.

        The event supports :meth:`~AcquireEvent.cancel`: a waiter that
        stops waiting (interrupt, ``with_timeout``) withdraws its claim
        instead of leaking the slot it queued for.
        """
        hp = self.sim.hostprof
        if hp is not None and not hp._timing:
            # Stride sampling: attribution is off for this event.
            hp = None
        if hp is None and self.monitor is None:
            # Fast path: no profiler, no utilization monitor — the
            # common configuration for fig sweeps.
            event = AcquireEvent(self)
            if self._in_use < self.capacity:
                self._account()
                self._in_use += 1
                self._total_acquired += 1
                event.succeed(self)
            else:
                self._waiters.append(event)
            return event
        if hp is not None:
            hp.enter("resource")
        try:
            event = AcquireEvent(self)
            if self._in_use < self.capacity:
                self._account()
                self._in_use += 1
                self._total_acquired += 1
                if self.monitor is not None:
                    if hp is not None:
                        hp.enter("hooks.obs")
                    self.monitor.on_uncontended_grant()
                    if hp is not None:
                        hp.exit()
                event.succeed(self)
            else:
                self._waiters.append(event)
                if self.monitor is not None:
                    if hp is not None:
                        hp.enter("hooks.obs")
                    self.monitor.on_request(queued=True)
                    self._wait_since.append(self.sim._now)
                    if hp is not None:
                        hp.exit()
            return event
        finally:
            if hp is not None:
                hp.exit()

    def release(self):
        """Free a slot, handing it to the oldest *live* waiter if any.

        Cancelled waiters are skipped (cancellation removes them
        eagerly, so this is belt-and-braces for a waiter cancelled in
        the same kernel step).
        """
        hp = self.sim.hostprof
        if hp is not None and not hp._timing:
            # Stride sampling: attribution is off for this event.
            hp = None
        if hp is None and self.monitor is None:
            if self._in_use <= 0:
                raise SimulationError(f"{self.name}: release without acquire")
            waiters = self._waiters
            while waiters:
                event = waiters.popleft()
                if event.cancelled or event._triggered:
                    continue
                self._total_acquired += 1
                event.succeed(self)
                return
            self._account()
            self._in_use -= 1
            return
        if hp is not None:
            hp.enter("resource")
        try:
            if self._in_use <= 0:
                raise SimulationError(f"{self.name}: release without acquire")
            while self._waiters:
                event = self._waiters.popleft()
                waited_since = (self._wait_since.popleft()
                                if self.monitor is not None else None)
                if event.cancelled or event.triggered:
                    if self.monitor is not None:
                        if hp is not None:
                            hp.enter("hooks.obs")
                        self.monitor.on_cancel()
                        if hp is not None:
                            hp.exit()
                    continue
                self._total_acquired += 1
                if self.monitor is not None:
                    if hp is not None:
                        hp.enter("hooks.obs")
                    self.monitor.on_handoff(self.sim._now - waited_since)
                    if hp is not None:
                        hp.exit()
                event.succeed(self)
                return
            self._account()
            self._in_use -= 1
            if self.monitor is not None:
                if hp is not None:
                    hp.enter("hooks.obs")
                self.monitor.on_release()
                if hp is not None:
                    hp.exit()
        finally:
            if hp is not None:
                hp.exit()

    def _waiter_cancelled(self, event):
        """An acquire's waiter went away (interrupt or timeout race)."""
        if event.triggered:
            # The slot was already granted to this event but the value
            # was never consumed — hand the slot straight back.
            self.release()
            return
        try:
            index = self._waiters.index(event)
        except ValueError:
            return
        del self._waiters[index]
        if self.monitor is not None:
            del self._wait_since[index]
            self.monitor.on_cancel()

    def utilization(self, elapsed):
        """Mean busy fraction over ``elapsed`` simulated microseconds."""
        if elapsed <= 0:
            return 0.0
        self._account()
        return self._busy_time / (elapsed * self.capacity)

    def _account(self):
        now = self.sim._now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def occupy(self, duration):
        """Process helper: hold one slot for ``duration``.

        Equivalent to acquire / timeout / release, expressed as a
        sub-generator for ``yield from``. Interrupt-safe at every
        suspension point: an Interrupt delivered while *queued* (or in
        the same kernel step as the grant) cancels the acquire event,
        withdrawing the claim or handing the un-consumed slot back;
        one delivered while *holding* runs the ``finally`` release.
        Capacity is conserved either way.
        """
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name or "store"
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit ``item``; wakes the oldest *live* blocked getter.

        Cancelled getters are skipped (cancellation removes them
        eagerly; the guard covers a getter cancelled within the same
        kernel step) — waking one would make the item vanish.
        """
        hp = self.sim.hostprof
        if hp is not None and not hp._timing:
            # Stride sampling: attribution is off for this event.
            hp = None
        if hp is None:
            getters = self._getters
            while getters:
                getter = getters.popleft()
                if getter.cancelled or getter._triggered:
                    continue
                getter.succeed(item)
                return
            self._items.append(item)
            return
        hp.enter("resource")
        try:
            while self._getters:
                getter = self._getters.popleft()
                if getter.cancelled or getter.triggered:
                    continue
                getter.succeed(item)
                return
            self._items.append(item)
        finally:
            hp.exit()

    def get(self):
        """Event that fires with the next item (FIFO).

        The event supports :meth:`~GetEvent.cancel`: an abandoned
        getter leaves the queue, and an item already handed to it is
        returned to the front of the buffer instead of being lost.
        """
        hp = self.sim.hostprof
        if hp is not None and not hp._timing:
            # Stride sampling: attribution is off for this event.
            hp = None
        if hp is None:
            event = GetEvent(self)
            if self._items:
                event.succeed(self._items.popleft())
            else:
                self._getters.append(event)
            return event
        hp.enter("resource")
        try:
            event = GetEvent(self)
            if self._items:
                event.succeed(self._items.popleft())
            else:
                self._getters.append(event)
            return event
        finally:
            hp.exit()

    def _getter_cancelled(self, event):
        """A blocked getter went away (interrupt or timeout race)."""
        if event.triggered:
            # The item was already handed over but never consumed;
            # repossess it for the next getter, front of the line.
            item = event.value
            while self._getters:
                getter = self._getters.popleft()
                if getter.cancelled or getter.triggered:
                    continue
                getter.succeed(item)
                return
            self._items.appendleft(item)
            return
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def try_get(self):
        """Immediately pop an item, or return None if empty."""
        if self._items:
            return self._items.popleft()
        return None


class BandwidthPipe:
    """A serializing transmission port of fixed bandwidth.

    Models a NIC TX port or link: each message occupies the port for
    ``size / bytes_per_us`` plus a fixed per-message overhead. The event
    returned by :meth:`transmit` fires when the last byte has left the
    port — propagation delay is added by the fabric, not here.
    """

    __slots__ = ("sim", "bytes_per_us", "per_message_us", "name", "_port",
                 "bytes_total", "messages_total", "_queue_label",
                 "_xmit_label")

    def __init__(self, sim, bytes_per_us, per_message_us=0.0, name=None):
        if bytes_per_us <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.bytes_per_us = float(bytes_per_us)
        self.per_message_us = float(per_message_us)
        self.name = name or "pipe"
        # Span labels are fixed per pipe; building them per transmit()
        # was two f-strings on the hottest wire path.
        self._queue_label = f"{self.name}.queue"
        self._xmit_label = f"{self.name}.xmit"
        self._port = Resource(sim, capacity=1, name=f"{self.name}.port",
                              kind="wire")
        if self._port.monitor is not None:
            # Enrich the port's utilization row with wire throughput.
            self._port.monitor.extra = lambda: {
                "bytes": self.bytes_total,
                "messages": self.messages_total}
        # Direction-neutral totals: a pipe serves as either a TX or an
        # RX port, so "bytes that crossed it" is the honest name — an
        # RX pipe's total is bytes *received*, not sent.
        self.bytes_total = 0
        self.messages_total = 0

    @property
    def bytes_sent(self):
        """Deprecated alias for :attr:`bytes_total` (TX-centric name)."""
        return self.bytes_total

    @property
    def messages_sent(self):
        """Deprecated alias for :attr:`messages_total`."""
        return self.messages_total

    def serialization_time(self, size_bytes):
        """Time for ``size_bytes`` to cross the port."""
        return self.per_message_us + size_bytes / self.bytes_per_us

    def transmit(self, size_bytes, span=NULL_SPAN):
        """Process helper: occupy the port long enough to send the message.

        ``span`` parents two tracing children: a queue span for the
        wait on the (busy) port and a wire span for the serialization
        itself.
        """
        if not span.enabled:
            # Untraced fast path: no span children, no context managers.
            yield self._port.acquire()
            try:
                yield self.sim.timeout(
                    self.per_message_us + size_bytes / self.bytes_per_us)
                self.bytes_total += size_bytes
                self.messages_total += 1
            finally:
                self._port.release()
            return
        # Traced path with the span protocol inlined: children are
        # opened/closed by direct field writes instead of the
        # child()/context-manager/finish() call chain — three Python
        # calls per span on the hottest wire path.
        sim = self.sim
        tracer = span.tracer
        queue_span = Span(tracer, self._queue_label, "queue", span,
                          sim._now, {})
        span.children.append(queue_span)
        try:
            yield self._port.acquire()
        finally:
            queue_span.end = sim._now
        try:
            xmit_span = Span(tracer, self._xmit_label, "wire", span,
                             sim._now, {"bytes": size_bytes})
            span.children.append(xmit_span)
            try:
                yield sim.timeout(
                    self.per_message_us + size_bytes / self.bytes_per_us)
            finally:
                xmit_span.end = sim._now
            self.bytes_total += size_bytes
            self.messages_total += 1
        finally:
            self._port.release()

    def utilization(self, elapsed):
        """Mean busy fraction of the port over ``elapsed`` microseconds."""
        return self._port.utilization(elapsed)
