"""The event loop and process machinery.

``Simulator`` owns two scheduling structures: a FIFO *ready deque* of
work due at the current instant and a priority heap of future-time
entries. Every entry pushed at the current simulated time lands on the
deque (no heap push, no sequence number, no tuple); only real timers
and deferred callables reach the heap. Because nothing can schedule
work at or before the current time *into the heap*, draining order is
exactly the old single-heap ``(when, seq)`` order: heap entries at a
timestamp were pushed from an earlier instant, so they precede
everything appended to the deque at that timestamp.

Processes are generators driven by the kernel: every value a process
yields must be an :class:`~repro.sim.events.Event` (or another
:class:`Process`, which doubles as its completion event).
"""

import heapq
from itertools import count

from repro.obs import hostprof as _hostprof
from repro.obs.trace import NULL_TRACER
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    TimeoutExpired,
    TimerEvent,
    _LateCall,
)

from collections import deque

#: Tombstoned timers are compacted out of the heap in bulk once they
#: outnumber live entries (and at least this many have accumulated) —
#: amortized O(1) per cancel, keeping the heap O(in-flight).
_COMPACT_MIN = 64


class _ScheduledCall:
    """Heap payload for :meth:`Simulator.call_at`.

    Gives bare future callables the same ``cancelled``/``fire`` shape
    as :class:`~repro.sim.events.TimerEvent`, so the run loops touch
    exactly one payload type.
    """

    __slots__ = ("fire", "cancelled")

    def __init__(self, callback):
        self.fire = callback
        self.cancelled = False


class Process(Event):
    """A running generator coroutine; also the event of its completion.

    The completion value is whatever the generator returns. An uncaught
    exception inside the generator fails the completion event, and —
    if nothing is waiting on the process — propagates out of
    ``Simulator.run`` so bugs never pass silently.
    """

    __slots__ = ("_generator", "_waiting_on", "name", "_ever_waited",
                 "_flight_ctx")

    def __init__(self, sim, generator, name=None):
        super().__init__(sim)
        self._generator = generator
        self._waiting_on = None
        self._ever_waited = False
        self.name = name or getattr(generator, "__name__", "process")
        # Flight-recorder causal context: a spawned process inherits the
        # spawner's operation id, so delivery/server/reply processes all
        # attribute their events to the originating client operation.
        fl = sim.flight
        self._flight_ctx = None if fl is None else fl.current_ctx()
        tracer = sim.tracer
        if tracer.trace_processes:
            tracer.process_started(self)
        sim._ready.append(self._bootstrap)

    def _bootstrap(self):
        # Guard against a resume that beat the bootstrap to the deque
        # (an interrupt in the spawn instant): the generator is then
        # already past its first yield, or finished.
        if self._triggered or self._waiting_on is not None:
            return
        self._step(self._generator.send, None)

    def add_callback(self, callback):
        self._ever_waited = True
        super().add_callback(callback)

    @property
    def alive(self):
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if self._triggered:
            return
        interrupt_event = Event(self.sim)
        interrupt_event.add_callback(self._resume_with_interrupt(cause))
        interrupt_event.succeed()

    def _resume_with_interrupt(self, cause):
        def resume(event):
            if self._triggered:
                return
            self._detach_from_waited_event()
            self._step(self._generator.throw, Interrupt(cause))
        return resume

    def _detach_from_waited_event(self):
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None:
            # Let the event (and, for composites, its sub-events)
            # know the waiter is gone so resource-backed events can
            # withdraw queued claims or hand back granted slots.
            waited.waiter_detached(self._resume)

    def _resume(self, event):
        if self._triggered:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # Stale wake-up from an event this process detached from
            # (it was already processed when the interrupt landed, so
            # its callback sat in the queue instead of on the event).
            # Resuming here would drive the generator at the wrong
            # yield point — once for the stale event and again for the
            # one it is actually waiting on.
            return
        self._waiting_on = None
        if event._ok:
            self._step(self._generator.send, event._value)
        else:
            self._step(self._generator.throw, event._value)

    def _step(self, advance, arg):
        # ``advance`` is the generator's bound ``send``/``throw`` and
        # ``arg`` its payload — passed unpacked so resuming allocates
        # no closure.
        sim = self.sim
        # Host-profiling hook: resume accounting (off => one None check).
        hp = sim.hostprof
        # Flight-recorder hook: who is executing (off => one None check).
        fl = sim.flight
        if hp is not None:
            hp.resumes += 1
            if not hp._timing:
                # Unsampled resume (stride sampling): the counter stays
                # exact, but bucket attribution is off for this event —
                # skip the paired enter/exit calls entirely.
                hp = None
        if hp is None and fl is None:
            try:
                target = advance(arg)
            except StopIteration as stop:
                self.succeed(getattr(stop, "value", None))
                tracer = sim.tracer
                if tracer.trace_processes:
                    tracer.process_finished(self)
                return
            except Exception as exc:
                self._fail_or_crash(exc)
                return
            if isinstance(target, Event):
                self._waiting_on = target
                # Inlined Event.add_callback — one call per resume on
                # the hottest kernel path. Waiting on a child process
                # must still mark it observed (orphan-failure triage).
                if isinstance(target, Process):
                    target._ever_waited = True
                if target._processed:
                    sim._ready.append(_LateCall(self._resume, target))
                else:
                    target.callbacks.append(self._resume)
            else:
                message = (
                    f"process {self.name!r} yielded {target!r}; processes "
                    "may only yield Event instances (use 'yield from' to "
                    "call sub-generators)")
                self._step(self._generator.throw, SimulationError(message))
            return
        if hp is not None:
            hp.enter("resume")
        if fl is not None:
            fl.enter_process(self)
        try:
            try:
                target = advance(arg)
            except StopIteration as stop:
                self.succeed(getattr(stop, "value", None))
                tracer = sim.tracer
                if tracer.trace_processes:
                    tracer.process_finished(self)
                return
            except Exception as exc:
                self._fail_or_crash(exc)
                return
            if isinstance(target, Event):
                self._waiting_on = target
                if isinstance(target, Process):
                    target._ever_waited = True
                if target._processed:
                    sim._ready.append(_LateCall(self._resume, target))
                else:
                    target.callbacks.append(self._resume)
            else:
                message = (
                    f"process {self.name!r} yielded {target!r}; processes "
                    "may only yield Event instances (use 'yield from' to "
                    "call sub-generators)")
                self._step(self._generator.throw, SimulationError(message))
        finally:
            if fl is not None:
                fl.exit_process()
            if hp is not None:
                hp.exit()

    def _fail_or_crash(self, exc):
        self.fail(exc)
        self.sim.tracer.process_finished(self)
        self.sim._note_process_failure(self, exc)

    def __repr__(self):
        return f"<Process {self.name} {'done' if self._triggered else 'alive'}>"


class Simulator:
    """Deterministic discrete-event simulator with a microsecond clock.

    Observability: ``tracer`` defaults to the no-op
    :data:`~repro.obs.trace.NULL_TRACER`; :meth:`set_tracer` installs a
    recording :class:`~repro.obs.trace.Tracer` (binding it to this
    clock) so instrumented layers emit spans and process lifetimes are
    reported to the tracer's kernel hooks. ``utilization`` defaults to
    None; :meth:`set_utilization` installs a
    :class:`~repro.obs.timeline.UtilizationCollector` *before* system
    construction so every contended resource created on this simulator
    self-registers for busy/queue accounting. ``events_executed``
    counts queue entries run — a cheap health counter the metrics
    registry can absorb. (Tombstoned — cancelled — timers are skipped,
    not run, so they are not counted.)
    """

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._ready = deque()
        self._sequence = count()
        self._cancelled_timers = 0
        self._failed_processes = []
        self.tracer = NULL_TRACER
        self.utilization = None
        self.primitives = None
        self.faults = None
        self.flight = None
        self.series = None
        self.views = None
        # Adopt the ambient host profiler, if one is active (None in
        # normal runs; standalone --profile scripts activate one).
        self.hostprof = _hostprof.ACTIVE
        self.events_executed = 0

    def set_tracer(self, tracer):
        """Install (and bind) a tracer; returns it for chaining."""
        self.tracer = tracer.bind(self)
        return tracer

    def set_utilization(self, collector):
        """Install (and bind) a utilization collector; returns it.

        Monitors integrate state at event transitions and never
        schedule events of their own, so a collected run's timing is
        bit-identical to an uncollected one.
        """
        self.utilization = collector.bind(self)
        return collector

    def _install_collector(self, attr, collector):
        """Shared install-before-construction contract for collectors.

        Every ``set_<attr>`` routes through here: the collector is
        bound to this simulator and stored on ``self.<attr>`` so hook
        sites see it with one attribute read. Installation after the
        simulation has started executing is a programming error — the
        collector would have missed registrations and transitions and
        its counts would silently disagree with the run — so it raises
        instead of half-collecting.
        """
        if self._now > 0.0 or self.events_executed:
            raise SimulationError(
                f"set_{attr}: collectors must be installed before the "
                f"simulation runs (now={self._now:g} µs, "
                f"{self.events_executed} events executed) — install via "
                f"sim.set_{attr}(...) before system construction so every "
                "registration and transition is seen from time zero")
        bound = collector.bind(self)
        setattr(self, attr, bound)
        return bound

    def set_primitives(self, collector):
        """Install (and bind) a primitive-telemetry collector; returns it.

        Like :meth:`set_utilization`: install before system
        construction so engines/backends/apps pick it up. The collector
        only increments counters at transitions the run already makes,
        so timing stays bit-identical (see :mod:`repro.obs.primitives`).
        """
        return self._install_collector("primitives", collector)

    def set_faults(self, plan):
        """Install (and bind) a fault injector for ``plan``; returns it.

        Accepts a :class:`~repro.faults.FaultPlan` or an already-built
        :class:`~repro.faults.FaultInjector`. Install *before* system
        construction so the fabric, servers, and free lists register
        themselves. With no injector installed (the default) every
        hook is a single ``is None`` check — same bit-identical-timing
        contract as the observability collectors.
        """
        from repro.faults.injector import FaultInjector
        injector = (plan if isinstance(plan, FaultInjector)
                    else FaultInjector(plan))
        return self._install_collector("faults", injector)

    def set_flight(self, recorder):
        """Install (and bind) a flight recorder; returns it for chaining.

        Install *before* system construction — same contract as the
        other collectors. The kernel then tells the recorder which
        process executes each step, and a process spawned while another
        runs inherits its operation context, so fabric deliveries,
        server handlers, and replies attribute their flight events to
        the originating client operation without any id plumbing. The
        recorder only appends to a host-side ring buffer — it never
        reads or schedules simulator events — so a recorded run stays
        bit-identical in simulated time (see :mod:`repro.obs.flight`).
        """
        return self._install_collector("flight", recorder)

    def set_series(self, collector):
        """Install a windowed time-series collector; returns it.

        Install *before* system construction — same contract as the
        other collectors. The workload driver then buckets operation
        completions and the net/fault layers bucket recovery counters
        into fixed-width windows on the simulated clock (see
        :mod:`repro.obs.series`). The collector only appends to
        host-side dictionaries at transitions the run already makes,
        so a collected run stays bit-identical in simulated time.
        """
        return self._install_collector("series", collector)

    def set_views(self, collector):
        """Install sliding-window telemetry views; returns the collector.

        Install *before* system construction — same contract as the
        other collectors. The engine, clients, and net layer then feed
        per-connection/per-key windowed signals (CAS retry rate, NAK
        rate, pointer-chase depth, timeout/backoff rate, service-time
        EWMA) that are queryable *mid-run* via
        :meth:`repro.obs.views.ViewCollector.rate` /
        :meth:`~repro.obs.views.ViewCollector.ewma`, and registered
        probes log shadow policy decisions. The collector only reads
        the simulated clock and updates host-side rings at transitions
        the run already makes — it never schedules events — so a
        collected run stays bit-identical in simulated time (see
        :mod:`repro.obs.views`).
        """
        return self._install_collector("views", collector)

    def set_hostprof(self, profiler):
        """Install a host-side self-profiler; returns it for chaining.

        Unlike the simulated-time collectors, a
        :class:`~repro.obs.hostprof.HostProfiler` measures the *wall
        clock* cost of running this simulator (events/sec, per-bucket
        host-time attribution). It only reads ``time.perf_counter()``
        — never the simulated clock or the queue — so simulated
        results are bit-identical with or without it. Also makes the
        profiler ambient (:func:`repro.obs.hostprof.activate`) so the
        codec hooks, which have no simulator handle, charge to it.
        """
        self.hostprof = profiler
        _hostprof.activate(profiler)
        return profiler

    @property
    def now(self):
        """Current simulated time in microseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def event(self):
        """Create a fresh pending event on this timeline."""
        return Event(self)

    def timeout(self, delay, value=None):
        """An event that succeeds ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        # TimerEvent.__init__ inlined — timers are the most common
        # allocation in the kernel, and skipping the constructor frame
        # is worth ~a call per event on the dominant op path.
        event = TimerEvent.__new__(TimerEvent)
        event.sim = self
        event.callbacks = []
        event._value = None
        event._ok = None
        event._triggered = False
        event._processed = False
        event._fire_value = value
        event.cancelled = False
        # Compare the *computed* deadline, not the delay: a denormal
        # delay that rounds to the current instant must keep FIFO
        # position with other same-instant work (the heap only ever
        # holds strictly-future entries — the ordering invariant the
        # run loops rely on).
        when = self._now + delay
        if when == self._now:
            self._ready.append(event)
        else:
            heapq.heappush(self._queue, (when, next(self._sequence), event))
        return event

    def spawn(self, generator, name=None):
        """Start running a generator as a process."""
        return Process(self, generator, name=name)

    def sleep_until(self, when, value=None):
        """An event that succeeds at absolute simulated time ``when``.

        ``when`` in the past (or now) fires on the next kernel step at
        the current time, so daemons can use it as an idempotent
        "no earlier than" barrier.
        """
        return self.timeout(max(0.0, when - self._now), value)

    def with_timeout(self, event, timeout_us, what="wait"):
        """Process helper: wait on ``event`` for at most ``timeout_us``.

        Returns the event's value, or raises
        :class:`~repro.sim.events.TimeoutExpired` once the budget is
        spent. On timeout the abandoned event is *cancelled*, so a
        resource-backed event (a queued ``acquire``, a blocked ``get``)
        withdraws its claim instead of stranding a slot or swallowing
        an item — which is also what makes the helper interrupt-safe:
        an Interrupt landing inside the wait detaches from both the
        event and the timer through the same cancellation path. When
        ``event`` wins, the losing timer is withdrawn from the heap
        (see :class:`~repro.sim.events.TimerEvent`), so N timed waits
        leave O(in-flight) queue entries, not O(N).
        """
        if not isinstance(event, Event):
            raise SimulationError("with_timeout requires an Event")
        index, value = yield self.any_of([event, self.timeout(timeout_us)])
        if index == 1:
            event.cancel()
            raise TimeoutExpired(timeout_us, what=what)
        return value

    def any_of(self, events):
        """Event that fires with ``(index, value)`` of the first to trigger."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event that fires with the list of values once all trigger."""
        return AllOf(self, events)

    def call_at(self, when, callback):
        """Run a bare callable at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        if when == self._now:
            self._ready.append(callback)
        else:
            heapq.heappush(self._queue,
                           (when, next(self._sequence), _ScheduledCall(callback)))

    # -- kernel internals -------------------------------------------------

    def _enqueue_triggered(self, event):
        self._ready.append(event)

    def _note_timer_cancelled(self):
        """A heap-resident timer was tombstoned; compact when they dominate."""
        self._cancelled_timers += 1
        queue = self._queue
        if (self._cancelled_timers >= _COMPACT_MIN
                and self._cancelled_timers * 2 > len(queue)):
            # In place: the run loops hold a local alias to the list.
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)
            self._cancelled_timers = 0

    def _note_process_failure(self, process, exc):
        self._failed_processes.append((process, exc))

    # -- execution ---------------------------------------------------------

    # The four run loops below share one shape:
    #
    #   1. pop heap entries due at the current instant (they were
    #      pushed from an *earlier* instant, so they precede anything
    #      on the ready deque at this instant);
    #   2. drain the ready deque FIFO — nothing a ready callback does
    #      can make a heap entry due at the current instant, so no
    #      re-check is needed between deque entries;
    #   3. advance the clock to the earliest future heap entry.
    #
    # Tombstoned (cancelled) timers are skipped without advancing the
    # clock and without counting in ``events_executed``.

    def run(self, until=None):
        """Run until the queue drains or simulated time passes ``until``.

        A process that dies with an unhandled exception (and no waiter
        observing its completion) re-raises here at the end of the run.
        """
        if self.hostprof is not None:
            return self._run_profiled(until)
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        now = self._now
        executed = 0
        try:
            while True:
                while queue and queue[0][0] <= now:
                    obj = pop(queue)[2]
                    if obj.cancelled:
                        self._cancelled_timers -= 1
                        continue
                    executed += 1
                    obj.fire()
                while ready:
                    executed += 1
                    ready.popleft()()
                if not queue:
                    if until is not None:
                        self._now = until
                    break
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                obj = pop(queue)[2]
                if obj.cancelled:
                    self._cancelled_timers -= 1
                    continue
                now = when
                self._now = when
                executed += 1
                obj.fire()
        finally:
            self.events_executed += executed
        self._raise_orphan_failures()
        return self._now

    def _run_profiled(self, until):
        """:meth:`run` with the host-profiler's wall-clock meters on.

        A separate loop so the unprofiled hot path stays exactly as it
        was; the simulated schedule is identical — the profiler only
        reads ``perf_counter`` around the same callbacks.
        """
        hp = self.hostprof
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        now = self._now
        # Stride sampling inlined: untimed events pay one increment and
        # one modulo, not two method calls and a try/finally.
        stride = hp.stride
        executed = 0
        # The sampling counter lives in a local for the whole loop (an
        # attribute RMW per event is measurable); flushed on exit so
        # report() and nested runs see the true count.
        ev = hp.events
        hp.run_begin()
        try:
            while True:
                while queue and queue[0][0] <= now:
                    obj = pop(queue)[2]
                    if obj.cancelled:
                        self._cancelled_timers -= 1
                        continue
                    executed += 1
                    ev += 1
                    if ev % stride:
                        obj.fire()
                    else:
                        hp.begin_timed()
                        try:
                            obj.fire()
                        finally:
                            hp.event_end()
                while ready:
                    executed += 1
                    ev += 1
                    if ev % stride:
                        ready.popleft()()
                    else:
                        hp.begin_timed()
                        try:
                            ready.popleft()()
                        finally:
                            hp.event_end()
                if not queue:
                    if until is not None:
                        self._now = until
                    break
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                obj = pop(queue)[2]
                if obj.cancelled:
                    self._cancelled_timers -= 1
                    continue
                now = when
                self._now = when
                executed += 1
                ev += 1
                if ev % stride:
                    obj.fire()
                else:
                    hp.begin_timed()
                    try:
                        obj.fire()
                    finally:
                        hp.event_end()
        finally:
            self.events_executed += executed
            hp.events = ev
            hp.run_end()
        self._raise_orphan_failures()
        return self._now

    def run_until_complete(self, process, limit=None):
        """Run until ``process`` finishes; return its value.

        Steps the queue one entry at a time so perpetual background
        daemons cannot keep the run alive forever. ``limit`` bounds
        simulated time as a deadlock guard; when it trips, ``_now``
        advances to ``limit`` — the same contract as :meth:`run` with
        ``until`` — rather than sticking at the last executed event.
        """
        if self.hostprof is not None:
            self._drain_profiled(process, limit)
        else:
            ready = self._ready
            queue = self._queue
            pop = heapq.heappop
            now = self._now
            executed = 0
            try:
                while not process._processed:
                    while queue and queue[0][0] <= now:
                        obj = pop(queue)[2]
                        if obj.cancelled:
                            self._cancelled_timers -= 1
                            continue
                        executed += 1
                        obj.fire()
                        if process._processed:
                            break
                    if process._processed:
                        break
                    while ready:
                        executed += 1
                        ready.popleft()()
                        if process._processed:
                            break
                    if process._processed:
                        break
                    if not queue:
                        break
                    when = queue[0][0]
                    if limit is not None and when > limit:
                        self._now = limit
                        break
                    obj = pop(queue)[2]
                    if obj.cancelled:
                        self._cancelled_timers -= 1
                        continue
                    now = when
                    self._now = when
                    executed += 1
                    obj.fire()
            finally:
                self.events_executed += executed
        self._raise_orphan_failures()
        if not process.triggered:
            raise SimulationError(
                f"process {process.name!r} did not complete "
                f"(simulated until t={self._now:.3f})")
        if not process.ok:
            raise process.value
        return process.value

    def _drain_profiled(self, process, limit):
        """The :meth:`run_until_complete` loop under the host profiler."""
        hp = self.hostprof
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        now = self._now
        stride = hp.stride
        executed = 0
        # The sampling counter lives in a local for the whole loop (an
        # attribute RMW per event is measurable); flushed on exit so
        # report() and nested runs see the true count.
        ev = hp.events
        hp.run_begin()
        try:
            while not process._processed:
                while queue and queue[0][0] <= now:
                    obj = pop(queue)[2]
                    if obj.cancelled:
                        self._cancelled_timers -= 1
                        continue
                    executed += 1
                    ev += 1
                    if ev % stride:
                        obj.fire()
                    else:
                        hp.begin_timed()
                        try:
                            obj.fire()
                        finally:
                            hp.event_end()
                    if process._processed:
                        break
                if process._processed:
                    break
                while ready:
                    executed += 1
                    ev += 1
                    if ev % stride:
                        ready.popleft()()
                    else:
                        hp.begin_timed()
                        try:
                            ready.popleft()()
                        finally:
                            hp.event_end()
                    if process._processed:
                        break
                if process._processed:
                    break
                if not queue:
                    break
                when = queue[0][0]
                if limit is not None and when > limit:
                    self._now = limit
                    break
                obj = pop(queue)[2]
                if obj.cancelled:
                    self._cancelled_timers -= 1
                    continue
                now = when
                self._now = when
                executed += 1
                ev += 1
                if ev % stride:
                    obj.fire()
                else:
                    hp.begin_timed()
                    try:
                        obj.fire()
                    finally:
                        hp.event_end()
        finally:
            self.events_executed += executed
            hp.events = ev
            hp.run_end()

    def _raise_orphan_failures(self):
        failures = self._failed_processes
        if not failures:
            return
        self._failed_processes = []
        # A failure is "observed" if anything ever waited on the
        # process's completion event; otherwise it must not vanish.
        orphans = [(process, exc) for process, exc in failures
                   if not process._ever_waited]
        if not orphans:
            return
        first_exc = orphans[0][1]
        # Raise the first orphan, but never swallow the rest: attach
        # them as notes so two concurrently-crashing daemons both
        # surface in the traceback.
        for process, exc in orphans[1:]:
            first_exc.add_note(
                f"also unobserved: process {process.name!r} failed with "
                f"{type(exc).__name__}: {exc}")
        raise first_exc
