"""Measurement helpers: latency recorders and throughput meters.

Quantile arithmetic is shared with the metrics registry through
:mod:`repro.obs.quantiles` — one linear-interpolation implementation,
guarded on empty inputs (NaN, never an exception).
"""

from repro.obs import quantiles


class LatencyRecorder:
    """Collects latency samples (microseconds) with warmup filtering."""

    def __init__(self, warmup_until=0.0):
        self.warmup_until = warmup_until
        self.samples = []

    def record(self, now, latency):
        """Record one sample taken at simulated time ``now``."""
        if now >= self.warmup_until:
            self.samples.append(latency)

    @property
    def count(self):
        return len(self.samples)

    def mean(self):
        return quantiles.mean(self.samples)

    def percentile(self, p):
        """Linear-interpolated percentile, ``p`` in [0, 100]; NaN if empty."""
        return quantiles.percentile(self.samples, p)

    def median(self):
        return self.percentile(50)

    def p99(self):
        return self.percentile(99)

    def histogram(self, bucket_width_us=None, max_buckets=32):
        """Fixed-width histogram: list of ``(bucket_start, count)``.

        Width defaults to span/max_buckets rounded up so the histogram
        always fits in ``max_buckets`` entries.
        """
        return quantiles.fixed_width_histogram(
            self.samples, bucket_width=bucket_width_us,
            max_buckets=max_buckets)

    def cdf(self, points=20):
        """Evenly spaced ``(latency, fraction_completed_within)`` pairs."""
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        n = len(ordered)
        return [(ordered[min(n - 1, int(n * i / points))],
                 min(1.0, (i + 1) / points))
                for i in range(points)]


class ThroughputMeter:
    """Counts completions over a measurement window."""

    def __init__(self, warmup_until=0.0):
        self.warmup_until = warmup_until
        self.completed = 0
        self._first = None
        self._last = None

    def record(self, now, n=1):
        """Record ``n`` completions at simulated time ``now``."""
        if now < self.warmup_until:
            return
        if self._first is None:
            self._first = now
        self._last = now
        self.completed += n

    def ops_per_us(self):
        """Throughput in operations per microsecond over the window.

        Returns ``0.0`` when nothing completed. When completions exist
        but all landed on one timestamp the window has zero width and a
        rate is undefined — returns ``float("nan")`` as a documented
        sentinel (the old behaviour quietly reported 0.0, which reads
        as "idle" when the system actually completed work).
        """
        if self._first is None or self._last is None:
            return 0.0
        if self._last <= self._first:
            return float("nan")
        return self.completed / (self._last - self._first)

    def ops_per_sec(self):
        """Throughput in operations per second."""
        return self.ops_per_us() * 1e6


def summarize(recorder, meter=None):
    """One-line dict summary used by benchmarks and drivers."""
    summary = {
        "count": recorder.count,
        "mean_us": recorder.mean(),
        "median_us": recorder.median(),
        "p99_us": recorder.p99(),
    }
    if meter is not None:
        summary["ops_per_sec"] = meter.ops_per_sec()
    return summary
