"""Deterministic discrete-event simulation kernel.

This package is the substrate under every timed component of the PRISM
reproduction: NICs, CPUs, links, and protocol clients are all processes
scheduled by :class:`~repro.sim.kernel.Simulator`. Time is a float
measured in microseconds, matching the units the paper reports.

The kernel is intentionally small (SimPy-flavoured): processes are
generators that ``yield`` :class:`~repro.sim.events.Event` objects and
are resumed when those events trigger.
"""

from repro.sim.events import Event, Interrupt, SimulationError, TimeoutExpired
from repro.sim.kernel import Process, Simulator
from repro.sim.resources import BandwidthPipe, Resource, Store
from repro.sim.rng import SeededRng
from repro.sim.stats import LatencyRecorder, ThroughputMeter, summarize

__all__ = [
    "BandwidthPipe",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "Process",
    "Resource",
    "SeededRng",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputMeter",
    "TimeoutExpired",
    "summarize",
]
