"""Client-side PRISM API.

:class:`PrismClient` is what application code holds: it wraps a
connection to one server and turns the Table 1 primitives into
round trips over the simulated fabric. All methods are process helpers
(``yield from`` them inside a simulation process).

The convenience wrappers (:meth:`read`, :meth:`write`, :meth:`cas`,
:meth:`allocate`) unwrap single-op results and raise on NAK;
:meth:`execute` submits a chain and returns the full
:class:`~repro.prism.engine.ChainResult` for callers that inspect
per-op outcomes (e.g. distinguishing a CAS miss from success).
"""

from repro.core.chain import Chain
from repro.core.ops import AllocateOp, CasOp, ReadOp, WriteOp
from repro.net.port import RequestChannel
from repro.obs.trace import NULL_SPAN
from repro.prism.engine import OpStatus


class PrismClient:
    """A connection from one client host to one PRISM server."""

    def __init__(self, sim, fabric, client_name, server, channel=None,
                 post_overhead_us=0.25, completion_overhead_us=0.25,
                 retry_policy=None):
        self.sim = sim
        self.fabric = fabric
        self.client_name = client_name
        self.server = server
        self.connection = server.connect(client_name)
        self.channel = channel or RequestChannel(
            sim, fabric, client_name,
            post_overhead_us=post_overhead_us,
            completion_overhead_us=completion_overhead_us)
        # With a fault plan installed, clients adopt its retry policy
        # automatically — no plumbing through the system builders, and
        # with no plan the request path is byte-for-byte the old one.
        if retry_policy is None and sim.faults is not None:
            retry_policy = sim.faults.plan.retry
        self.retry_policy = retry_policy
        self.round_trips = 0
        # The live TelemetryView handle: application code (and future
        # policy layers) query sliding-window signals mid-run through
        # it — views.rate("cas_retry", client.connection.id), etc.
        # Tagging the channel attributes its timeout/backoff signals
        # to this connection instead of the whole client host.
        self.views = sim.views
        if sim.views is not None:
            self.channel.view_conn = self.connection.id

    @property
    def sram_slot(self):
        """This connection's 32 B on-NIC scratch address (for redirects)."""
        return self.connection.sram_slot

    @property
    def default_rkey(self):
        """Convenience: the first shared application region's rkey."""
        candidates = self.connection.granted_rkeys - {self.server.sram_rkey}
        return min(candidates) if candidates else self.server.sram_rkey

    # -- raw submission ----------------------------------------------------

    def execute(self, *ops, span=NULL_SPAN, retryable=None):
        """Submit ops as one request (one round trip); ChainResult back.

        With a :class:`~repro.faults.plan.RetryPolicy` attached (see
        ``__init__``), a lost request or reply is retransmitted for
        ``retryable`` chains and surfaces as
        :class:`~repro.sim.events.TimeoutExpired` otherwise. By default
        a chain is retryable iff every op is READ/WRITE/CAS —
        at-least-once execution of those is harmless, while a blind
        ALLOCATE or FETCH-ADD retransmission would leak a buffer or
        double-count. Callers whose chains are retry-safe by protocol
        design (the CAS_GT install chains of PRISM-RS/TX, where a
        duplicate execution misses the CAS and the client retires the
        fresh allocation) pass ``retryable=True`` explicitly.

        A NAK is never retried: it is a delivered negative answer and
        raises immediately via ``raise_on_nak`` in the callers.
        """
        if len(ops) == 1 and isinstance(ops[0], Chain):
            chain = ops[0]
        else:
            chain = Chain(ops)
        policy = self.retry_policy
        views = self.sim.views
        submitted = self.sim._now if views is not None else 0.0
        if self.sim.flight is not None:
            self.sim.flight.record(
                "chain.submit", ops=len(chain.ops),
                kinds="+".join(op.opname for op in chain.ops),
                server=self.server.host_name)
        with span.child("roundtrip", phase="cpu",
                        ops=len(chain.ops)) as trip:
            if policy is None:
                result = yield from self.channel.request(
                    self.server.host_name, self.server.service,
                    (self.connection.id, chain), chain.request_bytes(),
                    span=trip)
            else:
                if retryable is None:
                    retryable = all(isinstance(op, (ReadOp, WriteOp, CasOp))
                                    for op in chain.ops)
                if retryable:
                    result = yield from self.channel.request_with_retry(
                        self.server.host_name, self.server.service,
                        (self.connection.id, chain), chain.request_bytes(),
                        policy, span=trip)
                else:
                    result = yield from self.channel.request(
                        self.server.host_name, self.server.service,
                        (self.connection.id, chain), chain.request_bytes(),
                        timeout_us=policy.timeout_us, span=trip)
        self.round_trips += 1
        if views is not None:
            views.note_service_time(self.connection.id,
                                    self.sim._now - submitted)
        return result

    # -- Table 1 convenience wrappers --------------------------------------

    def read(self, addr, length, rkey=None, indirect=False, bounded=False,
             redirect_to=None, span=NULL_SPAN):
        """READ; returns bytes (b'' when redirected)."""
        op = ReadOp(addr=addr, length=length,
                    rkey=self._rkey(rkey), indirect=indirect, bounded=bounded,
                    redirect_to=redirect_to)
        result = yield from self.execute(op, span=span)
        result.raise_on_nak()
        return result[0].value

    def write(self, addr, data, rkey=None, length=None, addr_indirect=False,
              addr_bounded=False, data_indirect=False, span=NULL_SPAN):
        """WRITE; returns None."""
        op = WriteOp(addr=addr, data=data, rkey=self._rkey(rkey),
                     length=length, addr_indirect=addr_indirect,
                     addr_bounded=addr_bounded, data_indirect=data_indirect)
        result = yield from self.execute(op, span=span)
        result.raise_on_nak()

    def allocate(self, freelist, data, rkey=None, redirect_to=None,
                 span=NULL_SPAN):
        """ALLOCATE; returns the buffer address (0 when redirected)."""
        op = AllocateOp(freelist=freelist, data=data, rkey=self._rkey(rkey),
                        redirect_to=redirect_to)
        result = yield from self.execute(op, span=span)
        result.raise_on_nak()
        return result[0].value

    def cas(self, target, data, rkey=None, mode=None, compare_mask=None,
            swap_mask=None, compare_data=None, target_indirect=False,
            data_indirect=False, operand_width=None, span=NULL_SPAN):
        """Enhanced CAS; returns ``(swapped, old_value_bytes)``."""
        kwargs = {}
        if mode is not None:
            kwargs["mode"] = mode
        op = CasOp(target=target, data=data, rkey=self._rkey(rkey),
                   compare_mask=compare_mask, swap_mask=swap_mask,
                   compare_data=compare_data,
                   target_indirect=target_indirect,
                   data_indirect=data_indirect,
                   operand_width=operand_width, **kwargs)
        result = yield from self.execute(op, span=span)
        result.raise_on_nak()
        outcome = result[0]
        return outcome.status is OpStatus.OK, outcome.value

    def fetch_add(self, target, delta, rkey=None, span=NULL_SPAN):
        """Classic FETCH-AND-ADD; returns the previous 64-bit value."""
        from repro.core.ops import FetchAddOp
        op = FetchAddOp(target=target, delta=delta, rkey=self._rkey(rkey))
        result = yield from self.execute(op, span=span)
        result.raise_on_nak()
        return int.from_bytes(result[0].value, "little")

    def _rkey(self, rkey):
        return self.default_rkey if rkey is None else rkey
