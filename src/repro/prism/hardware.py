"""Hardware NIC backends.

``HardwareRdmaBackend`` models today's ConnectX-5-class NIC: classic
verbs (plus Mellanox extended atomics) executed by parallel processing
units, every host-memory access paying a PCIe transfer.

``HardwarePrismBackend`` is the paper's §4.3 projection of a future
PRISM-capable ASIC: identical machinery, with the extension ops allowed
— an indirect READ is "a RDMA READ plus one extra pointer-sized PCIe
read", ALLOCATE reuses the receive-queue pop, redirect output lands in
on-NIC SRAM at SRAM cost.
"""


from repro.hw.pcie import PcieLink
from repro.prism.address_space import DOMAIN_HOST
from repro.prism.backend import BackendConfig, _PooledBackend



class HardwareRdmaBackend(_PooledBackend):
    """A stock RDMA NIC (no PRISM extensions)."""

    label = "rdma-hw"
    supports_extensions = False
    supports_extended_atomics = True

    def __init__(self, sim, engine, config=None):
        config = config or BackendConfig()
        super().__init__(sim, engine, config,
                         pool_capacity=config.nic_parallelism,
                         pool_name=f"{self.label}.pu")
        self._pcie = PcieLink(config.pcie_round_trip_us,
                              config.pcie_bytes_per_us)

    # Atomicity note: ConnectX-class NICs pipeline atomics to different
    # addresses and only serialize conflicting ones; the simulator's
    # functional layer already commits each CAS at a single instant, so
    # per-address atomicity holds without a global lock. The atomic
    # surcharge below models the read-modify-write unit's extra work.

    def op_time(self, op, accesses, op_index=0):
        total = self.config.nic_base_op_us
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                if access.kind == "r":
                    total += self._pcie.read_time(access.nbytes)
                else:
                    total += self._pcie.write_time(access.nbytes)
            else:
                total += self.config.sram_access_us
            if access.atomic:
                total += self.config.nic_atomic_unit_us
        return total


class HardwarePrismBackend(HardwareRdmaBackend):
    """Projected PRISM ASIC (§4.2/§4.3): same NIC, extensions enabled."""

    label = "prism-hw"
    supports_extensions = True
