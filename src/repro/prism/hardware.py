"""Hardware NIC backends.

``HardwareRdmaBackend`` models today's ConnectX-5-class NIC: classic
verbs (plus Mellanox extended atomics) executed by parallel processing
units, every host-memory access paying a PCIe transfer.

``HardwarePrismBackend`` is the paper's §4.3 projection of a future
PRISM-capable ASIC: identical machinery, with the extension ops allowed
— an indirect READ is "a RDMA READ plus one extra pointer-sized PCIe
read", ALLOCATE reuses the receive-queue pop, redirect output lands in
on-NIC SRAM at SRAM cost.
"""


from repro.hw.pcie import PcieLink
from repro.prism.address_space import DOMAIN_HOST
from repro.prism.backend import BackendConfig, _PooledBackend



class HardwareRdmaBackend(_PooledBackend):
    """A stock RDMA NIC (no PRISM extensions)."""

    label = "rdma-hw"
    supports_extensions = False
    supports_extended_atomics = True

    def __init__(self, sim, engine, config=None):
        config = config or BackendConfig()
        super().__init__(sim, engine, config,
                         pool_capacity=config.nic_parallelism,
                         pool_name=f"{self.label}.pu")
        self._pcie = PcieLink(config.pcie_round_trip_us,
                              config.pcie_bytes_per_us)
        if sim.utilization is not None:
            # One DMA engine per processing unit, so the link's busy
            # time normalizes against the NIC's parallelism.
            self._pcie.set_monitor(sim.utilization.charge_monitor(
                f"{self.label}.pcie", kind="pcie",
                capacity=config.nic_parallelism))

    # Atomicity note: ConnectX-class NICs pipeline atomics to different
    # addresses and only serialize conflicting ones; the simulator's
    # functional layer already commits each CAS at a single instant, so
    # per-address atomicity holds without a global lock. The atomic
    # surcharge below models the read-modify-write unit's extra work.

    def op_time(self, op, accesses, op_index=0):
        # Kept as a single accumulation (not sum-of-parts) so untraced
        # timing is bit-identical whether or not tracing code exists;
        # op_time_parts mirrors this arithmetic and a test pins the two
        # to each other.
        total = self.config.nic_base_op_us
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                total += self._pcie.access_time(access.kind, access.nbytes)
            else:
                total += self.config.sram_access_us
            if access.atomic:
                total += self.config.nic_atomic_unit_us
        return total

    def note_execution(self, op, accesses, op_index, duration):
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                self._pcie.record(access.kind, access.nbytes)

    def op_time_parts(self, op, accesses, op_index=0):
        """Verb-processing ("nic") vs host-memory DMA ("pcie") split."""
        nic = self.config.nic_base_op_us
        pcie = 0.0
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                pcie += self._pcie.access_time(access.kind, access.nbytes)
            else:
                nic += self.config.sram_access_us
            if access.atomic:
                nic += self.config.nic_atomic_unit_us
        return {"nic": nic, "pcie": pcie}


class HardwarePrismBackend(HardwareRdmaBackend):
    """Projected PRISM ASIC (§4.2/§4.3): same NIC, extensions enabled."""

    label = "prism-hw"
    supports_extensions = True
