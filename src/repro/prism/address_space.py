"""The server's unified address space: host DRAM plus on-NIC SRAM.

Recent NICs expose a small user-accessible on-NIC memory region (256 KB
on the paper's ConnectX-5, §4.2) that chains should use for redirect
temporaries, because the NIC reaches it without a PCIe round trip. We
map it just past host memory so a single integer address space covers
both, and :meth:`domain` tells timing backends which side an access
touched.
"""

from repro.core.constants import NIC_SRAM_BYTES
from repro.hw.memory import HostMemory, MemoryError_

DOMAIN_HOST = "host"
DOMAIN_SRAM = "sram"


class ServerAddressSpace:
    """Routes addresses to host memory or NIC SRAM."""

    def __init__(self, host_memory_bytes, sram_bytes=NIC_SRAM_BYTES):
        self.host = HostMemory(host_memory_bytes)
        self.sram_base = host_memory_bytes
        self.sram = HostMemory(sram_bytes + 8)  # +8: NULL page offset
        self.sram_bytes = sram_bytes

    def domain(self, addr):
        """'host' or 'sram' for a valid address."""
        return DOMAIN_SRAM if addr >= self.sram_base else DOMAIN_HOST

    def _route(self, addr):
        if addr >= self.sram_base:
            return self.sram, addr - self.sram_base + 8
        return self.host, addr

    def read(self, addr, length):
        memory, local = self._route(addr)
        return memory.read(local, length)

    def write(self, addr, data):
        memory, local = self._route(addr)
        memory.write(local, data)

    def read_uint(self, addr, width=8):
        return int.from_bytes(self.read(addr, width), "little")

    def write_uint(self, addr, value, width=8):
        self.write(addr, value.to_bytes(width, "little"))

    def read_ptr(self, addr):
        return self.read_uint(addr, 8)

    def write_ptr(self, addr, target):
        self.write_uint(addr, target, 8)

    def contains(self, addr, length=1):
        try:
            memory, local = self._route(addr)
        except MemoryError_:
            return False
        return memory.contains(local, length)

    # -- setup-time allocation -------------------------------------------

    def sbrk(self, nbytes, align=8):
        """Allocate host memory (server CPU, setup time)."""
        return self.host.sbrk(nbytes, align)

    def sram_sbrk(self, nbytes, align=8):
        """Allocate NIC SRAM; returns a global (mapped) address."""
        local = self.sram.sbrk(nbytes, align)
        return self.sram_base + local - 8
