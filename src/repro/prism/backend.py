"""Backend machinery shared by all PRISM/RDMA execution models.

A backend answers one question: *how long does it take* for the ops of
a request to execute on this kind of device? The functional work is
delegated to :class:`~repro.prism.engine.PrismEngine`; the backend
interleaves simulated delays around each op, so a multi-op chain is
*not* atomic — exactly as on real hardware, where only the CAS itself
is (§3.3).
"""

from dataclasses import dataclass, field

from repro.core.chain import Chain
from repro.obs.trace import NULL_SPAN, Span
from repro.prism.address_space import DOMAIN_HOST
from repro.prism.engine import ChainResult, OpResult, OpStatus
from repro.sim.resources import Resource


#: interned span labels for the per-op trace children — chains are
#: short and opnames few, so both caches stay tiny for a whole run.
_DISPATCH_LABELS = {}
_OP_LABELS = {}


def _dispatch_label(op_index):
    label = _DISPATCH_LABELS.get(op_index)
    if label is None:
        label = _DISPATCH_LABELS[op_index] = f"dispatch[{op_index}]"
    return label


def _op_label(opname):
    label = _OP_LABELS.get(opname)
    if label is None:
        label = _OP_LABELS[opname] = f"op.{opname}"
    return label


@dataclass
class BackendConfig:
    """Timing knobs, calibrated against the paper's §4.3 measurements.

    All times in microseconds. The defaults correspond to the
    ConnectX-5 class hardware NIC; software / BlueField backends
    override their own subset.
    """

    # hardware NIC
    nic_base_op_us: float = 0.35
    nic_parallelism: int = 16
    nic_atomic_unit_us: float = 0.10
    sram_access_us: float = 0.05
    pcie_round_trip_us: float = 0.85
    pcie_bytes_per_us: float = 15_000.0

    # software stack (Snap-like, §4.1)
    sw_cores: int = 16
    sw_pipeline_latency_us: float = 3.00
    sw_request_occupancy_us: float = 0.60
    sw_op_occupancy_us: float = 0.09
    sw_access_us: float = 0.02
    sw_bytes_per_us: float = 20_000.0

    # BlueField smart NIC (§4.3)
    bf_cores: int = 8
    bf_pipeline_latency_us: float = 1.00
    bf_request_occupancy_us: float = 1.30
    bf_op_occupancy_us: float = 0.40
    bf_host_access_us: float = 3.00
    bf_local_access_us: float = 0.20
    bf_bytes_per_us: float = 8_000.0

    extra: dict = field(default_factory=dict)


class PostingGate:
    """Reader/writer synchronization between the NIC data plane and the
    server CPU posting buffers (§3.2).

    Executing operations hold the read side; posting buffers takes the
    write side: it stalls *new op executions*, waits for the ops
    currently executing to finish (a pipeline drain of a few µs, like a
    real NIC), performs the post, and releases. Queued requests are not
    counted as in-flight — only ops that have started executing —
    so the drain is fast even under saturation.
    """

    __slots__ = ("sim", "_executing", "_posting", "_drained", "_unblocked")

    def __init__(self, sim):
        self.sim = sim
        self._executing = 0
        self._posting = False
        self._drained = None
        self._unblocked = None

    def try_enter(self):
        """Non-blocking read side: claim an execution slot if no poster
        is active (the overwhelmingly common case). Returns False when
        the caller must fall back to the yielding :meth:`enter`."""
        if self._posting:
            return False
        self._executing += 1
        return True

    def enter(self):
        """Process helper (read side): begin executing one op."""
        while self._posting:
            if self._unblocked is None:
                self._unblocked = self.sim.event()
            yield self._unblocked
        self._executing += 1

    def exit(self):
        """Read side: op execution finished."""
        self._executing -= 1
        if self._executing == 0 and self._drained is not None:
            event, self._drained = self._drained, None
            event.succeed()

    def drain(self):
        """Process helper (write side): stall new ops, wait for quiet.

        Call :meth:`release` when the posting work is done.
        """
        while self._posting:  # one poster at a time
            if self._unblocked is None:
                self._unblocked = self.sim.event()
            yield self._unblocked
        self._posting = True
        while self._executing > 0:
            if self._drained is None:
                self._drained = self.sim.event()
            yield self._drained

    def release(self):
        """Write side: posting finished; let operations flow again."""
        self._posting = False
        if self._unblocked is not None:
            event, self._unblocked = self._unblocked, None
            event.succeed()


class Backend:
    """Base class: runs a request's ops with per-op timing hooks."""

    #: human-readable backend label used in benchmark tables
    label = "abstract"
    #: whether this device implements the PRISM extensions
    supports_extensions = True
    #: whether CAS may use Mellanox-style masked/32-byte operands
    supports_extended_atomics = True
    #: tracing phase of op execution time ("nic" for ASICs, "cpu" for
    #: core-based stacks); see repro.obs.breakdown.PHASES
    execution_phase = "nic"
    #: tracing phase of request_admission time (a software stack's
    #: pipeline latency is CPU work; a queue-only admission is "queue")
    admission_phase = "queue"

    def __init__(self, sim, engine, config=None):
        self.sim = sim
        self.engine = engine
        self.config = config or BackendConfig()
        self.requests_processed = 0
        self.gate = PostingGate(sim)
        engine.allow_extensions = self.supports_extensions
        engine.allow_extended_atomics = self.supports_extended_atomics
        if sim.utilization is not None and engine.monitor is None:
            engine.monitor = sim.utilization.charge_monitor(
                f"{self.label}.engine", kind="engine")
        if sim.primitives is not None and engine.primitives is None:
            engine.primitives = sim.primitives
        if sim.flight is not None and engine.flight is None:
            engine.flight = sim.flight
        if sim.views is not None and engine.views is None:
            engine.views = sim.views

    # -- per-backend hooks -------------------------------------------------

    def request_admission(self, ops):
        """Delay/occupancy before any op runs (dispatch, queueing).

        Subclasses yield events; base implementation does nothing.
        """
        return
        yield  # pragma: no cover

    def op_time(self, op, accesses, op_index=0):
        """Simulated duration of one executed op given its access trace.

        ``op_index`` is the op's position in its request; backends with
        per-request (rather than per-op) fixed costs charge them on
        index 0 — this is what makes a chained request barely more
        expensive than a single op, the economics §3.4 relies on.
        """
        raise NotImplementedError

    def op_time_parts(self, op, accesses, op_index=0):
        """``{phase: µs}`` split of :meth:`op_time` for tracing.

        Must sum to exactly ``op_time(op, accesses, op_index)``; only
        computed when a request is traced. The default attributes the
        whole duration to :attr:`execution_phase`; device backends that
        mix costs (NIC verb time + PCIe round trips) override it.
        """
        return {self.execution_phase: self.op_time(op, accesses, op_index)}

    def note_execution(self, op, accesses, op_index, duration):
        """Utilization hook, called once per executed op (collection
        on only). Device backends with side-channel resources (the
        PCIe link) charge them here; the base backend does nothing —
        pool busy time is already observed by the resource monitor.
        """

    def acquire_execution(self, op):
        """Acquire whatever unit executes ``op``; returns a release callable."""
        raise NotImplementedError

    # -- driver ------------------------------------------------------------

    def process(self, connection, ops, span=NULL_SPAN, logical=None):
        """Process helper: execute a request, yielding its time costs.

        Returns a :class:`ChainResult`. Semantics follow §3.4: a hard
        NAK aborts the remainder; a CAS miss only suppresses
        *conditional* successors.

        ``span`` parents the request's device-side spans: admission,
        per-op dispatch waits (execution unit + posting gate), and each
        op's execution interval (refined by :meth:`op_time_parts`).

        ``logical`` is the logical request id from the client's
        envelope (None for direct callers): it lets the primitive
        collector count retransmitted executions separately from
        logical requests, and lands on chain-abort flight events.
        """
        if isinstance(ops, Chain):
            ops = ops.ops
        # Span children (and their f-string labels) only exist when the
        # request is actually traced; the clean path skips them whole.
        # Traced spans are opened/closed by direct field writes, with
        # the per-index and per-opname labels interned in shared caches
        # — no f-string or context-manager work per op.
        sim = self.sim
        traced = span.enabled
        if traced:
            tracer = span.tracer
            children = span.children
            admission_span = Span(tracer, "admission",
                                  self.admission_phase, span, sim._now, {})
            children.append(admission_span)
            try:
                yield from self.request_admission(ops)
            finally:
                admission_span.end = sim._now
        else:
            yield from self.request_admission(ops)
        results = []
        prev_ok = True
        aborted = False
        for op_index, op in enumerate(ops):
            if aborted:
                results.append(OpResult(OpStatus.SKIPPED))
                continue
            if traced:
                label = _dispatch_label(op_index)
                dispatch_span = Span(tracer, label, "queue", span,
                                     sim._now, {})
                children.append(dispatch_span)
                try:
                    release = yield from self.acquire_execution(op)
                    if not self.gate.try_enter():
                        yield from self.gate.enter()
                finally:
                    dispatch_span.end = sim._now
            else:
                release = yield from self.acquire_execution(op)
                if not self.gate.try_enter():
                    yield from self.gate.enter()
            try:
                result, accesses = self.engine.execute_op(
                    connection, op, prev_ok)
                duration = self.op_time(op, accesses, op_index)
                if sim.utilization is not None:
                    self.note_execution(op, accesses, op_index, duration)
                if traced:
                    op_span = Span(tracer, _op_label(op.opname),
                                   self.execution_phase, span, sim._now,
                                   {"status": result.status.value})
                    children.append(op_span)
                    try:
                        op_span.parts = self.op_time_parts(
                            op, accesses, op_index)
                        if duration > 0:
                            yield sim.timeout(duration)
                    finally:
                        op_span.end = sim._now
                elif duration > 0:
                    yield sim.timeout(duration)
            finally:
                self.gate.exit()
                release()
            results.append(result)
            if result.status is OpStatus.NAK:
                aborted = True
            prev_ok = result.successful
        self.requests_processed += 1
        if self.sim.primitives is not None:
            self.sim.primitives.note_chain(ops, results, logical=logical)
        fl = self.sim.flight
        if fl is not None and results and not results[-1].successful:
            fl.record("chain.abort", logical=logical, ops=len(results),
                      reason=_abort_reason(results))
        return ChainResult(results)


class _PooledBackend(Backend):
    """Common shape for backends that run ops on a pool of units."""

    def __init__(self, sim, engine, config=None, pool_capacity=1,
                 pool_name="unit", pool_kind="nic"):
        super().__init__(sim, engine, config)
        self._pool = Resource(sim, capacity=pool_capacity, name=pool_name,
                              kind=pool_kind)

    def acquire_execution(self, op):
        yield self._pool.acquire()
        return self._pool.release

    def utilization(self, elapsed):
        """Mean busy fraction of the execution pool."""
        return self._pool.utilization(elapsed)


def _abort_reason(results):
    """Why an executed chain did not commit (first decisive op wins)."""
    for result in results:
        if result.status is OpStatus.NAK:
            return (type(result.error).__name__
                    if result.error is not None else "nak")
        if result.status is OpStatus.CAS_MISS:
            return "cas_miss"
        if result.status is OpStatus.SKIPPED:
            return "skipped"
    return "uncommitted"


def trace_host_bytes(accesses):
    """Total bytes moved to/from host memory in an access trace."""
    return sum(a.nbytes for a in accesses if a.domain == DOMAIN_HOST)
