"""Software network-stack backends (§4.1).

Modeled on the paper's prototype: a Snap-inspired stack where one-sided
operations are executed by *dedicated* CPU cores, reached through an
eRPC-style transport. There is no application thread wake-up — the
dedicated cores spin-poll — so a software one-sided op costs the stack
pipeline latency plus a core's per-op occupancy, about 2.5–2.8 µs on
top of hardware RDMA (Fig. 1).

``SoftwareRdmaBackend`` is the same stack restricted to the classic
interface — the paper's "Pilaf (software RDMA)" / "ABDLOCK (software
RDMA)" / "FaRM (software RDMA)" comparison points.
"""

from repro.hw.cpu import CorePool
from repro.prism.address_space import DOMAIN_HOST
from repro.prism.backend import Backend, BackendConfig


class SoftwarePrismBackend(Backend):
    """PRISM primitives executed by dedicated host cores."""

    label = "prism-sw"
    supports_extensions = True
    supports_extended_atomics = True
    # Both the stack pipeline latency and op execution are host-core
    # work in this deployment, so traces attribute them to "cpu".
    execution_phase = "cpu"
    admission_phase = "cpu"

    def __init__(self, sim, engine, config=None, cores=None):
        config = config or BackendConfig()
        super().__init__(sim, engine, config)
        self.pool = CorePool(sim, cores or config.sw_cores,
                             name=f"{self.label}.cores")

    def request_admission(self, ops):
        # Fixed stack pipeline latency: NIC->userspace rx, polling loop
        # pickup, tx doorbell on the way out. Pure delay, not occupancy.
        yield self.sim.timeout(self.config.sw_pipeline_latency_us)

    def acquire_execution(self, op):
        yield self.pool._pool.acquire()
        return self.pool._pool.release

    def op_time(self, op, accesses, op_index=0):
        total = self.config.sw_op_occupancy_us
        if op_index == 0:
            # Request-level cost (parse, connection lookup, tx setup) is
            # paid once, so chains amortize it — §3.4's economics.
            total += self.config.sw_request_occupancy_us
        for access in accesses:
            total += (self.config.sw_access_us
                      + access.nbytes / self.config.sw_bytes_per_us)
        return total

    def utilization(self, elapsed):
        return self.pool.utilization(elapsed)


class SoftwareRdmaBackend(SoftwarePrismBackend):
    """The same software stack limited to classic READ/WRITE/CAS."""

    label = "rdma-sw"
    supports_extensions = False
    supports_extended_atomics = True
