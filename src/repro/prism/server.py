"""The server side: memory, registrations, free lists, and the NIC service.

A :class:`PrismServer` owns one host's memory system and executes
incoming operation requests through a timing backend. It also provides
the *server-CPU* control-plane duties the paper assigns to the host
(§3.2): registering memory, creating free lists, and re-posting
recycled buffers — the latter only when concurrent NIC operations have
quiesced, via a reader/writer-style gate.
"""

from itertools import count

from repro.core.chain import Chain
from repro.core.constants import REDIRECT_SLOT_BYTES
from repro.net.port import send_reply
from repro.prism.address_space import ServerAddressSpace
from repro.prism.engine import Connection, PrismEngine
from repro.rdma.mr import AccessFlags, MemoryRegionTable
from repro.rdma.qp import QueuePair

DEFAULT_MEMORY_BYTES = 64 * 1024 * 1024


class PrismServer:
    """One host's PRISM (or plain RDMA) service."""

    _freelist_ids = count(1)

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 memory_bytes=DEFAULT_MEMORY_BYTES, service="prism",
                 backend_kwargs=None):
        self.sim = sim
        self.fabric = fabric
        self.host_name = host_name
        self.service = service
        self.space = ServerAddressSpace(memory_bytes)
        self.regions = MemoryRegionTable()
        self.freelists = {}
        self.engine = PrismEngine(self.space, self.regions, self.freelists)
        self.backend = backend_cls(sim, self.engine, config,
                                   **(backend_kwargs or {}))
        # Register the on-NIC SRAM once; every connection gets this rkey
        # so redirect targets in its scratch slot pass protection checks.
        self.sram_rkey = self.regions.register(
            self.space.sram_base, self.space.sram_bytes, AccessFlags.ALL)
        self._shared_rkeys = {self.sram_rkey}
        self.connections = {}
        self.failed = False
        self.requests_dropped = 0
        fabric.host(host_name).register_service(service, self._on_request)
        if sim.faults is not None:
            sim.faults.register_server(host_name, self)

    # -- control plane (server CPU, setup / daemon time) ------------------

    def add_region(self, nbytes, flags=AccessFlags.ALL, align=8,
                   shared=True):
        """Allocate + register host memory; returns ``(addr, rkey)``.

        ``shared`` regions are granted automatically to every new
        connection (and retroactively to existing ones), which models
        the usual one-protection-domain-per-application setup.
        """
        addr = self.space.sbrk(nbytes, align)
        rkey = self.regions.register(addr, nbytes, flags)
        if shared:
            self._shared_rkeys.add(rkey)
            for connection in self.connections.values():
                connection.grant(rkey)
        return addr, rkey

    def create_freelist(self, buffer_size, buffer_count, name=None):
        """Carve ``buffer_count`` buffers and post them to a new free list.

        Returns ``(freelist_id, region_rkey)``. The buffers sit in one
        registered region so ALLOCATE's derived-address check passes.
        """
        freelist_id = next(self._freelist_ids)
        qp = QueuePair(buffer_size, name=name or f"freelist{freelist_id}")
        base, rkey = self.add_region(buffer_size * buffer_count)
        qp.post_many(base + i * buffer_size for i in range(buffer_count))
        self.freelists[freelist_id] = qp
        if self.sim.primitives is not None:
            self.sim.primitives.register_freelist(freelist_id, qp)
        if self.sim.faults is not None:
            self.sim.faults.register_freelist(self, freelist_id, qp)
        return freelist_id, rkey

    def freelist(self, freelist_id):
        return self.freelists[freelist_id]

    def connect(self, client_name):
        """Create a connection: all shared rkeys + a 32 B SRAM scratch slot."""
        slot = self.space.sram_sbrk(REDIRECT_SLOT_BYTES)
        connection = Connection(client_name, set(self._shared_rkeys),
                                sram_slot=slot)
        self.connections[connection.id] = connection
        return connection

    # -- buffer recycling gate (§3.2) ---------------------------------------

    def post_buffers(self, freelist_id, addrs):
        """Process helper: re-post recycled buffers safely.

        Takes the write side of the NIC's reader/writer gate: new
        operation *executions* stall, the currently executing ops drain
        (a few µs of NIC pipeline), the buffers are posted, and the
        gate reopens. This is the guarantee that makes PRISM-KV/RS/TX
        reads safe against use-after-free (§6.1): a buffer can never be
        handed back to ALLOCATE while an operation that might still
        dereference it is running.
        """
        yield from self.backend.gate.drain()
        try:
            self.freelists[freelist_id].post_many(addrs)
        finally:
            self.backend.gate.release()

    # -- failure injection ---------------------------------------------------

    def fail(self):
        """Crash-stop: silently drop every subsequent request.

        Models the replica failures ABD tolerates (§7.1): clients see
        no reply (as from a dead host), and quorum protocols proceed
        with the remaining replicas.
        """
        self.failed = True

    def recover(self):
        """Return to service. Memory contents survive (fail-recover
        with stable state); protocol-level catch-up is the
        application's business — ABD repairs via its write-back phase.
        """
        self.failed = False

    # -- data plane ----------------------------------------------------------

    def _on_request(self, message):
        if self.failed:
            self.requests_dropped += 1
            return
        self.sim.spawn(self._serve(message),
                       name=f"{self.service}@{self.host_name}")

    def _serve(self, message):
        request = message.payload
        root = request.span
        connection_id, ops = request.body
        connection = self.connections.get(connection_id)
        if connection is None:
            from repro.core.errors import RemoteNak
            yield from send_reply(
                self.fabric, self.host_name, request,
                RemoteNak(f"unknown connection {connection_id}"), 12,
                ok=False, span=root)
            return
        with root.child("server.process", phase="queue",
                        host=self.host_name,
                        backend=self.backend.label) as span:
            result = yield from self.backend.process(
                connection, ops, span=span, logical=request.logical_id)
        size = self._response_bytes(ops, result)
        yield from send_reply(self.fabric, self.host_name, request,
                              result, size, span=root)

    @staticmethod
    def _response_bytes(ops, result):
        if isinstance(ops, Chain):
            ops = ops.ops
        total = 0
        for op, op_result in zip(ops, result):
            value = op_result.value
            length = len(value) if isinstance(value, (bytes, bytearray)) else 0
            total += op.response_bytes(length)
        return total
