"""Byte-exact execution semantics for PRISM operations (Table 1).

The engine performs the *functional* side of a primitive — dereference,
bounds clamping, free-list pop, masked compare-and-swap, redirection —
against a :class:`~repro.prism.address_space.ServerAddressSpace`, and
records every memory access it makes as an :class:`Access`. Timing
backends replay that trace to charge PCIe round trips (hardware NIC),
core time (software stack), or host-access latency (BlueField).

Protection model: the ``rkey`` carried by an operation must be granted
to the issuing connection and must cover the operation's primary target.
Addresses *derived* during execution — a dereferenced pointer, an
indirect data source, a redirect destination, an allocated buffer —
must be covered by some region granted to the same connection with the
required permission. (The paper states the single-region form of this
rule in §3.1; granting a connection several regions is the natural
generalization its applications need, e.g. state region + on-NIC
scratch region.)
"""

import enum
from dataclasses import dataclass
from itertools import count
from typing import Optional

from repro.core.constants import POINTER_BYTES
from repro.core.errors import (
    AccessViolation,
    AllocationFailure,
    InvalidOperation,
    PrismError,
)
from repro.core.chain import Chain
from repro.core.ops import AllocateOp, CasOp, FetchAddOp, ReadOp, WriteOp
from repro.hw.layout import BOUNDED_PTR_SIZE, unpack_bounded_ptr
from repro.rdma.mr import AccessFlags


class OpStatus(enum.Enum):
    """Outcome of one operation within a chain."""

    OK = "ok"
    CAS_MISS = "cas_miss"   # comparison failed; old value still returned
    SKIPPED = "skipped"     # conditional op whose predecessor failed
    NAK = "nak"             # protection violation / empty free list / ...

    @property
    def successful(self):
        """§3.4: NAKs, errors, and CAS misses count as unsuccessful."""
        return self is OpStatus.OK


@dataclass
class Access:
    """One memory touch made while executing a primitive."""

    kind: str       # "r" or "w"
    domain: str     # "host" or "sram"
    nbytes: int
    atomic: bool = False


@dataclass
class OpResult:
    """Result of one operation: status plus its return payload.

    ``value`` is bytes for READ (empty if redirected) and CAS (the old
    value), an integer buffer address for ALLOCATE (0 if redirected),
    and None for WRITE.
    """

    status: OpStatus
    value: object = None
    error: Optional[PrismError] = None

    @property
    def successful(self):
        return self.status.successful


class ChainResult:
    """Results of a whole chain, in op order."""

    def __init__(self, results):
        self.results = list(results)

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def last(self):
        return self.results[-1]

    @property
    def committed(self):
        """True when the final operation of the chain succeeded."""
        return self.results[-1].successful

    def raise_on_nak(self):
        """Raise the first hard error, if any op NAK'd."""
        for result in self.results:
            if result.status is OpStatus.NAK and result.error is not None:
                raise result.error
        return self


class Connection:
    """Per-client NIC state: granted regions and redirect scratch slot."""

    _ids = count(1)

    def __init__(self, client_name, granted_rkeys, sram_slot=None):
        self.id = next(self._ids)
        self.client_name = client_name
        self.granted_rkeys = set(granted_rkeys)
        self.sram_slot = sram_slot

    def grant(self, rkey):
        self.granted_rkeys.add(rkey)


class PrismEngine:
    """Executes single operations and chains against server memory."""

    def __init__(self, space, region_table, freelists=None,
                 allow_extensions=True, allow_extended_atomics=True):
        self.space = space
        self.regions = region_table
        self.freelists = freelists if freelists is not None else {}
        self.allow_extensions = allow_extensions
        self.allow_extended_atomics = allow_extended_atomics
        self.ops_executed = 0
        #: optional repro.obs.timeline.ChargeMonitor counting executed
        #: ops and touched bytes per window (the engine itself is
        #: functional — time is charged by the owning backend)
        self.monitor = None
        #: optional repro.obs.primitives.PrimitiveCollector recording
        #: CAS outcomes, dereference depth, allocator watermarks, and
        #: NAK reasons (wired by the owning backend from sim.primitives)
        self.primitives = None
        #: optional repro.obs.flight.FlightRecorder receiving CAS-miss
        #: and NAK events on the executing operation's causal timeline
        #: (wired by the owning backend from sim.flight)
        self.flight = None
        #: optional repro.obs.views.ViewCollector receiving per-
        #: connection CAS/NAK/pointer-chase signals for the online
        #: sliding-window views (wired by the owning backend from
        #: sim.views)
        self.views = None

    # -- protection helpers ------------------------------------------------

    def _check_primary(self, connection, op, addr, length, need):
        if op.rkey not in connection.granted_rkeys:
            raise AccessViolation(
                f"rkey {op.rkey:#x} not granted to connection {connection.id}")
        self.regions.check(addr, length, op.rkey, need)

    def _check_derived(self, connection, addr, length, need, what):
        """A derived address must fall inside *some* granted region."""
        for rkey in connection.granted_rkeys:
            try:
                self.regions.check(addr, length, rkey, need)
                return
            except AccessViolation:
                continue
        raise AccessViolation(
            f"{what}: [{addr}, {addr + length}) not covered by any region "
            f"granted to connection {connection.id}")

    def _feature_check(self, op):
        if not self.allow_extensions and op.uses_extensions():
            if isinstance(op, CasOp) and self.allow_extended_atomics:
                if not op.uses_prism_only_features():
                    return  # extended atomics exist on stock Mellanox NICs
            raise InvalidOperation(
                f"{op.opname}: PRISM extension used, but this NIC supports "
                "only the classic RDMA interface")

    # -- address resolution ---------------------------------------------

    def _resolve_read_target(self, connection, op, accesses):
        """Dereference for READ: returns (effective_addr, effective_len)."""
        if not op.indirect:
            self._check_primary(connection, op, op.addr, op.length,
                                AccessFlags.READ)
            return op.addr, op.length
        struct_len = BOUNDED_PTR_SIZE if op.bounded else POINTER_BYTES
        self._check_primary(connection, op, op.addr, struct_len,
                            AccessFlags.READ)
        raw = self.space.read(op.addr, struct_len)
        accesses.append(Access("r", self.space.domain(op.addr), struct_len))
        if op.bounded:
            target, bound = unpack_bounded_ptr(raw)
            effective = min(op.length, bound)
        else:
            target = int.from_bytes(raw[:POINTER_BYTES], "little")
            effective = op.length
        self._check_derived(connection, target, effective, AccessFlags.READ,
                            "READ pointee")
        return target, effective

    def _resolve_write_target(self, connection, op, accesses):
        if not op.addr_indirect:
            self._check_primary(connection, op, op.addr, op.length,
                                AccessFlags.WRITE)
            return op.addr, op.length
        struct_len = BOUNDED_PTR_SIZE if op.addr_bounded else POINTER_BYTES
        self._check_primary(connection, op, op.addr, struct_len,
                            AccessFlags.READ)
        raw = self.space.read(op.addr, struct_len)
        accesses.append(Access("r", self.space.domain(op.addr), struct_len))
        if op.addr_bounded:
            target, bound = unpack_bounded_ptr(raw)
            effective = min(op.length, bound)
        else:
            target = int.from_bytes(raw[:POINTER_BYTES], "little")
            effective = op.length
        self._check_derived(connection, target, effective, AccessFlags.WRITE,
                            "WRITE pointee")
        return target, effective

    # -- single-op execution ------------------------------------------------

    def execute_op(self, connection, op, prev_ok=True):
        """Execute one op; returns ``(OpResult, [Access])``.

        ``prev_ok`` is the chain predicate: a conditional op with a
        failed predecessor is skipped without touching memory.
        """
        accesses = []
        if op.conditional and not prev_ok:
            return OpResult(OpStatus.SKIPPED), accesses
        try:
            self._feature_check(op)
            if isinstance(op, ReadOp):
                result = self._do_read(connection, op, accesses)
            elif isinstance(op, WriteOp):
                result = self._do_write(connection, op, accesses)
            elif isinstance(op, AllocateOp):
                result = self._do_allocate(connection, op, accesses)
            elif isinstance(op, CasOp):
                result = self._do_cas(connection, op, accesses)
            elif isinstance(op, FetchAddOp):
                result = self._do_fetch_add(connection, op, accesses)
            else:
                raise InvalidOperation(f"unknown operation {op!r}")
        except (AccessViolation, AllocationFailure, InvalidOperation) as exc:
            if self.primitives is not None:
                self.primitives.note_nak(op.opname, exc)
            if self.views is not None:
                self.views.note_nak(connection.id, op.opname)
            if self.flight is not None:
                self.flight.record("op.nak", opname=op.opname,
                                   error=type(exc).__name__)
            return OpResult(OpStatus.NAK, error=exc), accesses
        self.ops_executed += 1
        if self.monitor is not None:
            self.monitor.count(
                events=1, units=sum(access.nbytes for access in accesses))
        return result, accesses

    def _do_read(self, connection, op, accesses):
        target, length = self._resolve_read_target(connection, op, accesses)
        if self.primitives is not None:
            self.primitives.note_deref("READ", int(op.indirect),
                                       bounded=op.bounded)
        if self.views is not None:
            self.views.note_chase(connection.id, "READ", int(op.indirect))
        data = self.space.read(target, length)
        accesses.append(Access("r", self.space.domain(target), length))
        if op.redirect_to is not None:
            self._check_derived(connection, op.redirect_to, length,
                                AccessFlags.WRITE, "READ redirect target")
            self.space.write(op.redirect_to, data)
            accesses.append(
                Access("w", self.space.domain(op.redirect_to), length))
            return OpResult(OpStatus.OK, value=b"")
        return OpResult(OpStatus.OK, value=data)

    def _source_data(self, connection, op, length, accesses, what):
        """WRITE/CAS data operand, honouring data_indirect."""
        if not op.data_indirect:
            return op.data
        source = int.from_bytes(op.data, "little")
        self._check_derived(connection, source, length, AccessFlags.READ, what)
        data = self.space.read(source, length)
        accesses.append(Access("r", self.space.domain(source), length))
        return data

    def _do_write(self, connection, op, accesses):
        target, length = self._resolve_write_target(connection, op, accesses)
        if self.primitives is not None:
            self.primitives.note_deref(
                "WRITE", int(op.addr_indirect) + int(op.data_indirect))
        if self.views is not None:
            self.views.note_chase(
                connection.id, "WRITE",
                int(op.addr_indirect) + int(op.data_indirect))
        data = self._source_data(connection, op, op.length, accesses,
                                 "WRITE data source")
        data = data[:length]
        self.space.write(target, data)
        accesses.append(Access("w", self.space.domain(target), len(data)))
        return OpResult(OpStatus.OK)

    def _do_allocate(self, connection, op, accesses):
        freelist = self.freelists.get(op.freelist)
        if freelist is None:
            raise InvalidOperation(f"ALLOCATE: no free list {op.freelist}")
        if not freelist.would_satisfy(len(op.data)):
            raise InvalidOperation(
                f"ALLOCATE: {len(op.data)} bytes exceeds buffer size "
                f"{freelist.buffer_size} of {freelist.name}")
        try:
            buffer_addr = freelist.pop()  # FreeListExhausted when empty
        except AllocationFailure:
            if self.primitives is not None:
                self.primitives.note_exhaustion(op.freelist, freelist)
            raise
        if self.primitives is not None:
            self.primitives.note_allocate(op.freelist, freelist)
        self._check_derived(connection, buffer_addr, freelist.buffer_size,
                            AccessFlags.WRITE, "ALLOCATE buffer")
        self.space.write(buffer_addr, op.data)
        accesses.append(
            Access("w", self.space.domain(buffer_addr), len(op.data)))
        pointer = buffer_addr.to_bytes(POINTER_BYTES, "little")
        if op.redirect_to is not None:
            self._check_derived(connection, op.redirect_to, POINTER_BYTES,
                                AccessFlags.WRITE, "ALLOCATE redirect target")
            self.space.write(op.redirect_to, pointer)
            accesses.append(Access(
                "w", self.space.domain(op.redirect_to), POINTER_BYTES))
            return OpResult(OpStatus.OK, value=0)
        return OpResult(OpStatus.OK, value=buffer_addr)

    def _do_cas(self, connection, op, accesses):
        width = op.operand_width
        # Resolve target (the dereference is NOT atomic; only the CAS is).
        target = op.target
        if op.target_indirect:
            self._check_primary(connection, op, op.target, POINTER_BYTES,
                                AccessFlags.READ)
            target = self.space.read_ptr(op.target)
            accesses.append(
                Access("r", self.space.domain(op.target), POINTER_BYTES))
            self._check_derived(connection, target, width,
                                AccessFlags.ATOMIC, "CAS pointee")
        else:
            self._check_primary(connection, op, target, width,
                                AccessFlags.ATOMIC)
        operand_bytes = self._source_data(connection, op, width, accesses,
                                          "CAS data source")
        operand = int.from_bytes(operand_bytes, "little")
        if op.compare_data is not None:
            comparand = int.from_bytes(op.compare_data, "little")
        else:
            comparand = operand

        old_bytes = self.space.read(target, width)
        accesses.append(
            Access("r", self.space.domain(target), width, atomic=True))
        old = int.from_bytes(old_bytes, "little")

        swapped = op.mode.compare(comparand & op.compare_mask,
                                  old & op.compare_mask)
        if self.primitives is not None:
            self.primitives.note_deref(
                "CAS", int(op.target_indirect) + int(op.data_indirect))
            self.primitives.note_cas(connection.id, target, op.mode, swapped)
        if self.views is not None:
            self.views.note_chase(
                connection.id, "CAS",
                int(op.target_indirect) + int(op.data_indirect))
            self.views.note_cas(connection.id, target, swapped)
        if self.flight is not None and not swapped:
            # Only misses are flight-worthy: they are what retry storms
            # on hot addresses are made of (forensics groups by target).
            self.flight.record("cas.miss", target=target,
                               mode=op.mode.value)
        if swapped:
            new = (old & ~op.swap_mask) | (operand & op.swap_mask)
            self.space.write(target, new.to_bytes(width, "little"))
            accesses.append(
                Access("w", self.space.domain(target), width, atomic=True))
            return OpResult(OpStatus.OK, value=old_bytes)
        return OpResult(OpStatus.CAS_MISS, value=old_bytes)

    def _do_fetch_add(self, connection, op, accesses):
        self._check_primary(connection, op, op.target, 8,
                            AccessFlags.ATOMIC)
        old_bytes = self.space.read(op.target, 8)
        accesses.append(
            Access("r", self.space.domain(op.target), 8, atomic=True))
        old = int.from_bytes(old_bytes, "little")
        new = (old + op.delta) % (1 << 64)
        self.space.write(op.target, new.to_bytes(8, "little"))
        accesses.append(
            Access("w", self.space.domain(op.target), 8, atomic=True))
        return OpResult(OpStatus.OK, value=old_bytes)

    # -- whole-chain execution (used by tests and simple callers) ---------

    def execute_chain(self, connection, ops):
        """Execute a chain back to back, honouring §3.4 semantics.

        Timing backends interleave their own delays between ops; they
        call :meth:`execute_op` directly. A hard NAK stops processing of
        everything after it, like an RDMA QP entering the error state.
        """
        if isinstance(ops, Chain):
            ops = ops.ops
        results = []
        prev_ok = True
        aborted = False
        for op in ops:
            if aborted:
                results.append(OpResult(OpStatus.SKIPPED))
                continue
            result, _accesses = self.execute_op(connection, op, prev_ok)
            results.append(result)
            if result.status is OpStatus.NAK:
                aborted = True
            prev_ok = result.successful
        if self.primitives is not None:
            self.primitives.note_chain(ops, results)
        return ChainResult(results)
