"""BlueField smart-NIC backend (§4.3).

The BlueField is an *off-path* NIC: its ARM cores (8× Cortex-A72 at
800 MHz) must reach host memory through an internal switch as RDMA
requests, measured by the paper at ~3 µs per access — which is why this
deployment option is the slowest in Fig. 1 despite running on the NIC.
Accesses to the card's local memory are cheap.
"""

from repro.hw.cpu import CorePool
from repro.prism.address_space import DOMAIN_HOST
from repro.prism.backend import Backend, BackendConfig


class BlueFieldPrismBackend(Backend):
    """PRISM primitives on BlueField ARM cores."""

    label = "prism-bluefield"
    supports_extensions = True
    supports_extended_atomics = True
    # ARM-core execution is "cpu"; host-memory accesses cross the
    # card's internal switch as RDMA — the device<->host data path —
    # so traces attribute them to "pcie" alongside real DMA costs.
    execution_phase = "cpu"
    admission_phase = "cpu"

    def __init__(self, sim, engine, config=None, cores=None):
        config = config or BackendConfig()
        super().__init__(sim, engine, config)
        self.pool = CorePool(sim, cores or config.bf_cores,
                             name=f"{self.label}.cores")
        self._host_path_monitor = None
        if sim.utilization is not None:
            # The card's internal-switch path to host memory is its
            # device<->host data path; report it alongside real PCIe.
            # One outstanding host access per ARM core.
            self._host_path_monitor = sim.utilization.charge_monitor(
                f"{self.label}.hostpath", kind="pcie",
                capacity=cores or config.bf_cores)

    def note_execution(self, op, accesses, op_index, duration):
        if self._host_path_monitor is None:
            return
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                self._host_path_monitor.charge(
                    self.config.bf_host_access_us
                    + access.nbytes / self.config.bf_bytes_per_us,
                    units=access.nbytes)

    def request_admission(self, ops):
        yield self.sim.timeout(self.config.bf_pipeline_latency_us)

    def acquire_execution(self, op):
        yield self.pool._pool.acquire()
        return self.pool._pool.release

    def op_time(self, op, accesses, op_index=0):
        # Single accumulation kept bit-identical to the seed timing;
        # op_time_parts mirrors it for traced attribution.
        total = self.config.bf_op_occupancy_us
        if op_index == 0:
            total += self.config.bf_request_occupancy_us
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                total += (self.config.bf_host_access_us
                          + access.nbytes / self.config.bf_bytes_per_us)
            else:
                total += self.config.bf_local_access_us
        return total

    def op_time_parts(self, op, accesses, op_index=0):
        """ARM-core work ("cpu") vs internal-switch host access ("pcie")."""
        cpu = self.config.bf_op_occupancy_us
        if op_index == 0:
            cpu += self.config.bf_request_occupancy_us
        pcie = 0.0
        for access in accesses:
            if access.domain == DOMAIN_HOST:
                pcie += (self.config.bf_host_access_us
                         + access.nbytes / self.config.bf_bytes_per_us)
            else:
                cpu += self.config.bf_local_access_us
        return {"cpu": cpu, "pcie": pcie}

    def utilization(self, elapsed):
        return self.pool.utilization(elapsed)
