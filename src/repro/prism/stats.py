"""Server observability: one snapshot of where a run's time went.

``server_report`` gathers the counters every layer already maintains —
backend utilization, engine op counts, port utilizations, free-list
depths, recycler progress — into one dict, so benchmarks and the CLI
can show *why* a configuration saturates (CPU vs TX bytes vs RX bytes
vs buffer starvation) instead of just that it did.
"""


def server_report(server, elapsed_us):
    """Snapshot a :class:`~repro.prism.server.PrismServer`'s counters.

    ``elapsed_us`` is the simulated window the utilizations cover.
    """
    host = server.fabric.host(server.host_name)
    backend = server.backend
    report = {
        "host": server.host_name,
        "service": server.service,
        "backend": backend.label,
        "elapsed_us": elapsed_us,
        "requests": backend.requests_processed,
        "engine_ops": server.engine.ops_executed,
        "tx_utilization": host.tx.utilization(elapsed_us),
        "rx_utilization": host.rx.utilization(elapsed_us),
        "tx_bytes": host.tx.bytes_sent,
        "rx_bytes": host.rx.bytes_sent,
        "connections": len(server.connections),
        "requests_dropped": server.requests_dropped,
        "freelists": {},
    }
    if hasattr(backend, "utilization"):
        report["backend_utilization"] = backend.utilization(elapsed_us)
    for freelist_id, qp in server.freelists.items():
        report["freelists"][freelist_id] = {
            "name": qp.name,
            "free": len(qp),
            "popped": qp.total_popped,
            "posted": qp.total_posted,
        }
    return report


def bottleneck(report, cpu_threshold=0.85, wire_threshold=0.85):
    """A one-word guess at the binding constraint of a saturated run."""
    backend_util = report.get("backend_utilization", 0.0)
    if backend_util >= cpu_threshold:
        return "compute"
    if report["rx_utilization"] >= wire_threshold:
        return "rx-wire"
    if report["tx_utilization"] >= wire_threshold:
        return "tx-wire"
    for stats in report["freelists"].values():
        if stats["free"] == 0 and stats["popped"] > 0:
            return "buffers"
    return "load"


def format_report(report):
    """Human-readable multi-line rendering."""
    lines = [
        f"server {report['host']} ({report['backend']}) over "
        f"{report['elapsed_us']:.0f} µs:",
        f"  requests={report['requests']}  engine_ops={report['engine_ops']}"
        f"  connections={report['connections']}",
        f"  utilization: backend={report.get('backend_utilization', 0):.2f}"
        f"  tx={report['tx_utilization']:.2f}"
        f"  rx={report['rx_utilization']:.2f}",
        f"  bottleneck guess: {bottleneck(report)}",
    ]
    for stats in report["freelists"].values():
        lines.append(
            f"  freelist {stats['name']}: free={stats['free']} "
            f"popped={stats['popped']} posted={stats['posted']}")
    return "\n".join(lines)
