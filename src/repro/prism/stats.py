"""Server observability: one snapshot of where a run's time went.

:func:`collect_server_metrics` gathers the counters every layer already
maintains — backend utilization, engine op counts, port utilizations,
free-list depths, recycler progress — into a
:class:`~repro.obs.metrics.MetricsRegistry`, so benchmarks and the CLI
can show *why* a configuration saturates (CPU vs TX bytes vs RX bytes
vs buffer starvation) instead of just that it did.

:func:`server_report` is a thin dict view over the same collection,
kept for callers (and tests) that predate the registry.
"""

from repro.obs.metrics import MetricsRegistry


def collect_server_metrics(server, elapsed_us, registry=None):
    """Snapshot a :class:`~repro.prism.server.PrismServer` into metrics.

    ``elapsed_us`` is the simulated window the utilizations cover.
    Counters absorb the servers' monotonic totals (so repeated
    collection into one registry never double-counts); gauges carry
    point-in-time values like utilizations and free-list depth.
    Returns the registry.
    """
    if registry is None:  # NB: an empty registry is falsy — test identity
        registry = MetricsRegistry()
    host = server.fabric.host(server.host_name)
    backend = server.backend
    labels = {"host": server.host_name, "backend": backend.label,
              "service": server.service}

    registry.counter("prism_requests_total", **labels).absorb(
        backend.requests_processed)
    registry.counter("prism_engine_ops_total", **labels).absorb(
        server.engine.ops_executed)
    registry.counter("prism_requests_dropped_total", **labels).absorb(
        server.requests_dropped)
    # Port byte counters are direction-neutral totals: the RX pipe's
    # ``bytes_total`` is bytes *received* by this host (the old
    # ``bytes_sent`` alias made rx_bytes look like a copy-paste bug).
    registry.counter("prism_tx_bytes_total", **labels).absorb(
        host.tx.bytes_total)
    registry.counter("prism_rx_bytes_total", **labels).absorb(
        host.rx.bytes_total)

    registry.gauge("prism_elapsed_us", **labels).set(elapsed_us)
    registry.gauge("prism_connections", **labels).set(
        len(server.connections))
    registry.gauge("prism_tx_utilization", **labels).set(
        host.tx.utilization(elapsed_us))
    registry.gauge("prism_rx_utilization", **labels).set(
        host.rx.utilization(elapsed_us))
    if hasattr(backend, "utilization"):
        registry.gauge("prism_backend_utilization", **labels).set(
            backend.utilization(elapsed_us))

    for freelist_id, qp in server.freelists.items():
        fl_labels = dict(labels, freelist=qp.name)
        registry.gauge("prism_freelist_free", **fl_labels).set(len(qp))
        registry.counter("prism_freelist_popped_total", **fl_labels).absorb(
            qp.total_popped)
        registry.counter("prism_freelist_posted_total", **fl_labels).absorb(
            qp.total_posted)
    return registry


def server_report(server, elapsed_us, registry=None):
    """Dict view over :func:`collect_server_metrics` (legacy shape).

    ``elapsed_us`` is the simulated window the utilizations cover.
    """
    registry = collect_server_metrics(server, elapsed_us, registry)
    backend = server.backend
    labels = {"host": server.host_name, "backend": backend.label,
              "service": server.service}

    def value(name, **extra):
        return registry.value(name, **dict(labels, **extra))

    report = {
        "host": server.host_name,
        "service": server.service,
        "backend": backend.label,
        "elapsed_us": elapsed_us,
        "requests": value("prism_requests_total"),
        "engine_ops": value("prism_engine_ops_total"),
        "tx_utilization": value("prism_tx_utilization"),
        "rx_utilization": value("prism_rx_utilization"),
        "tx_bytes": value("prism_tx_bytes_total"),
        "rx_bytes": value("prism_rx_bytes_total"),
        "connections": value("prism_connections"),
        "requests_dropped": value("prism_requests_dropped_total"),
        "freelists": {},
    }
    if hasattr(backend, "utilization"):
        report["backend_utilization"] = value("prism_backend_utilization")
    for freelist_id, qp in server.freelists.items():
        report["freelists"][freelist_id] = {
            "name": qp.name,
            "free": value("prism_freelist_free", freelist=qp.name),
            "popped": value("prism_freelist_popped_total",
                            freelist=qp.name),
            "posted": value("prism_freelist_posted_total",
                            freelist=qp.name),
        }
    return report


def bottleneck(report, cpu_threshold=0.85, wire_threshold=0.85):
    """A one-word guess at the binding constraint of a saturated run."""
    backend_util = report.get("backend_utilization", 0.0)
    if backend_util >= cpu_threshold:
        return "compute"
    if report["rx_utilization"] >= wire_threshold:
        return "rx-wire"
    if report["tx_utilization"] >= wire_threshold:
        return "tx-wire"
    for stats in report["freelists"].values():
        if stats["free"] == 0 and stats["popped"] > 0:
            return "buffers"
    return "load"


def format_report(report):
    """Human-readable multi-line rendering."""
    lines = [
        f"server {report['host']} ({report['backend']}) over "
        f"{report['elapsed_us']:.0f} µs:",
        f"  requests={report['requests']}  engine_ops={report['engine_ops']}"
        f"  connections={report['connections']}",
        f"  utilization: backend={report.get('backend_utilization', 0):.2f}"
        f"  tx={report['tx_utilization']:.2f}"
        f"  rx={report['rx_utilization']:.2f}",
        f"  bottleneck guess: {bottleneck(report)}",
    ]
    for stats in report["freelists"].values():
        lines.append(
            f"  freelist {stats['name']}: free={stats['free']} "
            f"popped={stats['popped']} posted={stats['posted']}")
    return "\n".join(lines)
