"""Client-driven buffer recycling (§3.2).

The applications in the paper detect retired buffers client-side (the
old value returned by an installing CAS) and report them to a daemon on
the server over traditional RPC; the daemon re-posts them to the NIC
free list in batches, only when concurrent NIC operations are complete
(the quiescence gate in :meth:`PrismServer.post_buffers`).
"""

from collections import defaultdict
from itertools import count

from repro.sim.events import TimeoutExpired

_reporter_ids = count(1)


class RecyclerDaemon:
    """Server-side daemon: collects retired buffers, re-posts in batches.

    Reports are deduplicated by ``(reporter, report_id)``: RPC
    retransmission (and fault-injected message duplication) delivers
    the same report more than once, and posting a buffer to the free
    list twice would hand the same address to two ALLOCATEs.
    """

    METHOD = "recycle"

    def __init__(self, sim, server, rpc_server, batch_size=64,
                 scan_interval_us=50.0, service_us=0.4):
        self.sim = sim
        self.server = server
        self.batch_size = batch_size
        self.scan_interval_us = scan_interval_us
        self._pending = defaultdict(list)
        self._seen_reports = set()
        self.buffers_recycled = 0
        self.duplicate_reports = 0
        rpc_server.register(self.METHOD, self._on_report,
                            service_us=service_us)
        self._runner = sim.spawn(self._run(), name="recycler")

    def _on_report(self, args):
        freelist_id, addrs, reporter, report_id = args
        if (reporter, report_id) in self._seen_reports:
            self.duplicate_reports += 1
            return None, 0
        self._seen_reports.add((reporter, report_id))
        self._pending[freelist_id].extend(addrs)
        return None, 0

    def _run(self):
        while True:
            yield self.sim.timeout(self.scan_interval_us)
            yield from self.flush()

    def flush(self):
        """Re-post every pending batch (process helper)."""
        for freelist_id, addrs in list(self._pending.items()):
            if not addrs:
                continue
            batch, self._pending[freelist_id] = (
                addrs[:], [])
            yield from self.server.post_buffers(freelist_id, batch)
            self.buffers_recycled += len(batch)


class RecyclerClient:
    """Client-side helper batching retired-buffer reports."""

    def __init__(self, rpc_client, server_name, batch_size=16):
        self.rpc = rpc_client
        self.server_name = server_name
        self.batch_size = batch_size
        self._pending = defaultdict(list)
        # Reporter identity + per-report sequence numbers let the
        # daemon drop duplicate deliveries of the same report. The id
        # is assigned in construction order, so it is deterministic.
        self.reporter = f"recycler{next(_reporter_ids)}"
        self._report_ids = count(1)
        self.reports_sent = 0
        self.reports_abandoned = 0

    def retire(self, freelist_id, addr):
        """Note a retired buffer; returns a flush generator when the
        batch is full (caller decides whether to await or spawn it)."""
        self._pending[freelist_id].append(addr)
        if len(self._pending[freelist_id]) >= self.batch_size:
            return self.flush(freelist_id)
        return None

    def flush(self, freelist_id):
        """Process helper: report one free list's pending buffers.

        Flush processes are usually spawned un-waited, so a report
        whose retransmission budget runs out must not crash the run:
        the batch is abandoned (the buffers leak — the free list's
        spares absorb it) and counted against the fault injector.
        """
        batch, self._pending[freelist_id] = self._pending[freelist_id], []
        if not batch:
            return
        try:
            yield from self.rpc.call(
                self.server_name, RecyclerDaemon.METHOD,
                (freelist_id, batch, self.reporter, next(self._report_ids)),
                request_payload_bytes=8 * len(batch) + 8)
        except TimeoutExpired:
            self.reports_abandoned += 1
            faults = self.rpc.sim.faults
            if faults is not None:
                faults.note_recycle_abandoned(len(batch))
            return
        self.reports_sent += 1
