"""Size-class buffer allocation (§3.2).

"Applications can minimize [internal fragmentation] by registering
multiple queues containing buffers of different sizes, and selecting
the appropriate one. For example, using buffers sized as powers of two
guarantees a maximum space overhead of 2×."

:class:`SizeClassAllocator` manages one free-list queue pair per
power-of-two class and picks the right ``freelist`` id for a payload —
a *client-side* decision, exactly as on real PRISM: the NIC never
inspects sizes, it just pops the queue named in the ALLOCATE request.
"""

from repro.core.errors import InvalidOperation


def size_class_for(nbytes, min_class):
    """Smallest power-of-two >= max(nbytes, min_class)."""
    size = max(min_class, 1)
    while size < nbytes:
        size <<= 1
    return size


class SizeClassAllocator:
    """Power-of-two free lists on one server.

    Created via :meth:`install`, which carves and posts buffers for
    every class in [min_class, max_class]. Clients call
    :meth:`freelist_for` to pick the queue for a payload and
    :meth:`rkey_for` for its protection domain.
    """

    def __init__(self, min_class, max_class):
        if min_class & (min_class - 1) or max_class & (max_class - 1):
            raise InvalidOperation("size classes must be powers of two")
        if min_class > max_class:
            raise InvalidOperation("min_class exceeds max_class")
        self.min_class = min_class
        self.max_class = max_class
        self._classes = {}  # size -> (freelist_id, rkey)
        self._server = None  # set by install(); needed for watermarks()

    @classmethod
    def install(cls, server, min_class=64, max_class=4096,
                buffers_per_class=256):
        """Create and post every class's free list on ``server``."""
        allocator = cls(min_class, max_class)
        allocator._server = server
        size = min_class
        while size <= max_class:
            freelist_id, rkey = server.create_freelist(
                size, buffers_per_class, name=f"class{size}")
            allocator._classes[size] = (freelist_id, rkey)
            size <<= 1
        return allocator

    @property
    def classes(self):
        return sorted(self._classes)

    def class_for(self, nbytes):
        size = size_class_for(nbytes, self.min_class)
        if size > self.max_class:
            raise InvalidOperation(
                f"{nbytes} bytes exceeds the largest class "
                f"({self.max_class})")
        return size

    def freelist_for(self, nbytes):
        """The freelist id whose buffers fit ``nbytes`` tightest."""
        return self._classes[self.class_for(nbytes)][0]

    def rkey_for(self, nbytes):
        return self._classes[self.class_for(nbytes)][1]

    def overhead(self, nbytes):
        """Internal fragmentation for a payload of ``nbytes``."""
        return self.class_for(nbytes) - nbytes

    def worst_case_overhead_factor(self):
        """The §3.2 bound: powers of two waste at most 2x."""
        return 2.0

    # -- watermark reporting -------------------------------------------------

    def watermarks(self):
        """Final per-class occupancy report (installed allocators only).

        One row per size class: current depth, capacity (deepest the
        queue ever was), low watermark (closest ALLOCATE came to
        draining it), and lifetime post/pop counters. Empty for
        allocators not created via :meth:`install`.
        """
        rows = []
        if self._server is None:
            return rows
        for size in self.classes:
            freelist_id, _rkey = self._classes[size]
            qp = self._server.freelist(freelist_id)
            depth = len(qp)
            capacity = qp.high_watermark or depth
            rows.append({
                "class": size,
                "freelist": freelist_id,
                "name": qp.name,
                "depth": depth,
                "capacity": capacity,
                "occupancy": (1.0 - depth / capacity) if capacity else 0.0,
                "low_watermark": qp.low_watermark,
                "posted": qp.total_posted,
                "popped": qp.total_popped,
            })
        return rows

    def format_watermarks(self):
        """Human-readable final watermark report, one line per class."""
        lines = ["free-list watermarks:"]
        rows = self.watermarks()
        if not rows:
            lines.append("  (allocator not installed on a server)")
        for row in rows:
            lines.append(
                f"  {row['name']}: depth {row['depth']}/{row['capacity']} "
                f"(occupancy {row['occupancy']:.1%}), low watermark "
                f"{row['low_watermark']}, posted {row['posted']}, "
                f"popped {row['popped']}")
        return "\n".join(lines)
