"""Size-class buffer allocation (§3.2).

"Applications can minimize [internal fragmentation] by registering
multiple queues containing buffers of different sizes, and selecting
the appropriate one. For example, using buffers sized as powers of two
guarantees a maximum space overhead of 2×."

:class:`SizeClassAllocator` manages one free-list queue pair per
power-of-two class and picks the right ``freelist`` id for a payload —
a *client-side* decision, exactly as on real PRISM: the NIC never
inspects sizes, it just pops the queue named in the ALLOCATE request.
"""

from repro.core.errors import InvalidOperation


def size_class_for(nbytes, min_class):
    """Smallest power-of-two >= max(nbytes, min_class)."""
    size = max(min_class, 1)
    while size < nbytes:
        size <<= 1
    return size


class SizeClassAllocator:
    """Power-of-two free lists on one server.

    Created via :meth:`install`, which carves and posts buffers for
    every class in [min_class, max_class]. Clients call
    :meth:`freelist_for` to pick the queue for a payload and
    :meth:`rkey_for` for its protection domain.
    """

    def __init__(self, min_class, max_class):
        if min_class & (min_class - 1) or max_class & (max_class - 1):
            raise InvalidOperation("size classes must be powers of two")
        if min_class > max_class:
            raise InvalidOperation("min_class exceeds max_class")
        self.min_class = min_class
        self.max_class = max_class
        self._classes = {}  # size -> (freelist_id, rkey)

    @classmethod
    def install(cls, server, min_class=64, max_class=4096,
                buffers_per_class=256):
        """Create and post every class's free list on ``server``."""
        allocator = cls(min_class, max_class)
        size = min_class
        while size <= max_class:
            freelist_id, rkey = server.create_freelist(
                size, buffers_per_class, name=f"class{size}")
            allocator._classes[size] = (freelist_id, rkey)
            size <<= 1
        return allocator

    @property
    def classes(self):
        return sorted(self._classes)

    def class_for(self, nbytes):
        size = size_class_for(nbytes, self.min_class)
        if size > self.max_class:
            raise InvalidOperation(
                f"{nbytes} bytes exceeds the largest class "
                f"({self.max_class})")
        return size

    def freelist_for(self, nbytes):
        """The freelist id whose buffers fit ``nbytes`` tightest."""
        return self._classes[self.class_for(nbytes)][0]

    def rkey_for(self, nbytes):
        return self._classes[self.class_for(nbytes)][1]

    def overhead(self, nbytes):
        """Internal fragmentation for a payload of ``nbytes``."""
        return self.class_for(nbytes) - nbytes

    def worst_case_overhead_factor(self):
        """The §3.2 bound: powers of two waste at most 2x."""
        return 2.0
