"""PRISM execution: engine semantics, timing backends, server, client.

Layering:

* :mod:`repro.prism.engine` — what each primitive *does* to memory
  (byte-exact, backend-independent), plus the memory-access trace that
  backends price.
* :mod:`repro.prism.backend` and friends — *when* it happens: the
  software stack (dedicated cores), the projected hardware NIC, the
  BlueField smart NIC, and the plain hardware RDMA NIC used by
  baselines.
* :mod:`repro.prism.server` / :mod:`repro.prism.client` — wiring onto
  the simulated fabric.
"""

from repro.prism.allocator import SizeClassAllocator
from repro.prism.backend import BackendConfig, PostingGate
from repro.prism.bluefield import BlueFieldPrismBackend
from repro.prism.client import PrismClient
from repro.prism.engine import Connection, OpResult, OpStatus, PrismEngine
from repro.prism.hardware import HardwarePrismBackend, HardwareRdmaBackend
from repro.prism.server import PrismServer
from repro.prism.software import SoftwarePrismBackend, SoftwareRdmaBackend

__all__ = [
    "BackendConfig",
    "PostingGate",
    "SizeClassAllocator",
    "BlueFieldPrismBackend",
    "Connection",
    "HardwarePrismBackend",
    "HardwareRdmaBackend",
    "OpResult",
    "OpStatus",
    "PrismClient",
    "PrismEngine",
    "PrismServer",
    "SoftwarePrismBackend",
    "SoftwareRdmaBackend",
]
