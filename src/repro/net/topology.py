"""Topology presets matching the paper's deployment scenarios.

The paper evaluates under four network settings:

* a direct NIC-to-NIC cable (§4.3 microbenchmarks, Fig. 1),
* one Arista ToR switch adding 0.6 µs round trip (§5, Fig. 2 "Rack"),
* a three-tier cluster network, 3 µs round trip (Fig. 2 "Cluster"),
* reported datacenter RDMA latency of 24 µs round trip (Fig. 2).

``one_way_latency_us`` below bundles propagation plus switch traversal
so that a request/response pair accrues the paper's round-trip figure.
"""

from dataclasses import dataclass

from repro.net.fabric import Fabric, Host

GBIT_40_BYTES_PER_US = 5000.0  # 40 Gb/s expressed in bytes per microsecond
GBIT_25_BYTES_PER_US = 3125.0  # the ConnectX-5 testbed NICs are 25 GbE


@dataclass(frozen=True)
class NetworkProfile:
    """A named deployment scenario."""

    name: str
    one_way_latency_us: float
    bytes_per_us: float = GBIT_40_BYTES_PER_US
    #: per-message port occupancy for framing (Ethernet preamble/IFG,
    #: IP/UDP, ICRC): ~66 B at 40 GbE. This is why Pilaf's two replies
    #: per GET cost measurably more wire than PRISM-KV's one (§6.2).
    per_message_us: float = 0.0132


DIRECT = NetworkProfile("direct", one_way_latency_us=0.35)
RACK = NetworkProfile("rack", one_way_latency_us=0.65)
CLUSTER = NetworkProfile("cluster", one_way_latency_us=1.85)
DATACENTER = NetworkProfile("datacenter", one_way_latency_us=12.35)

PROFILES = {p.name: p for p in (DIRECT, RACK, CLUSTER, DATACENTER)}


def make_fabric(sim, profile, host_names):
    """Build a fabric with one host per name under ``profile``."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    fabric = Fabric(sim, one_way_latency_us=profile.one_way_latency_us)
    for name in host_names:
        fabric.add_host(
            Host(sim, name, profile.bytes_per_us, profile.per_message_us))
    return fabric
