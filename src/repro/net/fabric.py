"""Host and fabric models.

Each host owns full-duplex TX/RX ports (``BandwidthPipe``). A message
occupies the sender's TX port for its serialization time, crosses the
path (propagation + per-switch latency), occupies the receiver's RX
port, then is handed to the destination service handler.

Service handlers are plain callables ``handler(message)`` registered
per host; they typically spawn a process to do timed work and reply
via :meth:`Fabric.send`.
"""

from repro.obs.trace import NULL_SPAN, Span
from repro.sim.resources import BandwidthPipe
from repro.net.message import Message


class Host:
    """A machine on the fabric with named message services."""

    def __init__(self, sim, name, bytes_per_us, per_message_us=0.0):
        self.sim = sim
        self.name = name
        self.tx = BandwidthPipe(sim, bytes_per_us, per_message_us, name=f"{name}.tx")
        self.rx = BandwidthPipe(sim, bytes_per_us, per_message_us, name=f"{name}.rx")
        self._services = {}

    def register_service(self, service, handler):
        """Route messages addressed to ``service`` to ``handler``."""
        if service in self._services:
            raise ValueError(f"{self.name}: service {service!r} already registered")
        self._services[service] = handler

    def handler_for(self, service):
        try:
            return self._services[service]
        except KeyError:
            raise KeyError(f"{self.name}: no service {service!r}") from None

    def __repr__(self):
        return f"<Host {self.name}>"


class Fabric:
    """The network connecting a set of hosts.

    ``path_latency_us(src, dst)`` gives one-way propagation plus switch
    latency; by default it is uniform, which matches the paper's single
    ToR/cluster/datacenter settings.
    """

    def __init__(self, sim, one_way_latency_us):
        self.sim = sim
        self.one_way_latency_us = one_way_latency_us
        self.hosts = {}
        self.messages_delivered = 0
        self.monitor = None
        if sim.utilization is not None:
            # Messages in flight (propagating or serializing into an RX
            # port) across the whole fabric — the network's queue depth.
            self.monitor = sim.utilization.depth_monitor(
                "fabric.inflight", kind="net")

    def add_host(self, host):
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        return host

    def host(self, name):
        return self.hosts[name]

    def path_latency_us(self, src_name, dst_name):
        """One-way latency between two hosts (0 for loopback)."""
        if src_name == dst_name:
            return 0.0
        return self.one_way_latency_us

    def send(self, src_name, dst_name, service, payload, size_bytes,
             span=NULL_SPAN):
        """Process helper: send a message; returns when handed to RX queue.

        Delivery to the service handler happens asynchronously (a
        spawned process), so the sender is released as soon as its TX
        port is free — matching how a NIC really behaves.

        ``span`` parents the transfer's wire/queue spans: TX
        serialization here, propagation and RX serialization in the
        delivery process (the span rides on the message).
        """
        sim = self.sim
        message = Message(src_name, dst_name, service, payload, size_bytes)
        message.send_time = sim._now
        message.span = span
        src = self.hosts[src_name]
        yield from src.tx.transmit(size_bytes, span=span)
        faults = sim.faults
        if faults is None:
            # The per-message process name only matters to forensics
            # (flight recorder, process-lifetime traces, deadlock
            # dumps); the hot path skips the f-string.
            if sim.flight is None and not sim.tracer.trace_processes:
                sim.spawn(self._deliver(message), name="deliver")
            else:
                sim.spawn(self._deliver(message),
                          name=f"deliver#{message.id}")
            return message
        # Fault point: the message has left the TX port (the sender paid
        # serialization either way); it may now vanish, fork, or lag.
        hp = self.sim.hostprof
        if hp is not None and not hp._timing:
            # Stride sampling: attribution is off for this event.
            hp = None
        if hp is not None:
            hp.enter("hooks.faults")
        fate = faults.on_message(message)
        if hp is not None:
            hp.exit()
        fl = self.sim.flight
        if fl is not None and (fate.drop or fate.duplicate
                               or fate.delay_us > 0.0):
            # Flight events for injected fates: recorded from the
            # sender's process, so they attribute to the operation the
            # message serves (requests and replies alike).
            logical = getattr(message.payload, "logical_id", None)
            if fate.drop:
                fl.record("fault.drop", msg=message.id, logical=logical,
                          dst=dst_name, service=service)
            else:
                if fate.duplicate:
                    fl.record("fault.dup", msg=message.id, logical=logical,
                              dst=dst_name, service=service)
                if fate.delay_us > 0.0:
                    fl.record("fault.delay", msg=message.id, logical=logical,
                              dst=dst_name, service=service,
                              delay_us=fate.delay_us)
        if fate.drop:
            return message
        self.sim.spawn(self._deliver(message, fate.delay_us),
                       name=f"deliver#{message.id}")
        if fate.duplicate:
            self.sim.spawn(self._deliver(message, fate.delay_us),
                           name=f"deliver#{message.id}.dup")
        return message

    def _deliver(self, message, extra_delay_us=0.0):
        sim = self.sim
        if self.monitor is not None:
            self.monitor.adjust(+1)
        if extra_delay_us > 0.0:
            yield sim.timeout(extra_delay_us)
        span = message.span
        if span.enabled:
            # Span protocol inlined (see BandwidthPipe.transmit).
            propagate_span = Span(span.tracer, "net.propagate", "wire",
                                  span, sim._now,
                                  {"src": message.src, "dst": message.dst})
            span.children.append(propagate_span)
            try:
                yield sim.timeout(
                    self.path_latency_us(message.src, message.dst))
            finally:
                propagate_span.end = sim._now
        else:
            yield sim.timeout(
                self.path_latency_us(message.src, message.dst))
        faults = sim.faults
        if faults is not None and (faults.is_down(message.dst)
                                   or faults.is_down(message.src)):
            # Crash-stop: a dead host neither receives nor has its
            # in-flight sends honoured (its NIC died with it).
            faults.note_crash_drop()
            fl = self.sim.flight
            if fl is not None:
                down = (message.dst if faults.is_down(message.dst)
                        else message.src)
                fl.record("fault.crash_drop", msg=message.id,
                          logical=getattr(message.payload, "logical_id",
                                          None),
                          host=down, dst=message.dst)
            if self.monitor is not None:
                self.monitor.adjust(-1)
            return
        dst = self.hosts[message.dst]
        yield from dst.rx.transmit(message.size_bytes, span=message.span)
        self.messages_delivered += 1
        if self.monitor is not None:
            self.monitor.adjust(-1)
        handler = dst.handler_for(message.service)
        handler(message)
