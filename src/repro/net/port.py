"""Request/reply matching over the fabric.

A :class:`RequestChannel` gives a client host an outbound RPC-style
port: it stamps each request with a reply address and an id, registers
a reply service on the client host, and returns the reply payload to
the waiting process. Servers answer with :func:`send_reply`.

Both the two-sided RPC layer and the one-sided verb/PRISM clients ride
on this; they differ only in what the *server side* does with the
request (CPU handler vs NIC engine) and in the client-side post and
completion overheads.
"""

from itertools import count

from repro.core.errors import PrismError
from repro.obs.trace import NULL_SPAN, Span
from repro.sim.events import Event, TimeoutExpired


#: Logical request ids: allocated once per *logical* request, stable
#: across fresh-id retransmission attempts, so retries are linkable to
#: the request they serve (flight forensics, retransmission-aware
#: chain counts). Module-global like ``Message`` ids: deterministic
#: within one interpreter run.
_logical_ids = count(1)


class Request:
    """Envelope body for a request expecting a reply."""

    __slots__ = ("id", "reply_host", "reply_service", "body", "span",
                 "logical_id")

    def __init__(self, id_, reply_host, reply_service, body):
        self.id = id_
        self.reply_host = reply_host
        self.reply_service = reply_service
        self.body = body
        #: the issuing operation's span; servers parent their
        #: processing spans under it so one trace crosses host borders
        self.span = NULL_SPAN
        #: stable id of the logical request this attempt serves; a
        #: retransmission gets a fresh ``id`` but the same ``logical_id``
        self.logical_id = None


class Reply:
    """Envelope body for a reply; ``ok=False`` carries an exception."""

    __slots__ = ("id", "body", "ok", "logical_id")

    def __init__(self, id_, body, ok=True):
        self.id = id_
        self.body = body
        self.ok = ok
        #: copied from the request by :func:`send_reply` so reply-path
        #: events (fault fates, stale completions) stay linkable
        self.logical_id = None


class RequestChannel:
    """Client-side outbound port with request/reply matching.

    ``post_overhead_us`` models the CPU cost of posting a work request
    (doorbell, WQE build); ``completion_overhead_us`` models polling the
    completion. These are the small constants that make a one-sided op
    cost ~2.5 µs end to end on a direct link.
    """

    _channel_ids = count(1)

    def __init__(self, sim, fabric, host_name,
                 post_overhead_us=0.25, completion_overhead_us=0.25):
        self.sim = sim
        self.fabric = fabric
        self.host_name = host_name
        self.post_overhead_us = post_overhead_us
        self.completion_overhead_us = completion_overhead_us
        self.reply_service = f"reply.{next(self._channel_ids)}"
        self._pending = {}
        self._ids = count(1)
        self.monitor = None
        self._retry_rng = None
        self.retransmissions = 0
        self.timeouts = 0
        #: connection id this channel's timeout/backoff view signals
        #: attribute to (set by PrismClient); falls back to the host
        #: name for channels outside the PRISM client path
        self.view_conn = None
        if sim.utilization is not None:
            # In-flight request depth per channel: evidence for the
            # bottleneck analyzer (deep client queues with an idle
            # server mean the clients, not the server, are the limit).
            self.monitor = sim.utilization.depth_monitor(
                f"{host_name}.{self.reply_service}", kind="channel")
        fabric.host(host_name).register_service(self.reply_service,
                                                self._on_reply)

    @property
    def outstanding(self):
        """Number of requests awaiting replies."""
        return len(self._pending)

    def _on_reply(self, message):
        reply = message.payload
        event = self._pending.pop(reply.id, None)
        fl = self.sim.flight
        if fl is not None:
            fl.record("req.reply" if event is not None else "req.stale",
                      logical=reply.logical_id, req=reply.id, ok=reply.ok)
        if event is None:
            return  # duplicate or cancelled; drop silently like a NIC would
        if self.monitor is not None:
            self.monitor.adjust(-1)
        if not reply.ok and self.sim.series is not None:
            self.sim.series.count("naks")
        if reply.ok:
            event.succeed(reply.body)
        else:
            event.fail(reply.body if isinstance(reply.body, BaseException)
                       else PrismError(str(reply.body)))

    def request(self, dst, service, body, request_size, timeout_us=None,
                span=NULL_SPAN, logical_id=None):
        """Process helper: send ``body`` and wait for the reply payload.

        ``logical_id`` names the logical request this attempt serves;
        :meth:`request_with_retry` passes the same one to every
        retransmission. Plain calls allocate a fresh one, so a logical
        id is always 1:1 with what the caller considers one request.
        """
        sim = self.sim
        request_id = next(self._ids)
        if logical_id is None:
            logical_id = next(_logical_ids)
        request = Request(request_id, self.host_name, self.reply_service, body)
        request.span = span
        request.logical_id = logical_id
        fl = sim.flight
        if fl is not None:
            fl.record("req.send", logical=logical_id, req=request_id,
                      dst=dst, service=service)
        reply_event = Event(sim)
        self._pending[request_id] = reply_event
        if self.monitor is not None:
            self.monitor.adjust(+1)
        if self.post_overhead_us:
            if span.enabled:
                post_span = Span(span.tracer, "client.post", "cpu", span,
                                 sim._now, {})
                span.children.append(post_span)
                try:
                    yield sim.timeout(self.post_overhead_us)
                finally:
                    post_span.end = sim._now
            else:
                yield sim.timeout(self.post_overhead_us)
        yield from self.fabric.send(self.host_name, dst, service, request,
                                    request_size, span=span)
        if timeout_us is None:
            result = yield reply_event
        else:
            winner = yield sim.any_of(
                [reply_event, sim.timeout(timeout_us)])
            index, value = winner
            if index == 1:
                if (self._pending.pop(request_id, None) is not None
                        and self.monitor is not None):
                    self.monitor.adjust(-1)
                if fl is not None:
                    fl.record("req.timeout", logical=logical_id,
                              req=request_id, dst=dst, timeout_us=timeout_us)
                if sim.series is not None:
                    sim.series.count("timeouts")
                if sim.views is not None:
                    sim.views.note_timeout(
                        self.view_conn if self.view_conn is not None
                        else self.host_name)
                raise TimeoutExpired(
                    timeout_us, what=f"request {request_id} to {dst}/{service}")
            result = value
        if self.completion_overhead_us:
            if span.enabled:
                completion_span = Span(span.tracer, "client.completion",
                                       "cpu", span, sim._now, {})
                span.children.append(completion_span)
                try:
                    yield sim.timeout(self.completion_overhead_us)
                finally:
                    completion_span.end = sim._now
            else:
                yield sim.timeout(self.completion_overhead_us)
        return result

    def request_with_retry(self, dst, service, body, request_size, policy,
                           span=NULL_SPAN):
        """Process helper: ``request`` with ack timeout + retransmission.

        Each attempt waits ``policy.timeout_us`` for the reply; on
        expiry the request is retransmitted (a fresh id — a late reply
        to the old id is dropped by :meth:`_on_reply` like a NIC drops
        a stale completion) after a capped exponential backoff. A NAK
        (``ok=False`` reply) is NOT retried here: it is a delivered
        negative answer, and propagates immediately. After
        ``policy.max_retries`` retransmissions the last
        :class:`TimeoutExpired` propagates to the caller.

        Only safe for idempotent request bodies: at-least-once
        delivery means the server may execute a retransmitted request
        twice. Callers gate that (see ``PrismClient.execute``).

        Backoff jitter draws from a per-channel substream of the fault
        plan's seed, so faulty runs replay exactly.

        All attempts share one ``logical_id``, so telemetry (flight
        events, retransmission-aware chain counts) can tell "one
        logical request, retried" from "several requests".
        """
        faults = self.sim.faults
        fl = self.sim.flight
        if faults is not None and self._retry_rng is None:
            self._retry_rng = faults.retry_stream()
        logical_id = next(_logical_ids)
        attempt = 0
        while True:
            try:
                result = yield from self.request(
                    dst, service, body, request_size,
                    timeout_us=policy.timeout_us, span=span,
                    logical_id=logical_id)
                return result
            except TimeoutExpired:
                self.timeouts += 1
                if faults is not None:
                    faults.note_timeout()
                if attempt >= policy.max_retries:
                    if faults is not None:
                        faults.note_retries_exhausted()
                    if fl is not None:
                        fl.record("req.exhausted", logical=logical_id,
                                  attempts=attempt + 1)
                    if self.sim.series is not None:
                        self.sim.series.count("retries_exhausted")
                    raise
                backoff = policy.backoff_us(attempt, self._retry_rng)
                attempt += 1
                self.retransmissions += 1
                if faults is not None:
                    faults.note_retransmit()
                if self.sim.series is not None:
                    self.sim.series.count("retransmissions")
                if self.sim.views is not None:
                    self.sim.views.note_backoff(
                        self.view_conn if self.view_conn is not None
                        else self.host_name)
                if fl is not None:
                    fl.record("req.backoff", logical=logical_id,
                              attempt=attempt, backoff_us=backoff)
                with span.child("client.backoff", phase="queue",
                                attempt=attempt):
                    yield self.sim.timeout(backoff)


def send_reply(fabric, server_host, request, body, size_bytes, ok=True,
               span=NULL_SPAN):
    """Process helper used by servers to answer a :class:`Request`.

    Pass ``span=request.span`` so the reply's wire spans land in the
    issuing operation's trace (as siblings of the server-side spans,
    which keeps each phase's self-time tiling the operation exactly).
    """
    reply = Reply(request.id, body, ok=ok)
    reply.logical_id = request.logical_id
    yield from fabric.send(server_host, request.reply_host,
                           request.reply_service, reply, size_bytes,
                           span=span)
