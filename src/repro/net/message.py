"""Network message envelope.

A message is routed by ``(dst_host, dst_service)``. ``payload`` is any
Python object (operation descriptors, RPC frames); ``size_bytes`` is the
on-wire size used for serialization/bandwidth accounting, so the object
graph never needs to be byte-serialized to get correct timing.
"""

from itertools import count

from repro.obs.trace import NULL_SPAN

_ids = count(1)

ETHERNET_HEADER_BYTES = 42  # Ethernet + IP + UDP framing
RDMA_HEADER_BYTES = 30      # IB BTH + RETH-style transport header


class Message:
    """An envelope travelling through the fabric."""

    __slots__ = ("id", "src", "dst", "service", "payload", "size_bytes",
                 "send_time", "span")

    def __init__(self, src, dst, service, payload, size_bytes):
        self.id = next(_ids)
        self.src = src
        self.dst = dst
        self.service = service
        self.payload = payload
        self.size_bytes = size_bytes
        self.send_time = None
        #: tracing parent for the delivery-side (propagation + RX) spans
        self.span = NULL_SPAN

    def __repr__(self):
        return (f"<Message #{self.id} {self.src}->{self.dst}/{self.service} "
                f"{self.size_bytes}B>")
