"""Simulated datacenter network: hosts, links, switches, topologies."""

from repro.net.fabric import Fabric, Host
from repro.net.message import Message
from repro.net.topology import (
    CLUSTER,
    DATACENTER,
    DIRECT,
    RACK,
    NetworkProfile,
    make_fabric,
)

__all__ = [
    "CLUSTER",
    "DATACENTER",
    "DIRECT",
    "Fabric",
    "Host",
    "Message",
    "NetworkProfile",
    "RACK",
    "make_fabric",
]
