"""The live fault injector: a bound :class:`FaultPlan` plus counters.

Installed with ``sim.set_faults(plan)`` *before* system construction —
the same contract as the observability collectors — so the fabric,
servers, and free lists self-register. With no injector installed every
hook in the data path is a single ``is None`` check and a run's timing
is bit-identical to an uninjected one.

Determinism: every stochastic choice draws from a named substream of
``SeededRng(plan.seed)``; message fate draws happen in fabric send
order (itself deterministic), retry backoff jitter draws from one
stream per request channel. Same plan + same workload seed ⇒ the same
drops, the same retransmissions, the same ``RunResult``.
"""

from repro.sim.rng import SeededRng


class MessageFate:
    """The injector's verdict on one fabric message."""

    __slots__ = ("drop", "duplicate", "delay_us")

    def __init__(self, drop=False, duplicate=False, delay_us=0.0):
        self.drop = drop
        self.duplicate = duplicate
        self.delay_us = delay_us


#: shared "nothing happens" verdict — the common case under low rates
_NO_FATE = MessageFate()

_COUNTER_NAMES = (
    "messages_dropped", "messages_duplicated", "messages_delayed",
    "crash_drops", "crashes", "recoveries", "starved_buffers",
    "restored_buffers", "retransmissions", "timeouts", "retries_exhausted",
    "recycles_abandoned",
)


class FaultInjector:
    """Executes a :class:`~repro.faults.plan.FaultPlan` on a simulator."""

    def __init__(self, plan):
        self.plan = plan
        self.sim = None
        self.counters = {name: 0 for name in _COUNTER_NAMES}
        self.delay_injected_us = 0.0
        self._down = set()
        self._servers = {}
        self._rng = None
        self._net = None
        self._retry_streams = 0

    def bind(self, sim):
        """Attach to ``sim``: seed the streams, schedule the crashes."""
        self.sim = sim
        self._rng = SeededRng(self.plan.seed)
        self._net = self._rng.stream("faults.net")
        for crash in self.plan.crashes:
            sim.call_at(crash.at_us, self._make_crash(crash))
            if crash.recover_at_us is not None:
                sim.call_at(crash.recover_at_us, self._make_recovery(crash))
        return self

    # -- registration (called during system construction) -----------------

    def register_server(self, host_name, server):
        """A crashable service on ``host_name`` (e.g. a PrismServer).

        The injector calls ``server.fail()`` / ``server.recover()``
        around the host's scheduled crash window so server-side
        counters (requests dropped while dead) stay truthful; the
        fabric-level down check is what actually kills the messages.
        """
        self._servers.setdefault(host_name, []).append(server)
        if host_name in self._down and hasattr(server, "fail"):
            server.fail()

    def register_freelist(self, server, freelist_id, qp):
        """A free list eligible for starvation pressure.

        With ``plan.starve == 0`` this is a no-op (no process spawned,
        timing untouched). Otherwise a pressure process pops the
        configured fraction of buffers at ``starve_at_us`` and — when
        ``starve_hold_us > 0`` — re-posts them through the server's
        quiescence gate after the hold.
        """
        if self.plan.starve <= 0.0:
            return
        self.sim.spawn(self._starve(server, freelist_id, qp),
                       name=f"faults.starve[{qp.name}]")

    # -- net side (called by Fabric) ---------------------------------------

    def is_down(self, host_name):
        """True while ``host_name`` is crash-stopped."""
        return host_name in self._down

    def on_message(self, message):
        """Draw this message's fate; one verdict per fabric send."""
        plan = self.plan
        drop = plan.drop > 0.0 and self._net.random() < plan.drop
        duplicate = (plan.duplicate > 0.0
                     and self._net.random() < plan.duplicate)
        delay_us = (self._net.uniform(0.0, plan.jitter_us)
                    if plan.jitter_us > 0.0 else 0.0)
        series = self.sim.series
        if drop:
            self.counters["messages_dropped"] += 1
            if series is not None:
                series.count("drops")
            return MessageFate(drop=True)
        if not duplicate and delay_us == 0.0:
            return _NO_FATE
        if duplicate:
            self.counters["messages_duplicated"] += 1
            if series is not None:
                series.count("dups")
        if delay_us > 0.0:
            self.counters["messages_delayed"] += 1
            self.delay_injected_us += delay_us
            if series is not None:
                series.count("delays")
        return MessageFate(duplicate=duplicate, delay_us=delay_us)

    def note_crash_drop(self):
        """A message arrived at (or left) a crash-stopped host."""
        self.counters["crash_drops"] += 1
        if self.sim.series is not None:
            self.sim.series.count("crash_drops")

    # -- recovery-side accounting ------------------------------------------

    def retry_stream(self, label=None):
        """A fresh substream for retry backoff jitter.

        Streams are numbered in allocation order, which is itself
        deterministic for a given run — channel names are NOT used
        because they embed process-global counters that differ between
        runs in the same interpreter.
        """
        n = self._retry_streams
        self._retry_streams += 1
        return self._rng.stream(f"faults.retry.{n}")

    def note_timeout(self):
        self.counters["timeouts"] += 1

    def note_retransmit(self):
        self.counters["retransmissions"] += 1

    def note_retries_exhausted(self):
        self.counters["retries_exhausted"] += 1

    def note_recycle_abandoned(self, n_buffers):
        self.counters["recycles_abandoned"] += n_buffers

    # -- schedules ----------------------------------------------------------

    def _make_crash(self, crash):
        def execute():
            self._down.add(crash.host)
            self.counters["crashes"] += 1
            # Crash schedules run outside any process, so the flight
            # event is global (op=None) — forensics turns crash/recover
            # pairs into down windows and overlaps them with requests.
            if self.sim.flight is not None:
                self.sim.flight.record("fault.crash", host=crash.host)
            for server in self._servers.get(crash.host, ()):
                if hasattr(server, "fail"):
                    server.fail()
        return execute

    def _make_recovery(self, crash):
        def execute():
            self._down.discard(crash.host)
            self.counters["recoveries"] += 1
            if self.sim.flight is not None:
                self.sim.flight.record("fault.recover", host=crash.host)
            for server in self._servers.get(crash.host, ()):
                if hasattr(server, "recover"):
                    server.recover()
        return execute

    def _starve(self, server, freelist_id, qp):
        plan = self.plan
        yield self.sim.sleep_until(plan.starve_at_us)
        take = int(len(qp) * plan.starve)
        if take <= 0:
            return
        withheld = [qp.pop() for _ in range(take)]
        self.counters["starved_buffers"] += take
        if self.sim.flight is not None:
            self.sim.flight.record("fault.starve", freelist=freelist_id,
                                   name=qp.name, taken=take)
        if plan.starve_hold_us <= 0.0:
            return  # withheld for the rest of the run
        yield self.sim.timeout(plan.starve_hold_us)
        yield from server.post_buffers(freelist_id, withheld)
        self.counters["restored_buffers"] += take
        if self.sim.flight is not None:
            self.sim.flight.record("fault.restore", freelist=freelist_id,
                                   name=qp.name, restored=take)

    # -- reporting ----------------------------------------------------------

    def report(self):
        """Plain-dict snapshot for the CLI/JSON goodput report."""
        report = dict(self.counters)
        report["delay_injected_us"] = round(self.delay_injected_us, 3)
        report["hosts_down"] = sorted(self._down)
        report["plan"] = {
            "seed": self.plan.seed,
            "drop": self.plan.drop,
            "duplicate": self.plan.duplicate,
            "jitter_us": self.plan.jitter_us,
            "crashes": [
                {"host": c.host, "at_us": c.at_us,
                 "recover_at_us": c.recover_at_us}
                for c in self.plan.crashes],
            "starve": self.plan.starve,
            "starve_at_us": self.plan.starve_at_us,
            "starve_hold_us": self.plan.starve_hold_us,
            "retry": {
                "timeout_us": self.plan.retry.timeout_us,
                "max_retries": self.plan.retry.max_retries,
                "backoff_base_us": self.plan.retry.backoff_base_us,
                "backoff_max_us": self.plan.retry.backoff_max_us,
            },
        }
        return report

    def absorb_into(self, registry):
        """Feed the counters into a :class:`repro.obs.MetricsRegistry`."""
        for name, value in self.counters.items():
            registry.counter(f"faults.{name}").absorb(value)
        registry.gauge("faults.delay_injected_us").set(self.delay_injected_us)
        registry.gauge("faults.hosts_down").set(len(self._down))
        return registry
