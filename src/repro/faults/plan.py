"""Fault plans: what to break, when, and how hard.

A :class:`FaultPlan` is a *declarative, seeded* description of the
failures a run must survive: message loss/duplication/delay-jitter on
the fabric, crash-stop (and optional recovery) of hosts, and free-list
starvation pressure. Installed via ``sim.set_faults(plan)`` it drives a
:class:`~repro.faults.injector.FaultInjector`; every stochastic choice
is drawn from named :class:`~repro.sim.rng.SeededRng` substreams of
``plan.seed``, so a faulty run replays bit-identically from its seed.

The plan also carries the *recovery* side's knobs: the
:class:`RetryPolicy` that clients fall back to when a fault plan is
installed (ack timeout, capped exponential backoff, retransmission
budget).

:func:`parse_faults` turns the bench CLI's compact spec —
``--faults seed=3,drop=0.01,dup=0.001,jitter=2,crash=replica0@500+300``
— into a plan.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CrashEvent:
    """Crash-stop ``host`` at ``at_us``; recover at ``recover_at_us``.

    ``recover_at_us=None`` is a permanent crash. Memory contents
    survive recovery (fail-recover with stable state, the model the
    paper's ABD variant assumes); protocol-level catch-up is the
    application's business.
    """

    host: str
    at_us: float
    recover_at_us: float = None

    def __post_init__(self):
        if self.at_us < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at_us}")
        if self.recover_at_us is not None and self.recover_at_us <= self.at_us:
            raise ValueError(
                f"{self.host}: recovery at {self.recover_at_us} must come "
                f"after the crash at {self.at_us}")


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retransmission knobs for the recovery machinery.

    ``timeout_us`` is the per-attempt ack timeout; a lost request or
    reply surfaces as :class:`~repro.sim.events.TimeoutExpired` after
    this long. Retransmissions back off exponentially from
    ``backoff_base_us`` doubling per attempt, capped at
    ``backoff_max_us``, with uniform jitter drawn from the caller's
    seeded stream (no jitter without a stream — still deterministic).
    A NAK is *not* retried here: it is a delivered negative answer,
    not a loss, and reaches the application immediately.
    """

    timeout_us: float = 75.0
    max_retries: int = 8
    backoff_base_us: float = 2.0
    backoff_max_us: float = 256.0

    def backoff_us(self, attempt, rng=None):
        """Backoff before retransmission number ``attempt`` (0-based)."""
        ceiling = min(self.backoff_max_us,
                      self.backoff_base_us * (2 ** min(attempt, 16)))
        if rng is None:
            return ceiling
        return rng.uniform(self.backoff_base_us / 2, ceiling)


@dataclass(frozen=True)
class FaultPlan:
    """Everything a run should suffer, seeded for exact replay.

    All rates default to zero and the crash/starvation schedules to
    empty, so ``FaultPlan(seed=N)`` is an installed-but-quiet plan —
    useful for verifying the off-path is bit-identical.
    """

    seed: int = 0
    #: probability a message vanishes in flight (after TX serialization)
    drop: float = 0.0
    #: probability a message is delivered twice
    duplicate: float = 0.0
    #: max extra one-way delay, uniform in [0, jitter_us]
    jitter_us: float = 0.0
    #: crash-stop schedule
    crashes: tuple = ()
    #: fraction of each free list to withhold (starvation pressure)
    starve: float = 0.0
    #: when to apply the starvation pressure
    starve_at_us: float = 0.0
    #: how long to withhold; 0 withholds for the rest of the run
    starve_hold_us: float = 0.0
    #: recovery knobs clients adopt while this plan is installed
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        for name in ("drop", "duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if not 0.0 <= self.starve <= 1.0:
            raise ValueError(f"starve must be in [0, 1], got {self.starve}")
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be >= 0, got {self.jitter_us}")
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def quiet(self):
        """True when the plan injects nothing (pure recovery knobs)."""
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.jitter_us == 0.0 and not self.crashes
                and self.starve == 0.0)


def _parse_crash(spec):
    """``host@at`` or ``host@at+down_for`` -> :class:`CrashEvent`."""
    host, sep, when = spec.partition("@")
    if not sep or not host:
        raise ValueError(
            f"crash spec {spec!r} must be host@at_us or host@at_us+down_us")
    at_text, sep, down_text = when.partition("+")
    at_us = float(at_text)
    recover = at_us + float(down_text) if sep else None
    return CrashEvent(host=host, at_us=at_us, recover_at_us=recover)


def parse_faults(text):
    """Parse the CLI spec ``key=value,...`` into a :class:`FaultPlan`.

    Keys: ``seed`` ``drop`` ``dup`` ``jitter`` (µs) ``crash`` (repeatable,
    ``host@at_us`` or ``host@at_us+down_us``) ``starve`` ``starve_at``
    ``starve_hold`` (µs) and the retry knobs ``timeout`` (µs)
    ``retries`` ``backoff`` ``backoff_max`` (µs). Example::

        seed=3,drop=0.01,dup=0.001,jitter=2,crash=replica0@500+300
    """
    plan = {"crashes": []}
    retry = {}
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        key, sep, value = piece.partition("=")
        if not sep:
            raise ValueError(f"fault spec piece {piece!r} is not key=value")
        if key == "seed":
            plan["seed"] = int(value)
        elif key == "drop":
            plan["drop"] = float(value)
        elif key in ("dup", "duplicate"):
            plan["duplicate"] = float(value)
        elif key == "jitter":
            plan["jitter_us"] = float(value)
        elif key == "crash":
            plan["crashes"].append(_parse_crash(value))
        elif key == "starve":
            plan["starve"] = float(value)
        elif key == "starve_at":
            plan["starve_at_us"] = float(value)
        elif key == "starve_hold":
            plan["starve_hold_us"] = float(value)
        elif key == "timeout":
            retry["timeout_us"] = float(value)
        elif key == "retries":
            retry["max_retries"] = int(value)
        elif key == "backoff":
            retry["backoff_base_us"] = float(value)
        elif key == "backoff_max":
            retry["backoff_max_us"] = float(value)
        else:
            raise ValueError(f"unknown fault spec key {key!r}")
    if retry:
        plan["retry"] = RetryPolicy(**retry)
    return FaultPlan(**plan)
