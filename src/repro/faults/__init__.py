"""Deterministic fault injection and recovery for the PRISM reproduction.

Two halves:

- *Injection* (:class:`FaultPlan` + :class:`FaultInjector`): seeded
  message drop/duplication/jitter on the fabric, crash-stop/recovery of
  hosts, free-list starvation pressure. Installed before system
  construction via ``sim.set_faults(plan)``; off by default and
  bit-identical-when-off.
- *Recovery*: the :class:`RetryPolicy` knobs that the request channels
  and PRISM clients adopt while a plan is installed — ack timeouts,
  capped exponential backoff retransmission, idempotency-aware retry.

See ``docs/faults.md`` for the plan format and per-app recovery
semantics.
"""

from repro.faults.injector import FaultInjector, MessageFate
from repro.faults.plan import CrashEvent, FaultPlan, RetryPolicy, parse_faults

__all__ = [
    "CrashEvent",
    "FaultInjector",
    "FaultPlan",
    "MessageFate",
    "RetryPolicy",
    "parse_faults",
]
