"""Key-value stores: PRISM-KV (§6) and the Pilaf baseline."""

from repro.apps.kv.layout import KvLayout
from repro.apps.kv.pilaf import PilafClient, PilafServer
from repro.apps.kv.prism_kv import PrismKvClient, PrismKvServer

__all__ = [
    "KvLayout",
    "PilafClient",
    "PilafServer",
    "PrismKvClient",
    "PrismKvServer",
]
