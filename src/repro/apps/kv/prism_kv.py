"""PRISM-KV: a key-value store entirely over one-sided PRISM ops (§6.1).

GET: one *bounded indirect READ* per probe — the slot's ⟨ptr, bound⟩
struct is dereferenced by the NIC, returning the entry (version, key,
value) in a single round trip.

PUT: one probe READ to find the slot and learn the current version,
then a single chained request::

    WRITE    new_ver            -> tmp          (scratch, on-NIC SRAM)
    WRITE    new_bound          -> tmp + 16
    ALLOCATE entry bytes        -> redirect ptr to tmp + 8
    CAS      slot, data=*tmp, 24-byte operand, CAS_GT on the version
             field, conditional

If the CAS misses, a concurrent client installed a newer version and
the PUT is superseded (last-writer-wins by tag, as in the paper). The
old buffer is retired to the server's recycler daemon asynchronously.
"""

from repro.apps.common import bump_tag, make_tag, note_key
from repro.apps.kv.layout import (
    KvLayout,
    SLOT_SIZE,
    SLOT_VER_MASK,
)
from repro.core.errors import AccessViolation
from repro.core.ops import AllocateOp, CasMode, CasOp, ReadOp, WriteOp
from repro.hw.layout import pack_uint
from repro.obs.trace import NULL_SPAN
from repro.prism.client import PrismClient
from repro.prism.engine import OpStatus
from repro.prism.recycler import RecyclerClient, RecyclerDaemon
from repro.prism.server import PrismServer
from repro.rpc.erpc import RpcClient, RpcServer
from repro.sim.rng import SeededRng


def fnv1a_64(data):
    """FNV-1a: the general (collision-prone) hash option."""
    value = 0xCBF29CE484222325
    for byte in data:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def _second_hash(data):
    """An independent second hash for two-choice placement (the
    cuckoo-style alternative to linear probing that Pilaf's paper — and
    §6's description — mention). FNV over the reversed bytes with a
    different offset basis."""
    value = 0x84222325CBF29CE4
    for byte in reversed(data):
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def candidate_slots(key_bytes, n_slots, hash_fn):
    """The probe sequence for a key under the chosen hash scheme.

    * ``identity`` — the eval's collisionless hash: one slot.
    * ``fnv`` — linear probing from one hash (full table worst case).
    * ``two-choice`` — two independent buckets, checked in order: each
      key has exactly two possible homes, so GET needs at most two
      probes (one indirect READ each).
    """
    if hash_fn == "identity":
        yield int.from_bytes(key_bytes, "little") % n_slots
    elif hash_fn == "fnv":
        start = fnv1a_64(key_bytes) % n_slots
        for offset in range(n_slots):
            yield (start + offset) % n_slots
    elif hash_fn == "two-choice":
        first = fnv1a_64(key_bytes) % n_slots
        yield first
        second = _second_hash(key_bytes) % n_slots
        if second != first:
            yield second
    else:
        raise ValueError(f"unknown hash_fn {hash_fn!r}")


class PrismKvServer:
    """Server side: memory layout, free lists, recycler daemon.

    With ``size_classes=True`` the store registers one power-of-two
    free list per buffer class (§3.2) instead of a single
    max-entry-sized list; clients pick the class their entry fits,
    bounding internal fragmentation at 2x.
    """

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 n_keys=100_000, max_value_bytes=512, spare_buffers=4096,
                 slots_per_key=1, hash_fn="identity", rpc_config=None,
                 recycler_batch=64, backend_kwargs=None,
                 size_classes=False, min_size_class=64):
        from repro.prism.allocator import SizeClassAllocator, size_class_for
        self.sim = sim
        self.n_keys = n_keys
        self.hash_fn = hash_fn
        layout_probe = KvLayout(0, n_keys * slots_per_key,
                                max_value_bytes=max_value_bytes)
        buffer_bytes = layout_probe.buffer_bytes
        if size_classes:
            # Worst case: everything in the biggest class, plus the
            # smaller classes' pools.
            pool_estimate = 3 * (n_keys + spare_buffers) * buffer_bytes
        else:
            pool_estimate = (n_keys + spare_buffers) * buffer_bytes
        memory_bytes = layout_probe.table_bytes + pool_estimate + (1 << 20)
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 backend_kwargs=backend_kwargs)
        table_base, self.table_rkey = self.prism.add_region(
            layout_probe.table_bytes)
        self.layout = KvLayout(table_base, n_keys * slots_per_key,
                               max_value_bytes=max_value_bytes)
        if size_classes:
            max_class = size_class_for(buffer_bytes, min_size_class)
            self.allocator = SizeClassAllocator.install(
                self.prism, min_class=min_size_class, max_class=max_class,
                buffers_per_class=n_keys + spare_buffers)
            self.freelist_id = self.allocator.freelist_for(buffer_bytes)
            self.buffer_rkey = self.allocator.rkey_for(buffer_bytes)
        else:
            self.allocator = None
            self.freelist_id, self.buffer_rkey = self.prism.create_freelist(
                buffer_bytes, n_keys + spare_buffers, name="kv-buffers")
        self.rpc = RpcServer(sim, fabric, host_name, config=rpc_config)
        self.recycler = RecyclerDaemon(sim, self.prism, self.rpc,
                                       batch_size=recycler_batch)

    def freelist_for_entry(self, entry_bytes):
        """(freelist_id, rkey) for an entry of ``entry_bytes``."""
        if self.allocator is None:
            return self.freelist_id, self.buffer_rkey
        return (self.allocator.freelist_for(entry_bytes),
                self.allocator.rkey_for(entry_bytes))

    @property
    def host_name(self):
        return self.prism.host_name

    def slot_index(self, key_bytes):
        if self.hash_fn == "identity":
            return int.from_bytes(key_bytes, "little") % self.layout.n_slots
        return fnv1a_64(key_bytes) % self.layout.n_slots

    # -- bulk load (server CPU, setup time; no simulated traffic) ---------

    def candidates(self, key_bytes):
        """The probe sequence for ``key_bytes`` under this table's hash."""
        return candidate_slots(key_bytes, self.layout.n_slots, self.hash_fn)

    def load(self, key, value, client_id=0):
        """Install ``key -> value`` directly, as the paper's loader does."""
        key_bytes = KvLayout.encode_key(key)
        space = self.prism.space
        for slot_index in self.candidates(key_bytes):
            slot_addr = self.layout.slot_addr(slot_index)
            ver, ptr, bound = KvLayout.unpack_slot(
                space.read(slot_addr, SLOT_SIZE))
            if ptr == 0:
                break
            stored = space.read(ptr, self.layout.probe_read_len())
            if KvLayout.entry_key(stored) == key_bytes:
                break
        else:
            raise RuntimeError("hash table full")
        new_ver = bump_tag(ver, client_id)
        entry = KvLayout.pack_entry(new_ver, key_bytes, value)
        needs_new_buffer = ptr == 0 or (
            self.allocator is not None
            and self.allocator.class_for(len(entry))
            != self.allocator.class_for(bound))
        if needs_new_buffer:
            freelist_id, _rkey = self.freelist_for_entry(len(entry))
            ptr = self.prism.freelist(freelist_id).pop()
        space.write(ptr, entry)
        space.write(slot_addr, KvLayout.pack_slot(new_ver, ptr, len(entry)))


class PrismKvClient:
    """Client side: GET/PUT via one-sided PRISM operations only."""

    def __init__(self, sim, fabric, client_name, server, max_probes=None,
                 recycle_batch=16):
        self.sim = sim
        self.server = server
        self.layout = server.layout
        self.client = PrismClient(sim, fabric, client_name, server.prism)
        self.client_id = self.client.connection.id
        if max_probes is None:
            max_probes = {"identity": 1, "two-choice": 2}.get(
                server.hash_fn, 64)
        self.max_probes = max_probes
        rpc_client = RpcClient(sim, fabric, client_name,
                               channel=self.client.channel)
        self.recycler = RecyclerClient(rpc_client, server.host_name,
                                       batch_size=recycle_batch)
        self.gets = 0
        self.puts = 0
        self.put_superseded = 0

    # -- operations ---------------------------------------------------------

    def get(self, key, span=NULL_SPAN):
        """Process helper: returns the value bytes, or None if absent."""
        note_key(self.sim, "prism-kv", "get", key)
        entry = yield from self._probe(key, self.layout.full_read_len(),
                                       span=span)
        self.gets += 1
        if entry is None:
            return None
        _ver, _key, value = KvLayout.unpack_entry(entry[1])
        return value

    def put(self, key, value, span=NULL_SPAN):
        """Process helper: installs ``key -> value``; returns an info dict."""
        note_key(self.sim, "prism-kv", "put", key)
        key_bytes = KvLayout.encode_key(key)
        probe = yield from self._probe(key, self.layout.probe_read_len(),
                                       stop_at_empty=True, span=span)
        if probe is None:
            raise RuntimeError("hash table full (no empty slot found)")
        slot_addr, entry = probe
        old_ver = KvLayout.entry_ver(entry) if entry is not None else 0
        new_ver = bump_tag(old_ver, self.client_id)
        payload = KvLayout.pack_entry(new_ver, key_bytes, value)
        freelist_id, buffer_rkey = self.server.freelist_for_entry(
            len(payload))
        tmp = self.client.sram_slot
        result = yield from self.client.execute(
            WriteOp(addr=tmp, data=pack_uint(new_ver, 8),
                    rkey=self.server.prism.sram_rkey),
            WriteOp(addr=tmp + 16, data=pack_uint(len(payload), 8),
                    rkey=self.server.prism.sram_rkey),
            AllocateOp(freelist=freelist_id, data=payload,
                       rkey=buffer_rkey, redirect_to=tmp + 8),
            CasOp(target=slot_addr, data=tmp.to_bytes(8, "little"),
                  rkey=self.server.table_rkey, mode=CasMode.GT,
                  compare_mask=SLOT_VER_MASK, data_indirect=True,
                  operand_width=SLOT_SIZE, conditional=True),
            span=span)
        result.raise_on_nak()
        self.puts += 1
        cas = result[3]
        if cas.status is OpStatus.OK:
            _old_ver, old_ptr, old_bound = KvLayout.unpack_slot(cas.value)
            if old_ptr:
                self._retire(old_ptr, old_bound)
            return {"superseded": False}
        # CAS miss: a concurrent client installed a newer version; our
        # freshly allocated buffer is the one to retire.
        self.put_superseded += 1
        new_ptr = int.from_bytes(
            self.server.prism.space.read(tmp + 8, 8), "little")
        self._retire(new_ptr, len(payload))
        return {"superseded": True}

    def execute(self, op, span=NULL_SPAN):
        """Driver adapter for :class:`~repro.workload.ycsb.KvOp`."""
        if op.kind == "get":
            yield from self.get(op.key, span=span)
        else:
            yield from self.put(op.key, op.value, span=span)
        return None

    # -- internals ---------------------------------------------------------

    def _probe(self, key, read_len, stop_at_empty=False, span=NULL_SPAN):
        """Probe for ``key``.

        For plain lookups returns ``(slot_addr, entry_bytes)`` or None
        when absent. With ``stop_at_empty`` (PUT path) an empty slot is
        claimable: returns ``(slot_addr, None)``.
        """
        key_bytes = KvLayout.encode_key(key)
        for probe_count, slot_index in enumerate(
                self.server.candidates(key_bytes)):
            if probe_count >= self.max_probes:
                break
            slot_addr = self.layout.slot_addr(slot_index)
            result = yield from self.client.execute(
                ReadOp(addr=slot_addr + 8, length=read_len,
                       rkey=self.server.table_rkey,
                       indirect=True, bounded=True),
                span=span)
            outcome = result[0]
            if outcome.status is OpStatus.NAK:
                if isinstance(outcome.error, AccessViolation):
                    # NULL pointer dereference: the slot is empty.
                    return (slot_addr, None) if stop_at_empty else None
                raise outcome.error
            entry = outcome.value
            if KvLayout.entry_key(entry) == key_bytes:
                return slot_addr, entry
        return None

    def _retire(self, buffer_addr, entry_bytes):
        """Return a buffer to the free list it was allocated from (with
        size classes, the entry length names the class)."""
        freelist_id, _rkey = self.server.freelist_for_entry(entry_bytes)
        flush = self.recycler.retire(freelist_id, buffer_addr)
        if flush is not None:
            # Asynchronous notification (§6.1) — off the latency path.
            self.sim.spawn(flush, name="kv-retire")
