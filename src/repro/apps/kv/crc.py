"""Checksums for Pilaf's self-verifying data structures.

Pilaf (Mitchell et al., ATC '13) guards every root and extent with a
CRC so clients can detect racing server-side writes. We compute real
CRC32s (so tests can corrupt bytes and watch verification fail) and
charge the client the paper's measured verification cost: "the other
2 µs are CRC calculations" for a slot + 512 B extent pair (§6.2).
"""

import zlib

#: fixed per-check overhead (µs) — table lookup setup, branch
CRC_BASE_US = 0.15
#: per-byte cost (µs) — calibrated so 16 B + 536 B of checks ≈ 2 µs
CRC_PER_BYTE_US = 0.0033


def crc64(data):
    """CRC of ``data`` zero-extended to 8 bytes (stored in layouts)."""
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


def crc_bytes(data):
    return crc64(data).to_bytes(8, "little")


def crc_time_us(nbytes):
    """Client CPU time to verify a CRC over ``nbytes``."""
    return CRC_BASE_US + nbytes * CRC_PER_BYTE_US


def verify(data, stored_crc_bytes):
    """True if ``data`` matches the stored checksum."""
    return crc_bytes(data) == bytes(stored_crc_bytes)
