"""Pilaf baseline (Mitchell et al., ATC '13), as described in §2.1/§6.

GETs are one-sided: READ the hash-table slot (pointer + CRC), then
READ the extent it points to (entry + CRC), verifying both checksums
client-side — two round trips plus ~2 µs of CRC work. PUTs are
two-sided RPCs executed by the server CPU.

Runs over either the hardware RDMA NIC backend or the software RDMA
stack, giving the paper's "Pilaf" and "Pilaf (software RDMA)" curves.

Layout. Hash table slot (16 B): ``ptr u64 | crc u64`` (crc over the
pointer bytes). Extent (fixed stride): ``klen u16 | vlen u32 | pad u16
| key[max] | value[max] | crc u64`` with the CRC over the preceding
fixed span, so a GET's second READ is one fixed-size transfer.
"""

from repro.apps.common import note_key
from repro.apps.kv.crc import crc_bytes, crc_time_us, verify
from repro.hw.layout import pack_uint, unpack_uint
from repro.obs.trace import NULL_SPAN
from repro.prism.client import PrismClient
from repro.prism.server import PrismServer
from repro.rpc.erpc import RpcClient, RpcServer

SLOT_SIZE = 16


class PilafLayout:
    """Addresses and codecs for Pilaf's table and extents."""

    def __init__(self, table_base, extents_base, n_slots, max_key_bytes=8,
                 max_value_bytes=512):
        self.table_base = table_base
        self.extents_base = extents_base
        self.n_slots = n_slots
        self.max_key_bytes = max_key_bytes
        self.max_value_bytes = max_value_bytes

    @property
    def entry_stride(self):
        return 8 + self.max_key_bytes + self.max_value_bytes + 8

    @property
    def entry_data_bytes(self):
        """The CRC-covered prefix of an extent."""
        return self.entry_stride - 8

    @property
    def table_bytes(self):
        return self.n_slots * SLOT_SIZE

    def slot_addr(self, slot_index):
        return self.table_base + slot_index * SLOT_SIZE

    def extent_addr(self, extent_index):
        return self.extents_base + extent_index * self.entry_stride

    def pack_entry(self, key, value):
        body = (pack_uint(len(key), 2) + pack_uint(len(value), 4)
                + b"\x00\x00" + key + value)
        body += b"\x00" * (self.entry_data_bytes - len(body))
        return body + crc_bytes(body)

    @staticmethod
    def unpack_entry(data):
        klen = unpack_uint(data, 0, 2)
        vlen = unpack_uint(data, 2, 4)
        key = bytes(data[8:8 + klen])
        value = bytes(data[8 + klen:8 + klen + vlen])
        return key, value

    @staticmethod
    def pack_slot(ptr):
        ptr_bytes = pack_uint(ptr, 8)
        return ptr_bytes + crc_bytes(ptr_bytes)


class PilafServer:
    """Server side: registered table + extents, RPC PUT handler."""

    PUT_METHOD = "pilaf.put"
    #: server-CPU handler cost for a PUT (µs): hash, copy, CRC update
    PUT_SERVICE_US = 1.60

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 n_keys=100_000, max_value_bytes=512, slots_per_key=1,
                 hash_fn="identity", rpc_config=None, backend_kwargs=None,
                 rpc_core_pool=None):
        self.sim = sim
        self.n_keys = n_keys
        self.hash_fn = hash_fn
        probe = PilafLayout(0, 0, n_keys * slots_per_key,
                            max_value_bytes=max_value_bytes)
        memory_bytes = (probe.table_bytes
                        + (n_keys + 1024) * probe.entry_stride + (1 << 20))
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 service="rdma",
                                 backend_kwargs=backend_kwargs)
        table_base, self.table_rkey = self.prism.add_region(probe.table_bytes)
        extents_base, self.extents_rkey = self.prism.add_region(
            (n_keys + 1024) * probe.entry_stride)
        self.layout = PilafLayout(table_base, extents_base,
                                  n_keys * slots_per_key,
                                  max_value_bytes=max_value_bytes)
        self._next_extent = 0
        self._key_to_extent = {}
        self.rpc = RpcServer(sim, fabric, host_name, config=rpc_config,
                             core_pool=rpc_core_pool)
        self.rpc.register(self.PUT_METHOD, self._handle_put,
                          service_us=self.PUT_SERVICE_US)

    @property
    def host_name(self):
        return self.prism.host_name

    def slot_index(self, key_bytes):
        if self.hash_fn == "identity":
            return int.from_bytes(key_bytes, "little") % self.layout.n_slots
        from repro.apps.kv.prism_kv import fnv1a_64
        return fnv1a_64(key_bytes) % self.layout.n_slots

    # -- server-CPU state manipulation (functional) -----------------------

    def _store(self, key_bytes, value):
        space = self.prism.space
        extent_index = self._key_to_extent.get(key_bytes)
        is_new = extent_index is None
        if is_new:
            extent_index = self._next_extent
            self._next_extent += 1
            self._key_to_extent[key_bytes] = extent_index
        extent = self.layout.extent_addr(extent_index)
        space.write(extent, self.layout.pack_entry(key_bytes, value))
        if is_new:
            slot_index = self.slot_index(key_bytes)
            for offset in range(self.layout.n_slots):
                slot = self.layout.slot_addr(
                    (slot_index + offset) % self.layout.n_slots)
                if unpack_uint(space.read(slot, 8), 0, 8) == 0:
                    space.write(slot, self.layout.pack_slot(extent))
                    return
            raise RuntimeError("pilaf hash table full")

    def _handle_put(self, args):
        key_bytes, value = args
        self._store(key_bytes, value)
        return True, 8

    def load(self, key, value):
        """Bulk load at setup time (no simulated traffic)."""
        if isinstance(key, int):
            key = key.to_bytes(8, "little")
        self._store(bytes(key), value)


class PilafClient:
    """Client side: 2-READ GETs with CRC checks, RPC PUTs."""

    def __init__(self, sim, fabric, client_name, server, max_probes=None):
        self.sim = sim
        self.server = server
        self.layout = server.layout
        self.client = PrismClient(sim, fabric, client_name, server.prism)
        self.rpc = RpcClient(sim, fabric, client_name)
        self.max_probes = max_probes or (
            1 if server.hash_fn == "identity" else 64)
        self.gets = 0
        self.puts = 0
        self.crc_failures = 0

    def get(self, key, span=NULL_SPAN):
        """Process helper: two one-sided READs plus CRC verification."""
        note_key(self.sim, "pilaf", "get", key)
        if isinstance(key, int):
            key = key.to_bytes(8, "little")
        key = bytes(key)
        start = self.server.slot_index(key)
        for offset in range(self.max_probes):
            slot_addr = self.layout.slot_addr(
                (start + offset) % self.layout.n_slots)
            slot = yield from self.client.read(slot_addr, SLOT_SIZE,
                                               rkey=self.server.table_rkey,
                                               span=span)
            with span.child("crc.slot", phase="cpu"):
                yield self.sim.timeout(crc_time_us(SLOT_SIZE))
            if not verify(slot[:8], slot[8:]):
                self.crc_failures += 1
                continue  # racing update: retry this probe
            ptr = unpack_uint(slot, 0, 8)
            if ptr == 0:
                self.gets += 1
                return None
            entry = yield from self.client.read(
                ptr, self.layout.entry_stride, rkey=self.server.extents_rkey,
                span=span)
            with span.child("crc.entry", phase="cpu"):
                yield self.sim.timeout(crc_time_us(self.layout.entry_stride))
            data = entry[:self.layout.entry_data_bytes]
            if not verify(data, entry[self.layout.entry_data_bytes:]):
                self.crc_failures += 1
                continue
            stored_key, value = PilafLayout.unpack_entry(data)
            if stored_key == key:
                self.gets += 1
                return value
        self.gets += 1
        return None

    def put(self, key, value, span=NULL_SPAN):
        """Process helper: a single two-sided RPC."""
        note_key(self.sim, "pilaf", "put", key)
        if isinstance(key, int):
            key = key.to_bytes(8, "little")
        yield from self.rpc.call(
            self.server.host_name, PilafServer.PUT_METHOD,
            (bytes(key), bytes(value)),
            request_payload_bytes=8 + len(key) + len(value), span=span)
        self.puts += 1

    def execute(self, op, span=NULL_SPAN):
        """Driver adapter for :class:`~repro.workload.ycsb.KvOp`."""
        if op.kind == "get":
            yield from self.get(op.key, span=span)
        else:
            yield from self.put(op.key, op.value, span=span)
        return None
