"""Memory layout for PRISM-KV (§6.1).

Hash table slot (24 bytes, CAS-able as one ≤32 B operand)::

    +0   ver    u64   version tag ⟨counter, client_id⟩; 0 = empty
    +8   ptr    u64   address of the value buffer; 0 = empty
    +16  bound  u64   bytes valid in the buffer (for bounded reads)

The ``(ptr, bound)`` pair at offset 8 is exactly the ⟨ptr, bound⟩
struct bounded indirect READs dereference, so a GET is a single
bounded indirect READ of ``slot + 8``.

Value buffer::

    +0   ver   u64    duplicated version (same trick as PRISM-RS §7.3:
                      the copy makes one indirect READ return a
                      consistent ⟨version, key, value⟩ snapshot)
    +8   klen  u16
    +10  vlen  u32
    +14  pad   u16
    +16  key   klen bytes
    ...  value vlen bytes

Note on the install CAS: the paper's prose compares the slot's *old
address*; a single enhanced CAS cannot compare against one value and
swap in a different value over the same bits, so — like PRISM-RS — we
version the slot and use CAS_GT on the version field, swapping the
whole 24-byte slot. Conflict detection is equivalent: the CAS fails
exactly when a concurrent client installed a newer version.
"""

from repro.apps.common import field_mask
from repro.hw.layout import pack_uint, unpack_uint

SLOT_SIZE = 24
SLOT_VER_OFF = 0
SLOT_PTR_OFF = 8
SLOT_BOUND_OFF = 16

HEADER_SIZE = 16  # ver + klen + vlen + pad

#: CAS compare mask selecting the version field of a packed slot.
SLOT_VER_MASK = field_mask(SLOT_VER_OFF, 8)


class KvLayout:
    """Addresses and codecs for a PRISM-KV table."""

    def __init__(self, table_base, n_slots, max_key_bytes=8,
                 max_value_bytes=512):
        self.table_base = table_base
        self.n_slots = n_slots
        self.max_key_bytes = max_key_bytes
        self.max_value_bytes = max_value_bytes

    @property
    def table_bytes(self):
        return self.n_slots * SLOT_SIZE

    @property
    def buffer_bytes(self):
        """Free-list buffer size covering the largest possible entry."""
        return HEADER_SIZE + self.max_key_bytes + self.max_value_bytes

    def slot_addr(self, slot_index):
        return self.table_base + slot_index * SLOT_SIZE

    def probe_read_len(self):
        """Bytes needed to check a slot's key: header + key."""
        return HEADER_SIZE + self.max_key_bytes

    def full_read_len(self):
        """Bytes covering header + key + the largest value."""
        return self.buffer_bytes

    # -- buffer codec ---------------------------------------------------------

    @staticmethod
    def pack_entry(ver, key, value):
        return (pack_uint(ver, 8) + pack_uint(len(key), 2)
                + pack_uint(len(value), 4) + b"\x00\x00" + key + value)

    @staticmethod
    def unpack_entry(data):
        """Returns ``(ver, key, value)``; value may be truncated if the
        read was shorter than the entry (callers size reads to avoid
        this)."""
        ver = unpack_uint(data, 0, 8)
        klen = unpack_uint(data, 8, 2)
        vlen = unpack_uint(data, 10, 4)
        key = bytes(data[16:16 + klen])
        value = bytes(data[16 + klen:16 + klen + vlen])
        return ver, key, value

    @staticmethod
    def entry_key(data):
        """Extract just the key from a probe-sized read."""
        klen = unpack_uint(data, 8, 2)
        return bytes(data[16:16 + klen])

    @staticmethod
    def entry_ver(data):
        return unpack_uint(data, 0, 8)

    @staticmethod
    def pack_slot(ver, ptr, bound):
        return pack_uint(ver, 8) + pack_uint(ptr, 8) + pack_uint(bound, 8)

    @staticmethod
    def unpack_slot(data):
        return (unpack_uint(data, 0, 8), unpack_uint(data, 8, 8),
                unpack_uint(data, 16, 8))

    @staticmethod
    def encode_key(key):
        """Keys are 8-byte strings; integers are encoded little-endian."""
        if isinstance(key, int):
            return key.to_bytes(8, "little")
        return bytes(key)
