"""The paper's three applications and their baselines.

* :mod:`repro.apps.kv` — PRISM-KV (§6) and Pilaf.
* :mod:`repro.apps.blockstore` — PRISM-RS (§7) and lock-based ABD.
* :mod:`repro.apps.tx` — PRISM-TX (§8) and FaRM.
"""
