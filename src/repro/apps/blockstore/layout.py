"""Memory layouts for the replicated block stores.

PRISM-RS replica layout (paper Fig. 5)::

    metadata[i] (16 B):   +0 tag_i u64    +8 addr_i u64
    buffer:               +0 tag   u64    +8 value (block_size bytes)

The tag is intentionally duplicated in the metadata array *and* the
buffer (§7.3): one indirect READ of ``metadata[i] + 8`` returns a
⟨tag, value⟩ pair that is consistent by construction (buffers are
written once, before their address is installed), and one 16-byte
CAS_GT on ``metadata[i]`` orders installs by tag.

ABDLOCK replica layout (§7.2, DrTM-style)::

    block[i] (16 + block_size bytes):
        +0 lock u64 (0 = free, else owner's client id)
        +8 tag  u64
        +16 value
"""

from repro.apps.common import field_mask
from repro.hw.layout import pack_uint, unpack_uint

META_SIZE = 16
META_TAG_OFF = 0
META_ADDR_OFF = 8

#: CAS compare mask selecting the tag field of a packed metadata entry.
META_TAG_MASK = field_mask(META_TAG_OFF, 8)


class RsLayout:
    """Addresses and codecs for a PRISM-RS replica."""

    def __init__(self, meta_base, n_blocks, block_size=512):
        self.meta_base = meta_base
        self.n_blocks = n_blocks
        self.block_size = block_size

    @property
    def meta_bytes(self):
        return self.n_blocks * META_SIZE

    @property
    def buffer_bytes(self):
        return 8 + self.block_size

    def meta_addr(self, block_id):
        return self.meta_base + block_id * META_SIZE

    def addr_field(self, block_id):
        """Address of addr_i — the pointer an indirect READ dereferences."""
        return self.meta_addr(block_id) + META_ADDR_OFF

    @staticmethod
    def pack_meta(tag, addr):
        return pack_uint(tag, 8) + pack_uint(addr, 8)

    @staticmethod
    def unpack_meta(data):
        return unpack_uint(data, 0, 8), unpack_uint(data, 8, 8)

    @staticmethod
    def pack_buffer(tag, value):
        return pack_uint(tag, 8) + value

    @staticmethod
    def unpack_buffer(data):
        return unpack_uint(data, 0, 8), bytes(data[8:])


LOCK_OFF = 0
TAG_OFF = 8
VALUE_OFF = 16


class AbdLockLayout:
    """Addresses and codecs for a lock-based ABD replica."""

    def __init__(self, blocks_base, n_blocks, block_size=512):
        self.blocks_base = blocks_base
        self.n_blocks = n_blocks
        self.block_size = block_size

    @property
    def block_stride(self):
        return VALUE_OFF + self.block_size

    @property
    def blocks_bytes(self):
        return self.n_blocks * self.block_stride

    def block_addr(self, block_id):
        return self.blocks_base + block_id * self.block_stride

    def lock_addr(self, block_id):
        return self.block_addr(block_id) + LOCK_OFF

    def tag_addr(self, block_id):
        return self.block_addr(block_id) + TAG_OFF

    @staticmethod
    def pack_tagged_value(tag, value):
        return pack_uint(tag, 8) + value

    @staticmethod
    def unpack_tagged_value(data):
        return unpack_uint(data, 0, 8), bytes(data[8:])
