"""Replicated block storage: PRISM-RS (§7) and lock-based ABD."""

from repro.apps.blockstore.abd_lock import AbdLockClient, AbdLockReplica
from repro.apps.blockstore.prism_rs import PrismRsClient, PrismRsReplica

__all__ = [
    "AbdLockClient",
    "AbdLockReplica",
    "PrismRsClient",
    "PrismRsReplica",
]
