"""Quorum completion: wait for the first f+1 of n replica operations.

ABD progresses as soon as a majority responds; the stragglers' replies
still arrive and are consumed in the background. This helper spawns one
process per replica operation and triggers when ``need`` of them have
succeeded, delivering their values as ``(replica_index, value)`` pairs.
"""

from repro.core.errors import PrismError


class QuorumError(PrismError):
    """Fewer than the required number of replica operations succeeded."""


def quorum(sim, generators, need, name="quorum"):
    """Process helper: run replica ops concurrently, return the first
    ``need`` successful ``(index, value)`` pairs."""
    event = sim.event()
    state = {"successes": [], "failures": 0}
    total = len(generators)
    if need > total:
        raise QuorumError(f"need {need} of only {total} replicas")

    def make_callback(index):
        def on_done(process):
            if event.triggered:
                return
            if process.ok:
                state["successes"].append((index, process.value))
                if len(state["successes"]) == need:
                    event.succeed(list(state["successes"]))
            else:
                state["failures"] += 1
                if state["failures"] > total - need:
                    event.fail(QuorumError(
                        f"{state['failures']} replica ops failed; quorum of "
                        f"{need}/{total} unreachable: {process.value!r}"))
        return on_done

    for index, generator in enumerate(generators):
        process = sim.spawn(generator, name=f"{name}[{index}]")
        process.add_callback(make_callback(index))
    results = yield event
    return results


def settle(sim, generators, name="settle"):
    """Process helper: run replica ops concurrently and wait for *all*
    of them to finish; returns the successful ``(index, value)`` pairs.

    Unlike :func:`quorum` this never fails fast and never raises:
    failures are consumed, not propagated. Lock protocols need this —
    after a fail-fast quorum the losing side's in-flight operations are
    in an unknown state, and an op that quietly succeeds *after* the
    caller gave up (a lock CAS whose reply was delayed or
    retransmitted) would be held forever. Settling first means the
    caller knows exactly which operations took effect before it
    decides what to roll back.
    """
    if not generators:
        return []
    event = sim.event()
    state = {"done": 0, "successes": []}
    total = len(generators)

    def make_callback(index):
        def on_done(process):
            state["done"] += 1
            if process.ok:
                state["successes"].append((index, process.value))
            if state["done"] == total:
                event.succeed(state["successes"])
        return on_done

    for index, generator in enumerate(generators):
        process = sim.spawn(generator, name=f"{name}[{index}]")
        process.add_callback(make_callback(index))
    results = yield event
    return results
