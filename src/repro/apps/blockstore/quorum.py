"""Quorum completion: wait for the first f+1 of n replica operations.

ABD progresses as soon as a majority responds; the stragglers' replies
still arrive and are consumed in the background. This helper spawns one
process per replica operation and triggers when ``need`` of them have
succeeded, delivering their values as ``(replica_index, value)`` pairs.
"""

from repro.core.errors import PrismError


class QuorumError(PrismError):
    """Fewer than the required number of replica operations succeeded."""


def quorum(sim, generators, need, name="quorum"):
    """Process helper: run replica ops concurrently, return the first
    ``need`` successful ``(index, value)`` pairs."""
    event = sim.event()
    state = {"successes": [], "failures": 0}
    total = len(generators)
    if need > total:
        raise QuorumError(f"need {need} of only {total} replicas")

    def make_callback(index):
        def on_done(process):
            if event.triggered:
                return
            if process.ok:
                state["successes"].append((index, process.value))
                if len(state["successes"]) == need:
                    event.succeed(list(state["successes"]))
            else:
                state["failures"] += 1
                if state["failures"] > total - need:
                    event.fail(QuorumError(
                        f"{state['failures']} replica ops failed; quorum of "
                        f"{need}/{total} unreachable: {process.value!r}"))
        return on_done

    for index, generator in enumerate(generators):
        process = sim.spawn(generator, name=f"{name}[{index}]")
        process.add_callback(make_callback(index))
    results = yield event
    return results
