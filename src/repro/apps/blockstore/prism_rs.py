"""PRISM-RS: multi-writer ABD over PRISM primitives (§7.3).

Every GET and PUT is two quorum round trips with zero replica-CPU
involvement on the data path:

* **Read phase** — one indirect READ of ``metadata[i].addr`` per
  replica returns a consistent ⟨tag, value⟩ (the tag is duplicated in
  the buffer); wait for f+1, take the maximum tag.
* **Write phase** — per replica, one chained request::

      WRITE    t'                  -> tmp
      ALLOCATE t' | v'             -> redirect address to tmp + 8
      CAS      metadata[i], data = *tmp, 16-byte operand,
               CAS_GT on the tag field, swap tag+addr, conditional

  wait for f+1 acks. A CAS miss means the replica already stores a
  newer tag — which satisfies the ABD write-phase obligation just as
  well, so it counts toward the quorum.

Retired buffers (the old addr on a swap, the fresh allocation on a
miss) are reported to the replica's recycler daemon asynchronously.
"""

from repro.apps.blockstore.layout import META_SIZE, META_TAG_MASK, RsLayout
from repro.apps.blockstore.quorum import quorum
from repro.apps.common import bump_tag, make_tag, note_key, split_tag
from repro.core.ops import AllocateOp, CasMode, CasOp, ReadOp, WriteOp
from repro.hw.layout import pack_uint
from repro.obs.trace import NULL_SPAN
from repro.prism.client import PrismClient
from repro.prism.engine import OpStatus
from repro.prism.recycler import RecyclerClient, RecyclerDaemon
from repro.prism.server import PrismServer
from repro.rpc.erpc import RpcClient, RpcServer


class PrismRsReplica:
    """One replica: metadata array, buffer free list, recycler daemon."""

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 n_blocks=100_000, block_size=512, spare_buffers=4096,
                 rpc_config=None, recycler_batch=64, backend_kwargs=None):
        self.sim = sim
        probe = RsLayout(0, n_blocks, block_size)
        memory_bytes = (probe.meta_bytes
                        + (n_blocks + spare_buffers) * probe.buffer_bytes
                        + (1 << 20))
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 backend_kwargs=backend_kwargs)
        meta_base, self.meta_rkey = self.prism.add_region(probe.meta_bytes)
        self.layout = RsLayout(meta_base, n_blocks, block_size)
        self.freelist_id, self.buffer_rkey = self.prism.create_freelist(
            probe.buffer_bytes, n_blocks + spare_buffers, name="rs-buffers")
        self.rpc = RpcServer(sim, fabric, host_name, config=rpc_config)
        self.recycler = RecyclerDaemon(sim, self.prism, self.rpc,
                                       batch_size=recycler_batch)

    @property
    def host_name(self):
        return self.prism.host_name

    def load(self, block_id, value, tag=None):
        """Install an initial value directly (setup time)."""
        tag = make_tag(1, 0) if tag is None else tag
        space = self.prism.space
        addr = self.prism.freelist(self.freelist_id).pop()
        space.write(addr, RsLayout.pack_buffer(tag, value))
        space.write(self.layout.meta_addr(block_id),
                    RsLayout.pack_meta(tag, addr))


class PrismRsClient:
    """A client of an ``n = 2f+1`` replica group."""

    def __init__(self, sim, fabric, client_name, replicas, client_id,
                 recycle_batch=16):
        if len(replicas) % 2 == 0:
            raise ValueError("replica count must be odd (n = 2f + 1)")
        self.sim = sim
        self.replicas = list(replicas)
        self.f = (len(replicas) - 1) // 2
        self.client_id = client_id
        self.layout = replicas[0].layout
        self.clients = [PrismClient(sim, fabric, client_name, r.prism)
                        for r in replicas]
        rpc = RpcClient(sim, fabric, client_name,
                        channel=self.clients[0].channel)
        self.recyclers = [RecyclerClient(rpc, r.host_name,
                                         batch_size=recycle_batch)
                          for r in replicas]
        self.gets = 0
        self.puts = 0

    # -- public API --------------------------------------------------------

    def get(self, block_id, span=NULL_SPAN):
        """Process helper: linearizable read; returns the value bytes."""
        note_key(self.sim, "prism-rs", "get", block_id)
        tag, value = yield from self._read_phase(block_id, span=span)
        # Write-back phase: propagate ⟨tag_max, v_max⟩ so later readers
        # cannot observe an older value (ABD's read write-phase).
        yield from self._write_phase(block_id, tag, value, span=span)
        self.gets += 1
        return value

    def put(self, block_id, value, span=NULL_SPAN):
        """Process helper: linearizable write."""
        note_key(self.sim, "prism-rs", "put", block_id)
        tag, _old_value = yield from self._read_phase(block_id, span=span)
        new_tag = bump_tag(tag, self.client_id)
        yield from self._write_phase(block_id, new_tag, value, span=span)
        self.puts += 1
        return None

    def execute(self, op, span=NULL_SPAN):
        """Driver adapter for :class:`~repro.workload.ycsb.KvOp`."""
        if op.kind == "get":
            yield from self.get(op.key, span=span)
        else:
            yield from self.put(op.key, op.value, span=span)
        return None

    # -- ABD phases ----------------------------------------------------------

    def _read_phase(self, block_id, span=NULL_SPAN):
        """Indirect READ at f+1 replicas; returns ⟨tag_max, v_max⟩.

        Each replica's round trip is a sibling child span; they run in
        parallel, so this operation's phase sums read as *total work*
        across replicas, not wall-clock (see repro.obs.breakdown).
        """
        read_len = 8 + self.layout.block_size
        generators = [
            self._read_at(index, block_id, read_len,
                          span.child(f"abd.read[{index}]", phase="other",
                                     replica=self.replicas[index].host_name))
            for index in range(len(self.replicas))
        ]
        replies = yield from quorum(self.sim, generators, self.f + 1,
                                    name=f"rs-read[{block_id}]")
        best_tag, best_value = -1, b""
        for _index, data in replies:
            tag, value = RsLayout.unpack_buffer(data)
            if tag > best_tag:
                best_tag, best_value = tag, value
        return best_tag, best_value

    def _write_phase(self, block_id, tag, value, span=NULL_SPAN):
        """Chained ALLOCATE/CAS_GT install at f+1 replicas."""
        generators = [
            self._install_at(index, block_id, tag, value,
                             span=span.child(f"abd.write[{index}]",
                                             phase="other"))
            for index in range(len(self.replicas))
        ]
        yield from quorum(self.sim, generators, self.f + 1,
                          name=f"rs-write[{block_id}]")

    def _read_at(self, index, block_id, read_len, span):
        """One replica's read-phase round trip under its own span."""
        with span:
            data = yield from self.clients[index].read(
                self.layout.addr_field(block_id), read_len,
                rkey=self.replicas[index].meta_rkey, indirect=True,
                span=span)
        return data

    def _install_at(self, index, block_id, tag, value, span=NULL_SPAN):
        client = self.clients[index]
        replica = self.replicas[index]
        tmp = client.sram_slot
        sram_rkey = replica.prism.sram_rkey
        with span:
            # retryable: a duplicate execution of this chain is safe by
            # construction — the CAS_GT misses on an equal tag, and the
            # miss path below retires whatever the *last* delivery
            # allocated (its address is in the scratch slot).
            result = yield from client.execute(
                WriteOp(addr=tmp, data=pack_uint(tag, 8), rkey=sram_rkey),
                AllocateOp(freelist=replica.freelist_id,
                           data=RsLayout.pack_buffer(tag, value),
                           rkey=replica.buffer_rkey, redirect_to=tmp + 8,
                           conditional=True),
                CasOp(target=self.layout.meta_addr(block_id),
                      data=tmp.to_bytes(8, "little"), rkey=replica.meta_rkey,
                      mode=CasMode.GT, compare_mask=META_TAG_MASK,
                      data_indirect=True, operand_width=META_SIZE,
                      conditional=True),
                span=span, retryable=True)
        result.raise_on_nak()
        cas = result[2]
        if cas.status is OpStatus.OK:
            _old_tag, old_addr = RsLayout.unpack_meta(cas.value)
            if old_addr:
                self._retire(index, old_addr)
        else:
            # Replica already holds a newer tag; retire our allocation.
            new_addr = int.from_bytes(
                replica.prism.space.read(tmp + 8, 8), "little")
            self._retire(index, new_addr)
        return True

    def _retire(self, index, addr):
        flush = self.recyclers[index].retire(
            self.replicas[index].freelist_id, addr)
        if flush is not None:
            self.sim.spawn(flush, name="rs-retire")
