"""ABDLOCK: multi-writer ABD over *standard* RDMA with locks (§7.2).

The baseline the paper adapts from the DrTM family: clients mediate
concurrent access with per-block spinlocks acquired by classic 64-bit
CAS. Every GET/PUT costs four quorum round trips — lock, read, write,
unlock — plus backoff and retry under contention, which is exactly the
penalty Figs. 6 and 7 quantify.

Protocol per operation:

1. CAS ``lock: 0 -> client_id`` at all replicas; proceed with the
   majority that succeeded. On failure to reach a majority, release
   acquired locks and retry after randomized exponential backoff.
2. READ ``tag | value`` from the locked replicas.
3. WRITE ``tag' | value'`` to the locked replicas (GET writes back the
   max it saw; PUT installs a bumped tag).
4. CAS ``lock: client_id -> 0`` to release.
"""

from repro.apps.blockstore.layout import AbdLockLayout
from repro.apps.blockstore.quorum import quorum, settle
from repro.apps.common import bump_tag, make_tag, note_key
from repro.prism.client import PrismClient
from repro.prism.server import PrismServer
from repro.sim.rng import SeededRng


class AbdLockReplica:
    """One replica: a flat array of lock|tag|value blocks."""

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 n_blocks=100_000, block_size=512, backend_kwargs=None):
        self.sim = sim
        probe = AbdLockLayout(0, n_blocks, block_size)
        memory_bytes = probe.blocks_bytes + (1 << 20)
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 service="rdma",
                                 backend_kwargs=backend_kwargs)
        blocks_base, self.blocks_rkey = self.prism.add_region(
            probe.blocks_bytes)
        self.layout = AbdLockLayout(blocks_base, n_blocks, block_size)

    @property
    def host_name(self):
        return self.prism.host_name

    def load(self, block_id, value, tag=None):
        """Install an initial value directly (setup time)."""
        tag = make_tag(1, 0) if tag is None else tag
        space = self.prism.space
        addr = self.layout.block_addr(block_id)
        space.write_uint(addr, 0, 8)  # lock free
        space.write(addr + 8, AbdLockLayout.pack_tagged_value(tag, value))


class AbdLockClient:
    """A client of an ``n = 2f+1`` lock-based replica group."""

    def __init__(self, sim, fabric, client_name, replicas, client_id,
                 backoff_base_us=4.0, backoff_max_us=256.0, seed=0):
        if len(replicas) % 2 == 0:
            raise ValueError("replica count must be odd (n = 2f + 1)")
        self.sim = sim
        self.replicas = list(replicas)
        self.f = (len(replicas) - 1) // 2
        self.client_id = client_id
        self.layout = replicas[0].layout
        self.clients = [PrismClient(sim, fabric, client_name, r.prism)
                        for r in replicas]
        self.backoff_base_us = backoff_base_us
        self.backoff_max_us = backoff_max_us
        self._rng = SeededRng(seed).stream(f"abdlock.{client_id}")
        self.gets = 0
        self.puts = 0
        self.lock_retries = 0

    # -- public API -----------------------------------------------------------

    def get(self, block_id):
        """Process helper: linearizable read (4 round trips + locking)."""
        note_key(self.sim, "abd-lock", "get", block_id)
        value, _retries = yield from self._locked_operation(block_id, None)
        self.gets += 1
        return value

    def put(self, block_id, value):
        """Process helper: linearizable write (4 round trips + locking)."""
        note_key(self.sim, "abd-lock", "put", block_id)
        _value, _retries = yield from self._locked_operation(block_id, value)
        self.puts += 1
        return None

    def execute(self, op):
        """Driver adapter for :class:`~repro.workload.ycsb.KvOp`."""
        note_key(self.sim, "abd-lock", op.kind, op.key)
        if op.kind == "get":
            _value, retries = yield from self._locked_operation(op.key, None)
            self.gets += 1
        else:
            _value, retries = yield from self._locked_operation(op.key,
                                                                op.value)
            self.puts += 1
        return {"retries": retries}

    # -- protocol ------------------------------------------------------------

    def _locked_operation(self, block_id, new_value):
        """Lock a majority, read, write (back), unlock. Retries locking."""
        attempt = 0
        while True:
            locked = yield from self._acquire_locks(block_id)
            if locked is not None:
                break
            attempt += 1
            self.lock_retries += 1
            yield self.sim.timeout(self._backoff(attempt))
        try:
            replies = yield from quorum(
                self.sim,
                [self.clients[i].read(self.layout.tag_addr(block_id),
                                      8 + self.layout.block_size,
                                      rkey=self.replicas[i].blocks_rkey)
                 for i in locked],
                len(locked), name=f"abd-read[{block_id}]")
            best_tag, best_value = -1, b""
            for _slot, data in replies:
                tag, value = AbdLockLayout.unpack_tagged_value(data)
                if tag > best_tag:
                    best_tag, best_value = tag, value
            if new_value is None:
                write_tag, write_value = best_tag, best_value
            else:
                write_tag = bump_tag(best_tag, self.client_id)
                write_value = new_value
            payload = AbdLockLayout.pack_tagged_value(write_tag, write_value)
            yield from quorum(
                self.sim,
                [self.clients[i].write(self.layout.tag_addr(block_id),
                                       payload,
                                       rkey=self.replicas[i].blocks_rkey)
                 for i in locked],
                len(locked), name=f"abd-write[{block_id}]")
            return best_value if new_value is None else write_value, attempt
        finally:
            yield from self._release_locks(block_id, locked)

    def _acquire_locks(self, block_id):
        """CAS the lock at every replica; returns indices of a majority
        actually acquired, or None (after releasing strays).

        Waits for *all* replicas' lock replies (not just a quorum)
        before deciding, so the set of locks we hold is known exactly —
        a stray late-acquired lock would deadlock other clients.
        """
        generators = [self._cas_lock(index, block_id,
                                     expect=0, install=self.client_id)
                      for index in range(len(self.replicas))]
        replies = yield from settle(self.sim, generators,
                                    name=f"abd-lock[{block_id}]")
        acquired = [index for index, ok in replies if ok]
        if len(acquired) >= self.f + 1:
            return acquired
        if acquired:
            yield from self._release_locks(block_id, acquired)
        return None

    def _cas_lock(self, index, block_id, expect, install):
        """Classic IB atomic CmpSwap on the lock word.

        Retransmission makes a plain CAS ambiguous: the first delivery
        may have swapped and the retry then sees its own install value
        and "fails". The lock word disambiguates — only we ever install
        ``client_id`` and only we ever clear our own lock — so a missed
        compare whose *old value equals what we tried to install* means
        an earlier delivery already did the job, and counts as success.
        """
        swapped, old = yield from self.clients[index].cas(
            self.layout.lock_addr(block_id),
            data=install.to_bytes(8, "little"),
            compare_data=expect.to_bytes(8, "little"),
            rkey=self.replicas[index].blocks_rkey)
        return swapped or int.from_bytes(old, "little") == install

    def _release_locks(self, block_id, indices):
        """CAS the lock back to 0 at ``indices`` (must hold it).

        Settled, not quorum'd: a release must be attempted everywhere
        and a failed one (retries exhausted against a dead replica)
        must not abort the caller's cleanup path.
        """
        yield from settle(
            self.sim,
            [self._cas_lock(index, block_id,
                            expect=self.client_id, install=0)
             for index in indices],
            name=f"abd-unlock[{block_id}]")

    def _backoff(self, attempt):
        ceiling = min(self.backoff_max_us,
                      self.backoff_base_us * (2 ** min(attempt - 1, 6)))
        return self._rng.uniform(self.backoff_base_us / 2, ceiling)
