"""Utilities shared by the application case studies."""

CLIENT_ID_BITS = 16
_CLIENT_ID_MASK = (1 << CLIENT_ID_BITS) - 1


def make_tag(counter, client_id):
    """Build a 64-bit lexicographic tag ⟨counter, client_id⟩ (§7.1).

    Counter occupies the high bits so integer comparison orders first
    by counter, then by client id — the ABD tag order, also used for
    PRISM-KV versions and PRISM-TX timestamps.
    """
    if not 0 <= client_id <= _CLIENT_ID_MASK:
        raise ValueError(f"client_id {client_id} out of range")
    if counter < 0 or counter >= 1 << (64 - CLIENT_ID_BITS):
        raise ValueError(f"counter {counter} out of range")
    return (counter << CLIENT_ID_BITS) | client_id


def split_tag(tag):
    """Inverse of :func:`make_tag`; returns ``(counter, client_id)``."""
    return tag >> CLIENT_ID_BITS, tag & _CLIENT_ID_MASK


def bump_tag(tag, client_id):
    """Smallest tag with this client id strictly greater than ``tag``."""
    counter, _ = split_tag(tag)
    return make_tag(counter + 1, client_id)


def note_key(sim, app, kind, key):
    """Record one app-level op on ``key`` with the primitive-telemetry
    collector, when one is installed (``sim.set_primitives``).

    A single attribute check on the off path, and the collector only
    counts — no clock reads, no events — so instrumented apps keep the
    bit-identical-timing guarantee.
    """
    collector = sim.primitives
    if collector is not None:
        collector.note_key(app, kind, key)


def field_mask(offset_bytes, width_bytes):
    """Bitmask selecting ``width_bytes`` at ``offset_bytes`` of a
    little-endian multi-byte CAS operand."""
    return ((1 << (8 * width_bytes)) - 1) << (8 * offset_bytes)
