"""Network-attached memory node applications (paper §10).

The paper's conclusion argues a hardware PRISM NIC would enable "new
deployment options such as network-attached memory nodes" — hosts that
are *pure memory*: no application CPU at all, every data-path operation
one-sided. :mod:`repro.apps.memnode.shared_log` demonstrates the idea
with a multi-writer shared log built exclusively from PRISM primitives.
"""

from repro.apps.memnode.shared_log import SharedLogClient, SharedLogNode

__all__ = ["SharedLogClient", "SharedLogNode"]
