"""A multi-writer shared log on a network-attached memory node.

The node is passive: after setup it never runs application code. The
log is a linked structure in its memory, manipulated entirely through
PRISM operations — the deployment §10 envisions.

Layout::

    head (16 B):   +0 seq u64 (last appended sequence; 0 = empty)
                   +8 tail_ptr u64 (address of the newest record)
    record:        +0 seq u64 | +8 prev_ptr u64 | +16 len u32 |
                   +20 pad u32 | +24 payload

**Append** (one round trip) — the §3.5 out-of-place pattern, fought
over by multiple writers with CAS_GT on the sequence number::

    WRITE    seq'                 -> scratch
    ALLOCATE seq'|prev|len|data   -> redirect record ptr to scratch+8
    CAS      head, data=*scratch, 16-byte operand, CAS_GT on seq,
             conditional

A CAS miss means another writer claimed ``seq'`` first; the client
retries with a fresher sequence number (read from the returned old
head, so a retry costs exactly one more round trip).

**Read** — records are write-once, so one indirect READ of the head's
tail pointer returns a consistent newest record; older records are
walked with indirect reads of each record's ``prev_ptr`` cell. Since
the chain is immutable once linked, tail-to-head scans are safe
against concurrent appends.
"""

from repro.apps.common import field_mask
from repro.core.ops import AllocateOp, CasMode, CasOp, ReadOp, WriteOp
from repro.core.errors import AccessViolation
from repro.hw.layout import pack_uint, unpack_uint
from repro.prism.client import PrismClient
from repro.prism.engine import OpStatus
from repro.prism.server import PrismServer

HEAD_SIZE = 16
RECORD_HEADER = 24

#: CAS compare mask selecting the sequence field of the packed head.
HEAD_SEQ_MASK = field_mask(0, 8)


class SharedLogNode:
    """The memory node: one log head + a record free list. Passive."""

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 max_record_bytes=256, capacity=4096, backend_kwargs=None):
        self.sim = sim
        self.max_record_bytes = max_record_bytes
        record_size = RECORD_HEADER + max_record_bytes
        memory_bytes = capacity * record_size + (1 << 20)
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 backend_kwargs=backend_kwargs)
        self.head_addr, self.head_rkey = self.prism.add_region(HEAD_SIZE)
        self.freelist_id, self.record_rkey = self.prism.create_freelist(
            record_size, capacity, name="log-records")
        self.prism.space.write(self.head_addr, bytes(HEAD_SIZE))

    @property
    def host_name(self):
        return self.prism.host_name

    # -- codecs -----------------------------------------------------------

    @staticmethod
    def pack_record(seq, prev_ptr, payload):
        return (pack_uint(seq, 8) + pack_uint(prev_ptr, 8)
                + pack_uint(len(payload), 4) + bytes(4) + payload)

    @staticmethod
    def unpack_record(data):
        seq = unpack_uint(data, 0, 8)
        prev_ptr = unpack_uint(data, 8, 8)
        length = unpack_uint(data, 16, 4)
        payload = bytes(data[24:24 + length])
        return seq, prev_ptr, payload


class SharedLogClient:
    """Appends to / scans the shared log with one-sided ops only."""

    def __init__(self, sim, fabric, client_name, node):
        self.sim = sim
        self.node = node
        self.client = PrismClient(sim, fabric, client_name, node.prism)
        self.appends = 0
        self.append_conflicts = 0

    # -- append ---------------------------------------------------------------

    def append(self, payload):
        """Process helper: append ``payload``; returns its sequence
        number. One round trip per attempt; conflicts retry with the
        sequence learned from the CAS's returned old head."""
        if len(payload) > self.node.max_record_bytes:
            raise ValueError("payload exceeds record capacity")
        head = yield from self._read_head()
        seq, tail_ptr = head
        while True:
            new_seq = seq + 1
            outcome = yield from self._try_append(new_seq, tail_ptr,
                                                  payload)
            if outcome is True:
                self.appends += 1
                return new_seq
            # outcome is the newer (seq, tail_ptr) the CAS returned.
            self.append_conflicts += 1
            seq, tail_ptr = outcome

    def _try_append(self, new_seq, prev_ptr, payload):
        tmp = self.client.sram_slot
        record = SharedLogNode.pack_record(new_seq, prev_ptr, payload)
        result = yield from self.client.execute(
            WriteOp(addr=tmp, data=pack_uint(new_seq, 8),
                    rkey=self.node.prism.sram_rkey),
            AllocateOp(freelist=self.node.freelist_id, data=record,
                       rkey=self.node.record_rkey, redirect_to=tmp + 8,
                       conditional=True),
            CasOp(target=self.node.head_addr,
                  data=pack_uint(tmp, 8), rkey=self.node.head_rkey,
                  mode=CasMode.GT, compare_mask=HEAD_SEQ_MASK,
                  data_indirect=True, operand_width=HEAD_SIZE,
                  conditional=True),
        )
        result.raise_on_nak()
        cas = result[2]
        if cas.status is OpStatus.OK:
            return True
        old_seq = unpack_uint(cas.value, 0, 8)
        old_tail = unpack_uint(cas.value, 8, 8)
        return (old_seq, old_tail)

    # -- reads ---------------------------------------------------------------

    def _read_head(self):
        data = yield from self.client.read(self.node.head_addr, HEAD_SIZE,
                                           rkey=self.node.head_rkey)
        return unpack_uint(data, 0, 8), unpack_uint(data, 8, 8)

    def read_latest(self):
        """One indirect READ: the newest record, or None when empty."""
        read_len = RECORD_HEADER + self.node.max_record_bytes
        result = yield from self.client.execute(
            ReadOp(addr=self.node.head_addr + 8, length=read_len,
                   rkey=self.node.head_rkey, indirect=True))
        outcome = result[0]
        if outcome.status is OpStatus.NAK:
            if isinstance(outcome.error, AccessViolation):
                return None  # empty log: NULL tail pointer
            raise outcome.error
        seq, _prev, payload = SharedLogNode.unpack_record(outcome.value)
        return seq, payload

    def scan(self, limit=None):
        """Walk tail -> head; returns records newest-first.

        Each hop is one indirect READ of the previous record's
        ``prev_ptr`` cell — the record chain is immutable, so the scan
        is consistent even against concurrent appends.
        """
        records = []
        latest = yield from self.read_latest()
        if latest is None:
            return records
        read_len = RECORD_HEADER + self.node.max_record_bytes
        # Reread the tail fully to learn its prev pointer.
        result = yield from self.client.execute(
            ReadOp(addr=self.node.head_addr + 8, length=read_len,
                   rkey=self.node.head_rkey, indirect=True))
        seq, prev, payload = SharedLogNode.unpack_record(result[0].value)
        records.append((seq, payload))
        cursor = prev
        while cursor and (limit is None or len(records) < limit):
            data = yield from self.client.read(cursor, read_len,
                                               rkey=self.node.record_rkey)
            seq, cursor, payload = SharedLogNode.unpack_record(data)
            records.append((seq, payload))
        return records
