"""Loosely synchronized transaction timestamps (§8.2).

PRISM-TX timestamps are ⟨clock_time, cid⟩ tuples packed into 64 bits,
chosen client-side from a loosely synchronized clock (Adya et al. '95,
Thomas '79 — the same strategy as Meerkat). The clock_time starts from
the client's local clock — simulated time plus a fixed per-client skew
— and is adjusted upward so the timestamp exceeds every version the
transaction read.
"""

from repro.apps.common import CLIENT_ID_BITS, make_tag, split_tag


class LooselySynchronizedClock:
    """Per-client clock with bounded skew and monotonic output."""

    def __init__(self, sim, client_id, skew_us=0.0):
        self.sim = sim
        self.client_id = client_id
        self.skew_us = skew_us
        self._last_time = 0

    def timestamp(self, floor_timestamps=()):
        """A fresh timestamp greater than every timestamp in
        ``floor_timestamps`` (the RCs of the read set) and locally
        monotonic."""
        local = int(self.sim.now + self.skew_us) + 1
        floor = 0
        for ts in floor_timestamps:
            clock_part, _ = split_tag(ts)
            floor = max(floor, clock_part + 1)
        clock_time = max(local, floor, self._last_time + 1)
        self._last_time = clock_time
        return make_tag(clock_time, self.client_id)
