"""Memory layouts for the transactional stores.

PRISM-TX per-key metadata (paper Fig. 8), 32 bytes::

    +0   PR   u64   highest prepared-reader timestamp
    +8   PW   u64   highest prepared-writer timestamp
    +16  C    u64   timestamp of the most recent committed write
    +24  addr u64   pointer to the committed buffer

Two 16-byte CAS-able pairs fall out of this ordering:

* ``[PR | PW]`` at +0 — read validation compares the concatenation
  RC|TS against PW|PR with one CAS_GT (PW in the high half), and write
  validation CASes the PW half;
* ``[C | addr]`` at +16 — commit installs with CAS_GT on C, exactly
  like PRISM-RS's ⟨tag, addr⟩ install.

Committed buffer::  +0 C u64 | +8 key u64 | +16 value

FaRM object (inline, fixed stride)::

    +0  lockver u64  (bit 63 = lock, low 63 bits = version)
    +8  value

with a Pilaf-style pointer table in front, so an execution-phase read
costs two READs (§8.1).
"""

from repro.apps.common import field_mask
from repro.hw.layout import pack_uint, unpack_uint

META_SIZE = 32
PR_OFF = 0
PW_OFF = 8
C_OFF = 16
ADDR_OFF = 24

#: mask selecting PR (low half) of the packed [PR | PW] pair
PRPW_PR_MASK = field_mask(0, 8)
#: mask selecting PW (high half) of the packed [PR | PW] pair
PRPW_PW_MASK = field_mask(8, 8)
#: mask selecting C (low half) of the packed [C | addr] pair
CADDR_C_MASK = field_mask(0, 8)

BUFFER_HEADER = 16  # C + key


class TxLayout:
    """Addresses and codecs for a PRISM-TX partition."""

    def __init__(self, meta_base, n_keys, value_size=512):
        self.meta_base = meta_base
        self.n_keys = n_keys
        self.value_size = value_size

    @property
    def meta_bytes(self):
        return self.n_keys * META_SIZE

    @property
    def buffer_bytes(self):
        return BUFFER_HEADER + self.value_size

    def meta_addr(self, key):
        return self.meta_base + key * META_SIZE

    def prpw_addr(self, key):
        return self.meta_addr(key) + PR_OFF

    def caddr_addr(self, key):
        return self.meta_addr(key) + C_OFF

    def addr_field(self, key):
        return self.meta_addr(key) + ADDR_OFF

    @staticmethod
    def pack_prpw(pr, pw):
        return pack_uint(pr, 8) + pack_uint(pw, 8)

    @staticmethod
    def unpack_prpw(data):
        return unpack_uint(data, 0, 8), unpack_uint(data, 8, 8)

    @staticmethod
    def pack_caddr(c, addr):
        return pack_uint(c, 8) + pack_uint(addr, 8)

    @staticmethod
    def unpack_caddr(data):
        return unpack_uint(data, 0, 8), unpack_uint(data, 8, 8)

    @staticmethod
    def pack_buffer(c, key, value):
        return pack_uint(c, 8) + pack_uint(key, 8) + value

    @staticmethod
    def unpack_buffer(data):
        return (unpack_uint(data, 0, 8), unpack_uint(data, 8, 8),
                bytes(data[16:]))


LOCK_BIT = 1 << 63


class FarmLayout:
    """Addresses and codecs for a FaRM partition."""

    def __init__(self, table_base, objects_base, n_keys, value_size=512):
        self.table_base = table_base
        self.objects_base = objects_base
        self.n_keys = n_keys
        self.value_size = value_size

    @property
    def table_bytes(self):
        return self.n_keys * 8

    @property
    def object_stride(self):
        return 8 + self.value_size

    @property
    def objects_bytes(self):
        return self.n_keys * self.object_stride

    def slot_addr(self, key):
        return self.table_base + key * 8

    def object_addr(self, key):
        return self.objects_base + key * self.object_stride

    @staticmethod
    def pack_lockver(version, locked=False):
        return pack_uint(version | (LOCK_BIT if locked else 0), 8)

    @staticmethod
    def unpack_lockver(data):
        word = unpack_uint(data, 0, 8)
        return word & ~LOCK_BIT, bool(word & LOCK_BIT)
