"""FaRM baseline (Dragojević et al., NSDI '14), as described in §8.1.

Execution-phase reads are one-sided: READ the pointer table slot, then
READ the object (two round trips per key — "as in Pilaf"). The commit
protocol is three phases, two of which need the server CPU:

1. **LOCK** (RPC) — lock every write-set object, verifying its version
   still matches what the transaction read; any failure unlocks and
   aborts.
2. **VALIDATE** (one-sided READs) — re-read the lock/version word of
   read-set objects that were not locked in phase 1, checking they are
   unlocked and unchanged.
3. **UPDATE + UNLOCK** (RPC) — install the new values, bump versions,
   release locks.
"""

from repro.apps.common import note_key
from repro.apps.tx.layout import FarmLayout
from repro.core.ops import ReadOp
from repro.hw.layout import unpack_uint
from repro.prism.client import PrismClient
from repro.prism.server import PrismServer
from repro.rpc.erpc import RpcClient, RpcServer
from repro.sim.rng import SeededRng


class FarmServer:
    """One partition: pointer table + inline objects + commit RPCs."""

    LOCK_METHOD = "farm.lock"
    UPDATE_METHOD = "farm.update"
    UNLOCK_METHOD = "farm.unlock"
    #: base handler cost (µs) plus per-key increments
    LOCK_BASE_US = 1.10
    LOCK_PER_KEY_US = 0.35
    UPDATE_BASE_US = 1.30
    UPDATE_PER_KEY_US = 0.55

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 n_keys=100_000, value_size=512, rpc_config=None,
                 backend_kwargs=None):
        self.sim = sim
        probe = FarmLayout(0, 0, n_keys, value_size)
        memory_bytes = probe.table_bytes + probe.objects_bytes + (1 << 20)
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 service="rdma",
                                 backend_kwargs=backend_kwargs)
        table_base, self.table_rkey = self.prism.add_region(probe.table_bytes)
        objects_base, self.objects_rkey = self.prism.add_region(
            probe.objects_bytes)
        self.layout = FarmLayout(table_base, objects_base, n_keys, value_size)
        self.rpc = RpcServer(sim, fabric, host_name, config=rpc_config)
        self.rpc.register(self.LOCK_METHOD, self._handle_lock,
                          service_us=self._lock_cost)
        self.rpc.register(self.UPDATE_METHOD, self._handle_update,
                          service_us=self._update_cost)
        self.rpc.register(self.UNLOCK_METHOD, self._handle_unlock,
                          service_us=self._lock_cost)
        self._locks = {}  # key -> transaction id

    @property
    def host_name(self):
        return self.prism.host_name

    def _lock_cost(self, args):
        return self.LOCK_BASE_US + self.LOCK_PER_KEY_US * len(args[1])

    def _update_cost(self, args):
        return self.UPDATE_BASE_US + self.UPDATE_PER_KEY_US * len(args[1])

    # -- state helpers (server CPU, functional) ----------------------------

    def _read_version(self, key):
        word = self.prism.space.read(self.layout.object_addr(key), 8)
        return FarmLayout.unpack_lockver(word)

    def _set_lockver(self, key, version, locked):
        self.prism.space.write(self.layout.object_addr(key),
                               FarmLayout.pack_lockver(version, locked))

    # -- RPC handlers ------------------------------------------------------

    def _handle_lock(self, args):
        """args = (tid, [(key, expected_version), ...])."""
        tid, entries = args
        acquired = []
        for key, expected in entries:
            version, locked = self._read_version(key)
            if locked or version != expected:
                for prior in acquired:
                    prior_version, _ = self._read_version(prior)
                    self._set_lockver(prior, prior_version, locked=False)
                    self._locks.pop(prior, None)
                return (False, ()), 8
            self._set_lockver(key, version, locked=True)
            self._locks[key] = tid
            acquired.append(key)
        return (True, ()), 8

    def _handle_update(self, args):
        """args = (tid, [(key, value), ...]): install, bump, unlock."""
        tid, entries = args
        for key, value in entries:
            assert self._locks.get(key) == tid, "update without lock"
            version, _locked = self._read_version(key)
            self._set_lockver(key, version + 1, locked=False)
            self.prism.space.write(self.layout.object_addr(key) + 8, value)
            self._locks.pop(key, None)
        return (True, ()), 8

    def _handle_unlock(self, args):
        """args = (tid, [key, ...]): release without installing."""
        tid, keys = args
        for key in keys:
            if self._locks.get(key) == tid:
                version, _ = self._read_version(key)
                self._set_lockver(key, version, locked=False)
                self._locks.pop(key, None)
        return (True, ()), 8

    def load(self, key, value, version=1):
        """Install an initial version directly (setup time)."""
        space = self.prism.space
        space.write_ptr(self.layout.slot_addr(key),
                        self.layout.object_addr(key))
        self._set_lockver(key, version, locked=False)
        space.write(self.layout.object_addr(key) + 8, value)


class FarmClient:
    """A FaRM transaction client of one partition."""

    def __init__(self, sim, fabric, client_name, server, client_id, seed=0,
                 backoff_base_us=3.0, backoff_max_us=128.0):
        self.sim = sim
        self.server = server
        self.layout = server.layout
        self.client = PrismClient(sim, fabric, client_name, server.prism)
        self.rpc = RpcClient(sim, fabric, client_name)
        self.client_id = client_id
        self._txn_counter = 0
        self._rng = SeededRng(seed).stream(f"farm.{client_id}")
        self.backoff_base_us = backoff_base_us
        self.backoff_max_us = backoff_max_us
        self.commits = 0
        self.aborts = 0
        #: optional hook called on every commit with
        #: ``(None, reads_dict, writes_dict, start, finish)``.
        self.on_commit = None

    # -- execution phase -----------------------------------------------------

    def read_keys(self, keys):
        """Two batched one-sided READ round trips: slots, then objects.

        Returns ``({key: version}, {key: value})``; retries keys whose
        object was locked mid-read (version word has the lock bit set).
        """
        slot_ops = [ReadOp(addr=self.layout.slot_addr(key), length=8,
                           rkey=self.server.table_rkey) for key in keys]
        result = yield from self.client.execute(*slot_ops)
        result.raise_on_nak()
        pointers = [unpack_uint(r.value, 0, 8) for r in result]
        while True:
            object_ops = [
                ReadOp(addr=ptr, length=8 + self.layout.value_size,
                       rkey=self.server.objects_rkey)
                for ptr in pointers]
            result = yield from self.client.execute(*object_ops)
            result.raise_on_nak()
            versions, values = {}, {}
            any_locked = False
            for key, op_result in zip(keys, result):
                version, locked = FarmLayout.unpack_lockver(
                    op_result.value[:8])
                if locked:
                    any_locked = True
                versions[key] = version
                values[key] = bytes(op_result.value[8:])
            if not any_locked:
                return versions, values
            # A concurrent commit holds the lock; reread shortly.
            yield self.sim.timeout(1.0)

    # -- commit protocol ---------------------------------------------------

    def run_transaction(self, read_keys, write_keys, value):
        """Process helper: one attempt; returns (committed, values)."""
        read_keys = tuple(read_keys)
        write_keys = tuple(write_keys)
        self._txn_counter += 1
        tid = (self.client_id, self._txn_counter)
        start = self.sim.now
        versions, values = yield from self.read_keys(read_keys)
        # Phase 1: LOCK the write set (with version check).
        ok, _ = yield from self.rpc.call(
            self.server.host_name, FarmServer.LOCK_METHOD,
            (tid, [(key, versions.get(key, 0)) for key in write_keys]),
            request_payload_bytes=16 * len(write_keys) + 16)
        if not ok:
            return False, values
        # Phase 2: VALIDATE — "reread all objects in the read set to
        # verify that they have not been concurrently modified" (§8.1).
        # Write-set keys are locked by us, so for those only the version
        # must match; other keys must also be unlocked.
        if read_keys:
            write_set = set(write_keys)
            ops = [ReadOp(addr=self.layout.object_addr(key), length=8,
                          rkey=self.server.objects_rkey)
                   for key in read_keys]
            result = yield from self.client.execute(*ops)
            result.raise_on_nak()
            for key, op_result in zip(read_keys, result):
                version, locked = FarmLayout.unpack_lockver(op_result.value)
                bad = (version != versions[key]
                       or (locked and key not in write_set))
                if bad:
                    yield from self.rpc.call(
                        self.server.host_name, FarmServer.UNLOCK_METHOD,
                        (tid, list(write_keys)),
                        request_payload_bytes=8 * len(write_keys) + 16)
                    return False, values
        # Phase 3: UPDATE and UNLOCK.
        yield from self.rpc.call(
            self.server.host_name, FarmServer.UPDATE_METHOD,
            (tid, [(key, value) for key in write_keys]),
            request_payload_bytes=(8 + len(value)) * len(write_keys) + 16)
        if self.on_commit is not None:
            self.on_commit(None, dict(values),
                           {key: value for key in write_keys},
                           start, self.sim.now)
        return True, values

    def transact(self, read_keys, write_keys, value, max_attempts=None):
        """Retry loop with randomized exponential backoff."""
        attempts = 0
        while True:
            attempts += 1
            committed, values = yield from self.run_transaction(
                read_keys, write_keys, value)
            if committed:
                self.commits += 1
                return values, attempts - 1
            self.aborts += 1
            if max_attempts is not None and attempts >= max_attempts:
                raise RuntimeError("farm transaction exceeded max attempts")
            ceiling = min(self.backoff_max_us,
                          self.backoff_base_us * (2 ** min(attempts - 1, 6)))
            yield self.sim.timeout(
                self._rng.uniform(self.backoff_base_us / 2, ceiling))

    def execute(self, op):
        """Driver adapter for :class:`~repro.workload.ycsb.TxnOp`."""
        for key in op.read_keys:
            note_key(self.sim, "farm", "read", key)
        for key in op.write_keys:
            note_key(self.sim, "farm", "write", key)
        _values, retries = yield from self.transact(
            op.read_keys, op.write_keys, op.value)
        return {"retries": retries, "aborts": retries}
