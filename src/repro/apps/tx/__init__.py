"""Distributed transactions: PRISM-TX (§8) and the FaRM baseline."""

from repro.apps.tx.farm import FarmClient, FarmServer
from repro.apps.tx.prism_tx import PrismTxClient, PrismTxServer

__all__ = ["FarmClient", "FarmServer", "PrismTxClient", "PrismTxServer"]
