"""Sharded PRISM-TX: transactions across multiple partition servers.

§8 defines PRISM-TX over data "partitioned among multiple servers";
the paper's testbed limited the evaluation to a single shard (§8.3).
This module implements the full sharded protocol: every phase fans out
one batched request per involved shard in parallel, and the transaction
commits only when *every* shard's validations pass — timestamp OCC
needs no extra coordinator round because the client is the coordinator
and timestamps give all shards the same serialization point.

Keys are global integers; shard = key % n_shards, local key =
key // n_shards.
"""

from repro.apps.tx.prism_tx import PrismTxClient, TxAborted
from repro.sim.rng import SeededRng


class ShardedPrismTxClient:
    """A transaction client over N PRISM-TX partition servers."""

    def __init__(self, sim, fabric, client_name, servers, client_id,
                 clock_skew_us=0.0, backoff_base_us=3.0,
                 backoff_max_us=128.0):
        if not servers:
            raise ValueError("need at least one shard")
        self.sim = sim
        self.servers = list(servers)
        self.n_shards = len(servers)
        self.client_id = client_id
        self.shards = [
            PrismTxClient(sim, fabric, client_name, server,
                          client_id=client_id, clock_skew_us=clock_skew_us)
            for server in servers
        ]
        # One clock rules them all: timestamps must be comparable
        # across shards, so reuse shard 0's clock everywhere.
        self.clock = self.shards[0].clock
        for shard_client in self.shards[1:]:
            shard_client.clock = self.clock
        self._rng = SeededRng(client_id).stream("shardedtx.backoff")
        self.backoff_base_us = backoff_base_us
        self.backoff_max_us = backoff_max_us
        self.commits = 0
        self.aborts = 0
        self.on_commit = None

    # -- key routing -------------------------------------------------------

    def shard_of(self, key):
        return key % self.n_shards

    def local_key(self, key):
        return key // self.n_shards

    def _partition(self, keys):
        """Group global keys by shard; returns {shard: [global keys]}."""
        groups = {}
        for key in keys:
            groups.setdefault(self.shard_of(key), []).append(key)
        return groups

    # -- phases --------------------------------------------------------------

    def _fanout(self, jobs):
        """Run per-shard process helpers in parallel; returns results
        in job order. A failure in any branch propagates."""
        processes = [self.sim.spawn(job, name=f"shard-phase{i}")
                     for i, job in enumerate(jobs)]
        results = yield self.sim.all_of(processes)
        return results

    def _execute_reads(self, read_keys):
        groups = self._partition(read_keys)
        jobs = []
        order = []
        for shard, keys in groups.items():
            local = tuple(self.local_key(k) for k in keys)
            jobs.append(self.shards[shard]._execute_reads(local))
            order.append((shard, keys))
        outcomes = yield from self._fanout(jobs)
        versions, values = {}, {}
        for (shard, keys), (shard_versions, shard_values) in zip(order,
                                                                 outcomes):
            for key in keys:
                local = self.local_key(key)
                versions[key] = shard_versions[local]
                values[key] = shard_values[local]
        return versions, values

    def _prepare(self, read_keys, write_keys, versions, ts):
        read_groups = self._partition(read_keys)
        write_groups = self._partition(write_keys)
        shards = sorted(set(read_groups) | set(write_groups))
        jobs = []
        for shard in shards:
            local_reads = tuple(self.local_key(k)
                                for k in read_groups.get(shard, ()))
            local_writes = tuple(self.local_key(k)
                                 for k in write_groups.get(shard, ()))
            local_versions = {self.local_key(k): versions[k]
                              for k in read_groups.get(shard, ())}
            jobs.append(self._prepare_one(shard, local_reads, local_writes,
                                          local_versions, ts))
        outcomes = yield from self._fanout(jobs)
        if all(ok for ok, _shard, _writes in outcomes):
            return
        # Cross-shard abort. Shards that *passed* prepare have raised
        # PW for their write keys but will never see the install; apply
        # the §8.2 abort rule there too — advance C to TS so the
        # conservative stamps stop blocking readers. (Shards that
        # aborted already did this for their own keys inside _prepare.)
        cleanups = []
        for ok, shard, local_writes in outcomes:
            if ok and local_writes:
                cleanups.append(
                    self.shards[shard]._abort(local_writes, ts))
        if cleanups:
            yield from self._fanout(cleanups)
        raise TxAborted()

    def _prepare_one(self, shard, local_reads, local_writes, local_versions,
                     ts):
        """Per-shard prepare that reports instead of raising, so the
        coordinator can clean up passing shards after a mixed outcome."""
        try:
            yield from self.shards[shard]._prepare(
                local_reads, local_writes, local_versions, ts)
        except TxAborted:
            return (False, shard, local_writes)
        return (True, shard, local_writes)

    def _commit(self, writes, ts):
        groups = self._partition(writes)
        jobs = []
        for shard, keys in groups.items():
            local_writes = {self.local_key(k): writes[k] for k in keys}
            jobs.append(self.shards[shard]._commit(local_writes, ts))
        yield from self._fanout(jobs)

    # -- public API -----------------------------------------------------------

    def run_transaction(self, read_keys, write_keys, value):
        """Process helper: one attempt writing ``value`` everywhere."""
        return (yield from self.run_transaction_kv(
            read_keys, {key: value for key in write_keys}))

    def run_transaction_kv(self, read_keys, writes):
        """Process helper: one attempt with per-key write values."""
        read_keys = tuple(read_keys)
        writes = dict(writes)
        start = self.sim.now
        versions, values = yield from self._execute_reads(read_keys)
        ts = self.clock.timestamp(versions.values())
        yield from self._prepare(read_keys, tuple(writes), versions, ts)
        yield from self._commit(writes, ts)
        self.commits += 1
        if self.on_commit is not None:
            self.on_commit(ts, dict(values), dict(writes), start,
                           self.sim.now)
        return values

    def transact(self, read_keys, write_keys, value, max_attempts=None):
        """Retry loop with randomized backoff (mirrors the unsharded
        client)."""
        return (yield from self.transact_kv(
            read_keys, {key: value for key in write_keys},
            max_attempts=max_attempts))

    def transact_kv(self, read_keys, writes, max_attempts=None):
        """Retry loop around :meth:`run_transaction_kv`."""
        attempts = 0
        while True:
            attempts += 1
            try:
                values = yield from self.run_transaction_kv(read_keys,
                                                            writes)
                return values, attempts - 1
            except TxAborted:
                self.aborts += 1
                if max_attempts is not None and attempts >= max_attempts:
                    raise
                ceiling = min(self.backoff_max_us,
                              self.backoff_base_us
                              * (2 ** min(attempts - 1, 6)))
                yield self.sim.timeout(
                    self._rng.uniform(self.backoff_base_us / 2, ceiling))

    def execute(self, op):
        """Driver adapter for :class:`~repro.workload.ycsb.TxnOp`."""
        _values, retries = yield from self.transact(
            op.read_keys, op.write_keys, op.value)
        return {"retries": retries, "aborts": retries}


def load_sharded(servers, key, value, version=1):
    """Setup-time loader routing a global key to its shard."""
    shard = key % len(servers)
    servers[shard].load(key // len(servers), value, version=version)
