"""PRISM-TX: one-sided optimistic concurrency control (§8.2).

A transaction touches the server CPU *zero* times:

* **Execution** — buffered writes, reads via one indirect READ per key
  (all keys of a partition batched into a single request).
* **Prepare** (1 round trip) — per key, CAS-based validation against
  the ``[PR | PW]`` metadata pair:

  - read validation: one CAS_GT comparing RC|TS against PW|PR and
    swapping PR := TS (the single-CAS trick of §8.2);
  - write validation: one CAS_GT on the PW half swapping PW := TS,
    chained *conditionally* behind the read validation when the key is
    both read and written; the returned old PR is checked client-side.

* **Commit** (1 round trip) — per written key, the PRISM-RS install
  chain (WRITE tag to scratch, ALLOCATE buffer with the address
  redirected to scratch, CAS_GT on ``[C | addr]``).

On abort the prepared PR/PW stamps are *left in place* (safe, §8.2) and
C is advanced to TS for keys that passed write validation, limiting how
long the conservative stamps can block others.

The 32-byte per-connection scratch slot holds two 16-byte install
temporaries, so up to two written keys commit in one request; larger
write sets are split across parallel requests (still one round trip).
"""

from repro.apps.common import note_key, split_tag
from repro.sim.events import TimeoutExpired
from repro.apps.tx.layout import (
    CADDR_C_MASK,
    META_SIZE,
    PRPW_PW_MASK,
    PRPW_PR_MASK,
    TxLayout,
)
from repro.apps.tx.timestamps import LooselySynchronizedClock
from repro.core.constants import REDIRECT_SLOT_BYTES
from repro.core.ops import AllocateOp, CasMode, CasOp, ReadOp, WriteOp
from repro.hw.layout import pack_uint
from repro.prism.client import PrismClient
from repro.prism.engine import OpStatus
from repro.prism.recycler import RecyclerClient, RecyclerDaemon
from repro.prism.server import PrismServer
from repro.rpc.erpc import RpcClient, RpcServer

_INSTALL_TMP_BYTES = 16
_INSTALLS_PER_REQUEST = REDIRECT_SLOT_BYTES // _INSTALL_TMP_BYTES


class PrismTxServer:
    """One partition: metadata array, buffer free list, recycler."""

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 n_keys=100_000, value_size=512, spare_buffers=4096,
                 rpc_config=None, recycler_batch=64, backend_kwargs=None):
        self.sim = sim
        probe = TxLayout(0, n_keys, value_size)
        memory_bytes = (probe.meta_bytes
                        + (n_keys + spare_buffers) * probe.buffer_bytes
                        + (1 << 20))
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 backend_kwargs=backend_kwargs)
        meta_base, self.meta_rkey = self.prism.add_region(probe.meta_bytes)
        self.layout = TxLayout(meta_base, n_keys, value_size)
        self.freelist_id, self.buffer_rkey = self.prism.create_freelist(
            probe.buffer_bytes, n_keys + spare_buffers, name="tx-buffers")
        self.rpc = RpcServer(sim, fabric, host_name, config=rpc_config)
        self.recycler = RecyclerDaemon(sim, self.prism, self.rpc,
                                       batch_size=recycler_batch)

    @property
    def host_name(self):
        return self.prism.host_name

    def load(self, key, value, version=1):
        """Install an initial version directly (setup time).

        PW is seeded to the initial version: the protocol invariant is
        PW >= C (a committed write was always prepared first), and read
        validation checks RC == PW.
        """
        space = self.prism.space
        addr = self.prism.freelist(self.freelist_id).pop()
        space.write(addr, TxLayout.pack_buffer(version, key, value))
        space.write(self.layout.meta_addr(key),
                    TxLayout.pack_prpw(0, version)
                    + TxLayout.pack_caddr(version, addr))


class TxAborted(Exception):
    """Internal: validation failed; the caller retries with a new TS."""


class PrismTxClient:
    """A transaction client of one partition (single shard, as §8.3)."""

    def __init__(self, sim, fabric, client_name, server, client_id,
                 clock_skew_us=0.0, recycle_batch=16,
                 backoff_base_us=3.0, backoff_max_us=128.0):
        self.sim = sim
        self.server = server
        self.layout = server.layout
        self.client = PrismClient(sim, fabric, client_name, server.prism)
        self.client_id = client_id
        self.clock = LooselySynchronizedClock(sim, client_id, clock_skew_us)
        rpc = RpcClient(sim, fabric, client_name,
                        channel=self.client.channel)
        self.recycler = RecyclerClient(rpc, server.host_name,
                                       batch_size=recycle_batch)
        from repro.sim.rng import SeededRng
        self._rng = SeededRng(client_id).stream("prismtx.backoff")
        self.backoff_base_us = backoff_base_us
        self.backoff_max_us = backoff_max_us
        self.commits = 0
        self.aborts = 0
        self.timeout_aborts = 0
        #: optional hook called on every commit with
        #: ``(timestamp, reads_dict, writes_dict, start, finish)`` —
        #: used by the serializability checker in the test suite.
        self.on_commit = None

    # -- public API -------------------------------------------------------

    def run_transaction(self, read_keys, write_keys, value):
        """Process helper: one attempt writing ``value`` to every write
        key; returns the committed read values dict.

        Raises :class:`TxAborted` when validation fails.
        """
        return (yield from self.run_transaction_kv(
            read_keys, {key: value for key in write_keys}))

    def run_transaction_kv(self, read_keys, writes):
        """Process helper: one attempt with per-key write values.

        ``writes`` maps key -> value. Raises :class:`TxAborted` when
        validation fails.
        """
        read_keys = tuple(read_keys)
        writes = dict(writes)
        start = self.sim.now
        read_versions, values = yield from self._execute_reads(read_keys)
        ts = self.clock.timestamp(read_versions.values())
        yield from self._prepare(read_keys, tuple(writes), read_versions, ts)
        yield from self._commit(writes, ts)
        self.commits += 1
        if self.on_commit is not None:
            self.on_commit(ts, dict(values), dict(writes), start,
                           self.sim.now)
        return values

    def transact(self, read_keys, write_keys, value, max_attempts=None):
        """Process helper: retry loop with randomized backoff."""
        return (yield from self.transact_kv(
            read_keys, {key: value for key in write_keys},
            max_attempts=max_attempts))

    def transact_kv(self, read_keys, writes, max_attempts=None):
        """Retry loop around :meth:`run_transaction_kv`.

        A coordinator timeout (channel retransmissions exhausted under
        fault injection) is handled like an abort: the attempt's PR/PW
        stamps are safe to leave in place (§8.2), and the whole
        transaction retries with a fresh, higher timestamp.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                values = yield from self.run_transaction_kv(read_keys,
                                                            writes)
                return values, attempts - 1
            except (TxAborted, TimeoutExpired) as exc:
                self.aborts += 1
                if isinstance(exc, TimeoutExpired):
                    self.timeout_aborts += 1
                if max_attempts is not None and attempts >= max_attempts:
                    raise
                ceiling = min(self.backoff_max_us,
                              self.backoff_base_us
                              * (2 ** min(attempts - 1, 6)))
                yield self.sim.timeout(
                    self._rng.uniform(self.backoff_base_us / 2, ceiling))

    def execute(self, op):
        """Driver adapter for :class:`~repro.workload.ycsb.TxnOp`."""
        for key in op.read_keys:
            note_key(self.sim, "prism-tx", "read", key)
        for key in op.write_keys:
            note_key(self.sim, "prism-tx", "write", key)
        _values, retries = yield from self.transact(
            op.read_keys, op.write_keys, op.value)
        return {"retries": retries, "aborts": retries}

    # -- phases ------------------------------------------------------------

    def _execute_reads(self, read_keys):
        """One batched request per partition: for each key, READ the
        metadata C word and indirect-READ the committed buffer.

        RC is ``max(C_meta, C_buffer)``: after an abort advanced C past
        the buffer's embedded tag (§8.2), the old value stands in for
        the aborted write at the higher version; when an install races
        between the two READs, the buffer's (newer) tag is the
        consistent one. Either mismatch direction yields a value/version
        pair that validation treats correctly (at worst conservatively).
        """
        if not read_keys:
            return {}, {}
        read_len = self.layout.buffer_bytes
        ops = []
        for key in read_keys:
            ops.append(ReadOp(addr=self.layout.caddr_addr(key), length=8,
                              rkey=self.server.meta_rkey))
            ops.append(ReadOp(addr=self.layout.addr_field(key),
                              length=read_len,
                              rkey=self.server.meta_rkey, indirect=True))
        result = yield from self.client.execute(*ops)
        result.raise_on_nak()
        versions, values = {}, {}
        for index, key in enumerate(read_keys):
            c_meta = int.from_bytes(result[2 * index].value, "little")
            c_buf, stored_key, value = TxLayout.unpack_buffer(
                result[2 * index + 1].value)
            assert stored_key == key, "hash is collisionless by construction"
            versions[key] = max(c_meta, c_buf)
            values[key] = value
        return versions, values

    def _prepare(self, read_keys, write_keys, read_versions, ts):
        """One batched request of validation CASes; raises TxAborted."""
        write_set = set(write_keys)
        ops = []
        kinds = []  # parallel list: ("rv"|"wv", key)
        for key in read_keys:
            ops.append(self._read_validation_op(key, read_versions[key], ts))
            kinds.append(("rv", key))
            if key in write_set:
                ops.append(self._write_validation_op(key, ts,
                                                     conditional=True))
                kinds.append(("wv", key))
        for key in write_keys:
            if key not in read_versions:
                ops.append(self._write_validation_op(key, ts,
                                                     conditional=False))
                kinds.append(("wv", key))
        result = yield from self.client.execute(*ops)
        result.raise_on_nak()
        # Under fault injection the prepare request may be delivered
        # more than once (retransmission after a lost reply), and the
        # reply the client consumes may come from the *second*
        # delivery, which ran against the first delivery's stamps.
        # Timestamps are unique per attempt, so PW == ts in a returned
        # old value is proof the earlier delivery already performed
        # our validation: the rv "miss" it causes is not a conflict
        # (rv executed before wv in the first delivery, against the
        # pre-stamp state), and the wv SKIPPED/missed behind it
        # already took effect. Missing this poisons the key forever —
        # PW stays raised, the abort path never advances C past it
        # (the key never reaches ``write_checked``), and every later
        # read validation of the key aborts.
        faulty = self.client.retry_policy is not None
        ok = True
        write_checked = []
        own_stamped = set()  # keys whose PW == ts came back (ours)
        for (kind, key), op_result in zip(kinds, result):
            if op_result.status is OpStatus.SKIPPED:
                # A wv chained behind an rv that missed. If the rv
                # missed on our own stamp, the first delivery already
                # did this wv; otherwise the skip is a real failure.
                if key in own_stamped:
                    write_checked.append(key)
                else:
                    ok = False
                continue
            old_pr, old_pw = TxLayout.unpack_prpw(op_result.value)
            if kind == "rv":
                # Read is valid iff it observed the latest prepared
                # write. PR may legitimately not have moved (TS <= PR).
                if old_pw != read_versions[key]:
                    if faulty and old_pw == ts:
                        own_stamped.add(key)
                    else:
                        ok = False
            else:
                # PR == ts is our *own* read validation (timestamps are
                # unique per transaction), which our write never
                # invalidates; only a strictly greater PR aborts.
                effective = op_result.status is OpStatus.OK
                if faulty and not effective and old_pw == ts:
                    effective = True  # an earlier delivery swapped PW
                if effective and (faulty or old_pr <= ts):
                    # The PW stamp is ours: if this attempt aborts, C
                    # must advance past it so readers are not blocked.
                    write_checked.append(key)
                if not effective or old_pr > ts:
                    ok = False
        if not ok:
            yield from self._abort(write_checked, ts)
            raise TxAborted()

    def _read_validation_op(self, key, rc, ts):
        # Compare RC|TS > PW|PR (PW, RC in the high halves); swap PR=TS.
        return CasOp(target=self.layout.prpw_addr(key),
                     data=TxLayout.pack_prpw(ts, rc),
                     rkey=self.server.meta_rkey, mode=CasMode.GT,
                     swap_mask=PRPW_PR_MASK, operand_width=16)

    def _write_validation_op(self, key, ts, conditional):
        # Compare TS > PW on the PW half; swap PW=TS. Old PR checked
        # client-side afterwards (§8.2: safe to raise PW optimistically).
        return CasOp(target=self.layout.prpw_addr(key),
                     data=TxLayout.pack_prpw(0, ts),
                     rkey=self.server.meta_rkey, mode=CasMode.GT,
                     compare_mask=PRPW_PW_MASK, swap_mask=PRPW_PW_MASK,
                     operand_width=16, conditional=conditional)

    def _commit(self, writes, ts):
        """Install all writes (``writes``: key -> value); chunks of two
        chains per request (the 32 B scratch slot holds two install
        temporaries)."""
        items = list(writes.items())
        chunks = [items[i:i + _INSTALLS_PER_REQUEST]
                  for i in range(0, len(items), _INSTALLS_PER_REQUEST)]
        for chunk in chunks:
            yield from self._install_chunk(chunk, ts)

    def _install_chunk(self, chunk, ts):
        tmp_base = self.client.sram_slot
        sram_rkey = self.server.prism.sram_rkey
        ops = []
        cas_indices = []
        for slot, (key, value) in enumerate(chunk):
            tmp = tmp_base + slot * _INSTALL_TMP_BYTES
            ops.append(WriteOp(addr=tmp, data=pack_uint(ts, 8),
                               rkey=sram_rkey))
            ops.append(AllocateOp(
                freelist=self.server.freelist_id,
                data=TxLayout.pack_buffer(ts, key, value),
                rkey=self.server.buffer_rkey, redirect_to=tmp + 8,
                conditional=True))
            cas_indices.append(len(ops))
            ops.append(CasOp(
                target=self.layout.caddr_addr(key),
                data=tmp.to_bytes(8, "little"), rkey=self.server.meta_rkey,
                mode=CasMode.GT, compare_mask=CADDR_C_MASK,
                data_indirect=True, operand_width=16, conditional=True))
        # retryable: same argument as the PRISM-RS install chain — a
        # duplicate execution misses the CAS_GT (equal C) and the miss
        # path retires the re-allocated buffer via the scratch slot.
        result = yield from self.client.execute(*ops, retryable=True)
        result.raise_on_nak()
        for slot, ((key, _value), cas_index) in enumerate(
                zip(chunk, cas_indices)):
            cas = result[cas_index]
            tmp = tmp_base + slot * _INSTALL_TMP_BYTES
            if cas.status is OpStatus.OK:
                _old_c, old_addr = TxLayout.unpack_caddr(cas.value)
                if old_addr:
                    self._retire(old_addr)
            else:
                # A transaction with a later timestamp already installed
                # this key (Thomas write rule): drop our buffer.
                new_addr = int.from_bytes(
                    self.server.prism.space.read(tmp + 8, 8), "little")
                self._retire(new_addr)

    def _abort(self, write_checked_keys, ts):
        """Advance C := TS for keys that passed write validation, so the
        conservatively raised PW cannot block readers longer than
        needed (§8.2)."""
        if not write_checked_keys:
            return
        ops = [CasOp(target=self.layout.caddr_addr(key),
                     data=TxLayout.pack_caddr(ts, 0),
                     rkey=self.server.meta_rkey, mode=CasMode.GT,
                     compare_mask=CADDR_C_MASK, swap_mask=CADDR_C_MASK,
                     operand_width=16)
               for key in write_checked_keys]
        result = yield from self.client.execute(*ops)
        result.raise_on_nak()

    def _retire(self, addr):
        flush = self.recycler.retire(self.server.freelist_id, addr)
        if flush is not None:
            self.sim.spawn(flush, name="tx-retire")
