"""A remote B-tree: server-resident index, client-driven traversal.

Layout (all little-endian):

inner node (fixed fanout F)::

    +0   is_leaf u8 (=0) | pad 7
    +8   nkeys  u64
    +16  keys   F x u64
    ...  children (F+1) x u64 pointers

leaf node::

    +0   is_leaf u8 (=1) | pad 7
    +8   nkeys  u64
    +16  keys   F x u64
    ...  slots  F x ⟨ver u64, ptr u64, bound u64⟩   (PRISM-KV slots)

Values live out-of-line in free-list buffers ``[ver u64 | value]``, so
leaf *slot addresses are stable across updates* — only the pointer
inside the slot changes, via the chained out-of-place install. That is
what makes client-side caching of the index (inner nodes *and* leaf
key arrays) sound: a cached lookup needs no revalidation, just one
bounded indirect READ of the slot.

Client access modes (``BTreeClient.get(key, ...)``):

* ``rdma``        — cold Cell-style walk: one READ per level, then
                    pointer READ + value READ (h + 2 round trips);
* ``rdma-cache``  — inner nodes + leaf keys cached: slot READ + value
                    READ (2 round trips, Pilaf-shaped);
* ``prism-cache`` — cached index + one bounded indirect READ (1 round
                    trip).
"""

import bisect

from repro.apps.common import bump_tag, field_mask
from repro.core.errors import AccessViolation
from repro.core.ops import AllocateOp, CasMode, CasOp, ReadOp, WriteOp
from repro.hw.layout import pack_uint, unpack_uint
from repro.prism.client import PrismClient
from repro.prism.engine import OpStatus
from repro.prism.server import PrismServer

SLOT_SIZE = 24
SLOT_VER_MASK = field_mask(0, 8)
NODE_HEADER = 16


class _Node:
    """Server-side build helper (becomes bytes at freeze time)."""

    def __init__(self, is_leaf):
        self.is_leaf = is_leaf
        self.keys = []
        self.children = []   # node refs (inner) — resolved to addresses
        self.slots = []      # (ver, ptr, bound) per key (leaf)
        self.addr = None

    @property
    def min_key(self):
        """Smallest key in this subtree (separators must use this, not
        ``keys[0]`` — an inner node's first key is already a separator,
        i.e. the minimum of its *second* child's subtree)."""
        node = self
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]


class BTreeServer:
    """Builds and hosts the remote B-tree."""

    def __init__(self, sim, fabric, host_name, backend_cls, config=None,
                 fanout=8, max_value_bytes=256, capacity=8192,
                 backend_kwargs=None):
        self.sim = sim
        self.fanout = fanout
        self.max_value_bytes = max_value_bytes
        value_buffer = 8 + max_value_bytes
        memory_bytes = (capacity * (self.node_bytes + value_buffer)
                        + (4 << 20))
        self.prism = PrismServer(sim, fabric, host_name, backend_cls,
                                 config=config, memory_bytes=memory_bytes,
                                 backend_kwargs=backend_kwargs)
        self.nodes_base, self.nodes_rkey = self.prism.add_region(
            capacity * self.node_bytes)
        self.freelist_id, self.values_rkey = self.prism.create_freelist(
            value_buffer, capacity, name="btree-values")
        self._next_node = 0
        self.root_addr = None
        self.height = 0

    @property
    def host_name(self):
        return self.prism.host_name

    @property
    def node_bytes(self):
        # header + keys + max(children, slots)
        return (NODE_HEADER + 8 * self.fanout
                + max(8 * (self.fanout + 1), SLOT_SIZE * self.fanout))

    # -- bulk build (setup time) ------------------------------------------

    def build(self, items):
        """Bulk-load ``items`` (sorted (key, value) pairs) bottom-up."""
        items = sorted(items)
        if not items:
            raise ValueError("cannot build an empty tree")
        leaves = []
        per_leaf = max(2, self.fanout - 1)
        for start in range(0, len(items), per_leaf):
            leaf = _Node(is_leaf=True)
            for key, value in items[start:start + per_leaf]:
                ver = bump_tag(0, 0)
                buffer = self.prism.freelist(self.freelist_id).pop()
                payload = pack_uint(ver, 8) + value
                self.prism.space.write(buffer, payload)
                leaf.keys.append(key)
                leaf.slots.append((ver, buffer, len(payload)))
            leaves.append(leaf)
        level = leaves
        self.height = 1
        while len(level) > 1:
            parents = []
            per_inner = max(2, self.fanout)
            for start in range(0, len(level), per_inner):
                group = level[start:start + per_inner]
                inner = _Node(is_leaf=False)
                inner.children = group
                inner.keys = [child.min_key for child in group[1:]]
                parents.append(inner)
            level = parents
            self.height += 1
        self._freeze(level[0])
        self.root_addr = level[0].addr
        return self.root_addr

    def _freeze(self, node):
        for child in node.children:
            self._freeze(child)
        node.addr = self.nodes_base + self._next_node * self.node_bytes
        self._next_node += 1
        self.prism.space.write(node.addr, self._encode(node))

    def _encode(self, node):
        blob = bytearray(self.node_bytes)
        blob[0] = 1 if node.is_leaf else 0
        blob[8:16] = pack_uint(len(node.keys), 8)
        for index, key in enumerate(node.keys):
            offset = NODE_HEADER + 8 * index
            blob[offset:offset + 8] = pack_uint(key, 8)
        body = NODE_HEADER + 8 * self.fanout
        if node.is_leaf:
            for index, (ver, ptr, bound) in enumerate(node.slots):
                offset = body + SLOT_SIZE * index
                blob[offset:offset + SLOT_SIZE] = (
                    pack_uint(ver, 8) + pack_uint(ptr, 8)
                    + pack_uint(bound, 8))
        else:
            for index, child in enumerate(node.children):
                offset = body + 8 * index
                blob[offset:offset + 8] = pack_uint(child.addr, 8)
        return bytes(blob)

    # -- decoding helpers shared with the client ----------------------------

    def decode_node(self, blob):
        is_leaf = blob[0] == 1
        nkeys = unpack_uint(blob, 8, 8)
        keys = [unpack_uint(blob, NODE_HEADER + 8 * i, 8)
                for i in range(nkeys)]
        body = NODE_HEADER + 8 * self.fanout
        if is_leaf:
            slots = [body + SLOT_SIZE * i for i in range(nkeys)]
            return is_leaf, keys, slots
        children = [unpack_uint(blob, body + 8 * i, 8)
                    for i in range(nkeys + 1)]
        return is_leaf, keys, children


class BTreeClient:
    """Client traversal in three access modes."""

    MODES = ("rdma", "rdma-cache", "prism-cache")

    def __init__(self, sim, fabric, client_name, server):
        self.sim = sim
        self.server = server
        self.client = PrismClient(sim, fabric, client_name, server.prism)
        self._node_cache = {}  # addr -> decoded node + raw
        self.gets = 0

    def round_trips(self):
        return self.client.round_trips

    # -- traversal ---------------------------------------------------------

    def _fetch_node(self, addr, use_cache):
        if use_cache and addr in self._node_cache:
            return self._node_cache[addr]
        blob = yield from self.client.read(addr, self.server.node_bytes,
                                           rkey=self.server.nodes_rkey)
        decoded = self.server.decode_node(blob)
        if use_cache:
            self._node_cache[addr] = decoded
        return decoded

    def _find_leaf(self, key, use_cache):
        """Walk to the leaf; returns (leaf_addr, keys, slot_offsets)."""
        addr = self.server.root_addr
        while True:
            is_leaf, keys, rest = yield from self._fetch_node(addr,
                                                              use_cache)
            if is_leaf:
                return addr, keys, rest
            child_index = bisect.bisect_right(keys, key)
            addr = rest[child_index]

    def get(self, key, mode="prism-cache"):
        """Process helper: returns the value bytes, or None."""
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}")
        use_cache = mode != "rdma"
        leaf_addr, keys, slot_offsets = yield from self._find_leaf(
            key, use_cache)
        self.gets += 1
        try:
            slot_index = keys.index(key)
        except ValueError:
            return None
        slot_addr = leaf_addr + slot_offsets[slot_index]
        if mode == "prism-cache":
            # One bounded indirect READ of the slot's ⟨ptr, bound⟩.
            result = yield from self.client.execute(ReadOp(
                addr=slot_addr + 8, length=8 + self.server.max_value_bytes,
                rkey=self.server.nodes_rkey, indirect=True, bounded=True))
            outcome = result[0]
            if outcome.status is OpStatus.NAK:
                if isinstance(outcome.error, AccessViolation):
                    return None
                raise outcome.error
            return bytes(outcome.value[8:])
        # Pilaf-shaped: read the pointer cell, then the value.
        slot = yield from self.client.read(slot_addr, SLOT_SIZE,
                                           rkey=self.server.nodes_rkey)
        _ver, ptr, bound = (unpack_uint(slot, 0, 8),
                            unpack_uint(slot, 8, 8),
                            unpack_uint(slot, 16, 8))
        if ptr == 0:
            return None
        value = yield from self.client.read(ptr, bound,
                                            rkey=self.server.values_rkey)
        return bytes(value[8:])

    # -- updates (PRISM out-of-place; keeps cached slot addresses valid) ---

    def update(self, key, value, use_cache=True):
        """Process helper: install a new value for an existing key.

        Returns True on install, False if superseded by a newer
        concurrent update (last-writer-wins by version, as PRISM-KV).
        """
        leaf_addr, keys, slot_offsets = yield from self._find_leaf(
            key, use_cache)
        try:
            slot_index = keys.index(key)
        except ValueError:
            raise KeyError(key)
        slot_addr = leaf_addr + slot_offsets[slot_index]
        slot = yield from self.client.read(slot_addr, SLOT_SIZE,
                                           rkey=self.server.nodes_rkey)
        old_ver = unpack_uint(slot, 0, 8)
        new_ver = bump_tag(old_ver, self.client.connection.id & 0xFFFF)
        payload = pack_uint(new_ver, 8) + value
        tmp = self.client.sram_slot
        result = yield from self.client.execute(
            WriteOp(addr=tmp, data=pack_uint(new_ver, 8),
                    rkey=self.server.prism.sram_rkey),
            WriteOp(addr=tmp + 16, data=pack_uint(len(payload), 8),
                    rkey=self.server.prism.sram_rkey),
            AllocateOp(freelist=self.server.freelist_id, data=payload,
                       rkey=self.server.values_rkey, redirect_to=tmp + 8,
                       conditional=True),
            CasOp(target=slot_addr, data=pack_uint(tmp, 8),
                  rkey=self.server.nodes_rkey, mode=CasMode.GT,
                  compare_mask=SLOT_VER_MASK, data_indirect=True,
                  operand_width=SLOT_SIZE, conditional=True),
        )
        result.raise_on_nak()
        return result[3].status is OpStatus.OK
