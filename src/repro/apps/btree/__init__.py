"""A remote B-tree index (the Cell scenario from the paper's §9).

Cell (Mitchell et al., ATC '16) serves a B-tree over RDMA; every
lookup walks the tree with one READ per level, "though caching can be
effective". The paper notes "PRISM's indirection primitives can help
many of these systems": with inner nodes cached client-side, a lookup
degenerates to Pilaf's two reads (leaf slot, then value) — which one
bounded indirect READ collapses to a single round trip, and PRISM's
out-of-place updates keep those cached slot addresses stable.
"""

from repro.apps.btree.remote_btree import BTreeClient, BTreeServer

__all__ = ["BTreeClient", "BTreeServer"]
