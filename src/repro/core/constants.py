"""Interface-level constants from the paper.

* Enhanced CAS follows the Mellanox extended-atomics limit of 32-byte
  operands (§3.3).
* Recent NICs expose a user-accessible on-NIC memory region — 256 KB on
  the paper's ConnectX-5 (§4.2) — used for redirect temporaries.
* 32 bytes of redirect scratch per connection suffices for all three
  applications (§4.2), giving 8192 connections per NIC.
"""

CAS_MAX_OPERAND_BYTES = 32
NIC_SRAM_BYTES = 256 * 1024
REDIRECT_SLOT_BYTES = 32
MAX_CONNECTIONS_PER_NIC = NIC_SRAM_BYTES // REDIRECT_SLOT_BYTES

# Wire-protocol sizing (bytes). The base transport header mirrors the
# InfiniBand BTH+RETH envelope; PRISM adds five flag bits (§4.2) which
# fit in the BTH reserved field, so the header size does not grow.
BASE_TRANSPORT_HEADER_BYTES = 30
ACK_BYTES = 12
POINTER_BYTES = 8
LENGTH_FIELD_BYTES = 4
