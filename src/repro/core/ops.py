"""Operation descriptors for the PRISM API (Table 1).

Each descriptor is an immutable, validated value object. The same
descriptors serve classic RDMA verbs (all extension flags off) and the
PRISM extensions, so a "hardware RDMA NIC" backend is simply an engine
that rejects descriptors using extension features.

Conventions:

* ``addr``/``target`` are addresses in the server's address space.
* ``rkey`` names the protection domain the client was granted.
* ``conditional`` delays the op until its predecessor in a chain
  completes and skips it if the predecessor failed (§3.4).
* ``redirect_to`` (READ / ALLOCATE only) writes the output to a server
  memory address instead of returning it (§3.4).
"""

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.constants import (
    ACK_BYTES,
    BASE_TRANSPORT_HEADER_BYTES,
    CAS_MAX_OPERAND_BYTES,
    LENGTH_FIELD_BYTES,
    POINTER_BYTES,
)
from repro.core.errors import InvalidOperation


class CasMode(enum.Enum):
    """Comparison operators for the enhanced CAS (§3.3).

    The comparison is ``compare(data & mask, *target & mask)`` — i.e.
    the client-supplied operand on the left, current memory contents on
    the right, both little-endian unsigned after masking. ``EQ`` is the
    classic compare-and-swap; ``GT`` supports the versioned-object
    pattern ("install only if my version is newer").
    """

    EQ = "eq"
    NE = "ne"
    GT = "gt"
    GE = "ge"
    LT = "lt"
    LE = "le"

    def compare(self, lhs, rhs):
        """Apply the operator: lhs is the operand, rhs the memory value."""
        if self is CasMode.EQ:
            return lhs == rhs
        if self is CasMode.NE:
            return lhs != rhs
        if self is CasMode.GT:
            return lhs > rhs
        if self is CasMode.GE:
            return lhs >= rhs
        if self is CasMode.LT:
            return lhs < rhs
        return lhs <= rhs


_EXTENDED_CAS_MODES = frozenset(
    {CasMode.NE, CasMode.GT, CasMode.GE, CasMode.LT, CasMode.LE})


class _BaseOp:
    """Shared validation/introspection for all operation descriptors."""

    def _common_checks(self):
        if self.rkey is None:
            raise InvalidOperation(f"{self.opname}: rkey is required")
        if getattr(self, "conditional", False) and self.opname == "ALLOCATE":
            # Conditional ALLOCATE is legal; nothing extra to check.
            pass

    @property
    def opname(self):
        return type(self).__name__.replace("Op", "").upper()

    def uses_extensions(self):
        """True if any PRISM-only feature is engaged.

        A descriptor with this False is expressible as a classic RDMA
        verb and accepted by plain RDMA NIC backends.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ReadOp(_BaseOp):
    """READ(ptr addr, size len, bool indirect, bool bounded) -> byte[]"""

    addr: int
    length: int
    rkey: int
    indirect: bool = False
    bounded: bool = False
    conditional: bool = False
    redirect_to: Optional[int] = None

    def __post_init__(self):
        self._common_checks()
        if self.length < 0:
            raise InvalidOperation("READ: negative length")
        if self.bounded and not self.indirect:
            raise InvalidOperation(
                "READ: bounded requires indirect (the bound lives in the "
                "⟨ptr, bound⟩ struct the target address points at)")

    def uses_extensions(self):
        return self.indirect or self.bounded or self.conditional or (
            self.redirect_to is not None)

    def request_bytes(self):
        return (BASE_TRANSPORT_HEADER_BYTES + POINTER_BYTES
                + LENGTH_FIELD_BYTES
                + (POINTER_BYTES if self.redirect_to is not None else 0))

    def response_bytes(self, result_len):
        if self.redirect_to is not None:
            return ACK_BYTES
        return BASE_TRANSPORT_HEADER_BYTES + result_len


@dataclass(frozen=True)
class WriteOp(_BaseOp):
    """WRITE(ptr addr, byte[] data, size len, addr_indirect,
    addr_bounded, data_indirect)"""

    addr: int
    data: bytes
    rkey: int
    length: Optional[int] = None
    addr_indirect: bool = False
    addr_bounded: bool = False
    data_indirect: bool = False
    conditional: bool = False

    def __post_init__(self):
        self._common_checks()
        object.__setattr__(self, "data", bytes(self.data))
        if self.length is None:
            if self.data_indirect:
                raise InvalidOperation(
                    "WRITE: explicit length required with data_indirect")
            object.__setattr__(self, "length", len(self.data))
        if self.length < 0:
            raise InvalidOperation("WRITE: negative length")
        if self.addr_bounded and not self.addr_indirect:
            raise InvalidOperation("WRITE: addr_bounded requires addr_indirect")
        if self.data_indirect and len(self.data) != POINTER_BYTES:
            raise InvalidOperation(
                "WRITE: with data_indirect, data must be an 8-byte server "
                "pointer")
        if not self.data_indirect and len(self.data) != self.length:
            raise InvalidOperation(
                f"WRITE: data is {len(self.data)} bytes but length={self.length}")

    def uses_extensions(self):
        return (self.addr_indirect or self.addr_bounded or self.data_indirect
                or self.conditional)

    def request_bytes(self):
        payload = POINTER_BYTES if self.data_indirect else len(self.data)
        return (BASE_TRANSPORT_HEADER_BYTES + POINTER_BYTES
                + LENGTH_FIELD_BYTES + payload)

    def response_bytes(self, result_len=0):
        return ACK_BYTES


@dataclass(frozen=True)
class AllocateOp(_BaseOp):
    """ALLOCATE(qp freelist, byte[] data, size len) -> ptr (§3.2)."""

    freelist: int
    data: bytes
    rkey: int
    conditional: bool = False
    redirect_to: Optional[int] = None

    def __post_init__(self):
        self._common_checks()
        object.__setattr__(self, "data", bytes(self.data))
        if self.freelist < 0:
            raise InvalidOperation("ALLOCATE: bad freelist id")

    @property
    def length(self):
        return len(self.data)

    def uses_extensions(self):
        return True  # ALLOCATE itself is a PRISM extension.

    def request_bytes(self):
        return (BASE_TRANSPORT_HEADER_BYTES + LENGTH_FIELD_BYTES
                + len(self.data)
                + (POINTER_BYTES if self.redirect_to is not None else 0))

    def response_bytes(self, result_len=POINTER_BYTES):
        if self.redirect_to is not None:
            return ACK_BYTES
        return BASE_TRANSPORT_HEADER_BYTES + POINTER_BYTES


def _all_ones(nbytes):
    return (1 << (8 * nbytes)) - 1


@dataclass(frozen=True)
class FetchAddOp(_BaseOp):
    """Classic RDMA FETCH-AND-ADD: atomically ``*target += delta``
    (mod 2^64), returning the previous value. §4.2 notes its adder is
    the hardware PRISM's comparison unit; the op itself is standard
    IB verbs, supported by every backend."""

    target: int
    delta: int
    rkey: int
    conditional: bool = False

    def __post_init__(self):
        self._common_checks()
        if not -(1 << 63) <= self.delta < (1 << 63):
            raise InvalidOperation("FETCHADD: delta must fit in 64 bits")

    def uses_extensions(self):
        return self.conditional

    def request_bytes(self):
        return BASE_TRANSPORT_HEADER_BYTES + POINTER_BYTES + 8

    def response_bytes(self, result_len=8):
        return BASE_TRANSPORT_HEADER_BYTES + 8


@dataclass(frozen=True)
class CasOp(_BaseOp):
    """Enhanced compare-and-swap (§3.3).

    Atomically: if ``mode.compare(cmp & compare_mask, *target &
    compare_mask)`` then ``*target = (*target & ~swap_mask) | (data &
    swap_mask)``, where ``cmp`` is ``compare_data`` when given and
    ``data`` otherwise. Returns the previous value of ``*target``
    either way. Masks default to all-ones over the operand width.
    Indirect flags dereference the corresponding argument first (not
    atomically).

    ``compare_data`` mirrors the separate compare/swap operands of the
    IB verbs' atomic CmpSwap (and Mellanox extended atomics) — it is
    what a classic spinlock needs (compare 0, swap owner id). The
    paper's Table 1 shows the single-operand form, which suffices for
    PRISM's own applications because they compare one *field* and swap
    another.
    """

    target: int
    data: bytes
    rkey: int
    mode: CasMode = CasMode.EQ
    compare_mask: Optional[int] = None
    swap_mask: Optional[int] = None
    compare_data: Optional[bytes] = None
    target_indirect: bool = False
    data_indirect: bool = False
    conditional: bool = False
    operand_width: Optional[int] = field(default=None)

    def __post_init__(self):
        self._common_checks()
        object.__setattr__(self, "data", bytes(self.data))
        width = self.operand_width
        if width is None:
            if self.data_indirect:
                raise InvalidOperation(
                    "CAS: operand_width required with data_indirect")
            width = len(self.data)
            object.__setattr__(self, "operand_width", width)
        if not 1 <= width <= CAS_MAX_OPERAND_BYTES:
            raise InvalidOperation(
                f"CAS: operand width {width} outside [1, {CAS_MAX_OPERAND_BYTES}]")
        if self.data_indirect:
            if len(self.data) != POINTER_BYTES:
                raise InvalidOperation(
                    "CAS: with data_indirect, data must be an 8-byte pointer")
        elif len(self.data) != width:
            raise InvalidOperation(
                f"CAS: data is {len(self.data)} bytes, operand width {width}")
        if self.compare_data is not None:
            object.__setattr__(self, "compare_data", bytes(self.compare_data))
            if len(self.compare_data) != width:
                raise InvalidOperation(
                    f"CAS: compare_data is {len(self.compare_data)} bytes, "
                    f"operand width {width}")
        full = _all_ones(width)
        if self.compare_mask is None:
            object.__setattr__(self, "compare_mask", full)
        if self.swap_mask is None:
            object.__setattr__(self, "swap_mask", full)
        for mask_name in ("compare_mask", "swap_mask"):
            mask = getattr(self, mask_name)
            if mask < 0 or mask > full:
                raise InvalidOperation(
                    f"CAS: {mask_name} {mask:#x} exceeds operand width")

    def uses_extensions(self):
        width = self.operand_width
        classic = (width == 8
                   and self.mode is CasMode.EQ
                   and self.compare_mask == _all_ones(8)
                   and self.swap_mask == _all_ones(8)
                   and not self.target_indirect
                   and not self.data_indirect
                   and not self.conditional)
        return not classic

    def uses_extended_atomics(self):
        """Features available on Mellanox extended atomics (not PRISM-only)."""
        return (self.operand_width != 8
                or self.compare_mask != _all_ones(self.operand_width)
                or self.swap_mask != _all_ones(self.operand_width))

    def uses_prism_only_features(self):
        return (self.mode in _EXTENDED_CAS_MODES or self.target_indirect
                or self.data_indirect or self.conditional)

    def request_bytes(self):
        width = self.operand_width
        payload = POINTER_BYTES if self.data_indirect else width
        if self.compare_data is not None:
            payload += width
        # compare/swap masks travel with the request, as in the
        # Mellanox extended-atomics wire format.
        return (BASE_TRANSPORT_HEADER_BYTES + POINTER_BYTES
                + 2 * width + payload)

    def response_bytes(self, result_len=None):
        return BASE_TRANSPORT_HEADER_BYTES + self.operand_width
