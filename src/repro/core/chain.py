"""Operation chaining (§3.4).

A :class:`Chain` is an ordered list of operations submitted in one
request and executed server-side in order. Conditional ops execute only
if their predecessor succeeded; READ/ALLOCATE output can be redirected
into server memory so later ops in the chain can consume it via the
``*_indirect`` flags.

The canonical PRISM pattern (out-of-place update, §3.5) is::

    chain(
        AllocateOp(freelist, data=new_value, rkey=k, redirect_to=tmp),
        CasOp(target=slot, data=pack(tmp), data_indirect=True,
              conditional=True, rkey=k, operand_width=8),
    )
"""

from repro.core.errors import InvalidOperation
from repro.core.ops import AllocateOp, CasOp, FetchAddOp, ReadOp, WriteOp

_ALLOWED_OPS = (ReadOp, WriteOp, AllocateOp, CasOp, FetchAddOp)


class Chain:
    """An immutable, validated sequence of PRISM operations."""

    __slots__ = ("ops",)

    def __init__(self, ops):
        ops = tuple(ops)
        if not ops:
            raise InvalidOperation("empty chain")
        for op in ops:
            if not isinstance(op, _ALLOWED_OPS):
                raise InvalidOperation(f"not a PRISM operation: {op!r}")
        if ops[0].conditional:
            raise InvalidOperation(
                "first operation of a chain cannot be conditional")
        self.ops = ops

    def __len__(self):
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __getitem__(self, index):
        return self.ops[index]

    def uses_extensions(self):
        """True if the chain needs PRISM (always, for len > 1)."""
        return len(self.ops) > 1 or self.ops[0].uses_extensions()

    def request_bytes(self):
        """Total request size: one transport envelope, ops back to back."""
        return sum(op.request_bytes() for op in self.ops)

    def response_bytes(self, results):
        """Total response size given per-op result payload lengths."""
        total = 0
        for op, result in zip(self.ops, results):
            result_len = len(result) if isinstance(result, (bytes, bytearray)) else 0
            total += op.response_bytes(result_len)
        return total

    def __repr__(self):
        return f"<Chain {[op.opname for op in self.ops]}>"


def chain(*ops):
    """Convenience constructor: ``chain(op1, op2, ...)``."""
    return Chain(ops)
