"""The PRISM interface (paper §3, Table 1).

This package defines *what* the primitives mean — operation
descriptors, the enhanced-CAS comparison algebra, chain composition
rules, and the wire encoding — independent of *where* they execute.
Execution engines and timing backends live in :mod:`repro.prism`.
"""

from repro.core.chain import Chain, chain
from repro.core.constants import (
    CAS_MAX_OPERAND_BYTES,
    NIC_SRAM_BYTES,
    REDIRECT_SLOT_BYTES,
)
from repro.core.errors import (
    AccessViolation,
    AllocationFailure,
    CasFailure,
    ChainAborted,
    InvalidOperation,
    PrismError,
    RemoteNak,
)
from repro.core.ops import (
    AllocateOp,
    CasMode,
    CasOp,
    FetchAddOp,
    ReadOp,
    WriteOp,
)

__all__ = [
    "AccessViolation",
    "AllocateOp",
    "AllocationFailure",
    "CAS_MAX_OPERAND_BYTES",
    "CasFailure",
    "CasMode",
    "CasOp",
    "FetchAddOp",
    "Chain",
    "ChainAborted",
    "InvalidOperation",
    "NIC_SRAM_BYTES",
    "PrismError",
    "ReadOp",
    "REDIRECT_SLOT_BYTES",
    "RemoteNak",
    "WriteOp",
    "chain",
]
