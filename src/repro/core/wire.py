"""Wire-protocol encoding for PRISM requests (§4.2).

The paper's extension needs five new flags in the IB base transport
header (BTH): two indirection flags, one bounded-pointer flag, and two
chaining flags (conditional, redirect). We encode each operation as a
BTH-like fixed header followed by operands. This module exists to show
the extension fits the existing envelope and to give the test suite a
byte-exact round-trippable format; the simulator itself passes
descriptor objects and only uses the *sizes*.

Header layout (little-endian)::

    u8  opcode      u8 flags        u16 reserved
    u32 rkey        u64 target/freelist
    u32 length      u8 mode         u8 operand_width  u16 reserved2

followed by, when present: redirect address (u64), compare mask,
swap mask, payload.
"""

import struct

from repro.core.errors import InvalidOperation
from repro.core.ops import (
    AllocateOp,
    CasMode,
    CasOp,
    FetchAddOp,
    ReadOp,
    WriteOp,
)

OPCODE_READ = 0x01
OPCODE_WRITE = 0x02
OPCODE_ALLOCATE = 0x03
OPCODE_CAS = 0x04
OPCODE_FETCHADD = 0x05

# The five PRISM BTH flags (§4.2) plus one pre-existing bounded bit we
# reuse for WRITE's data_indirect distinction.
FLAG_ADDR_INDIRECT = 1 << 0
FLAG_DATA_INDIRECT = 1 << 1
FLAG_BOUNDED = 1 << 2
FLAG_CONDITIONAL = 1 << 3
FLAG_REDIRECT = 1 << 4
FLAG_HAS_COMPARE = 1 << 5  # separate compare operand (classic CmpSwap form)

_HEADER = struct.Struct("<BBHIQIBBH")

_MODE_CODES = {mode: index for index, mode in enumerate(CasMode)}
_MODES_BY_CODE = {index: mode for mode, index in _MODE_CODES.items()}


def _mask_bytes(mask, width):
    return mask.to_bytes(width, "little")


def encode_op(op):
    """Serialize one operation descriptor to bytes."""
    if isinstance(op, ReadOp):
        flags = ((FLAG_ADDR_INDIRECT if op.indirect else 0)
                 | (FLAG_BOUNDED if op.bounded else 0)
                 | (FLAG_CONDITIONAL if op.conditional else 0)
                 | (FLAG_REDIRECT if op.redirect_to is not None else 0))
        header = _HEADER.pack(OPCODE_READ, flags, 0, op.rkey, op.addr,
                              op.length, 0, 0, 0)
        tail = struct.pack("<Q", op.redirect_to) if op.redirect_to is not None else b""
        return header + tail
    if isinstance(op, WriteOp):
        flags = ((FLAG_ADDR_INDIRECT if op.addr_indirect else 0)
                 | (FLAG_DATA_INDIRECT if op.data_indirect else 0)
                 | (FLAG_BOUNDED if op.addr_bounded else 0)
                 | (FLAG_CONDITIONAL if op.conditional else 0))
        header = _HEADER.pack(OPCODE_WRITE, flags, 0, op.rkey, op.addr,
                              op.length, 0, 0, 0)
        return header + op.data
    if isinstance(op, AllocateOp):
        flags = ((FLAG_CONDITIONAL if op.conditional else 0)
                 | (FLAG_REDIRECT if op.redirect_to is not None else 0))
        header = _HEADER.pack(OPCODE_ALLOCATE, flags, 0, op.rkey, op.freelist,
                              len(op.data), 0, 0, 0)
        tail = struct.pack("<Q", op.redirect_to) if op.redirect_to is not None else b""
        return header + tail + op.data
    if isinstance(op, CasOp):
        flags = ((FLAG_ADDR_INDIRECT if op.target_indirect else 0)
                 | (FLAG_DATA_INDIRECT if op.data_indirect else 0)
                 | (FLAG_CONDITIONAL if op.conditional else 0)
                 | (FLAG_HAS_COMPARE if op.compare_data is not None else 0))
        width = op.operand_width
        header = _HEADER.pack(OPCODE_CAS, flags, 0, op.rkey, op.target,
                              len(op.data), _MODE_CODES[op.mode], width, 0)
        compare = op.compare_data if op.compare_data is not None else b""
        return (header + _mask_bytes(op.compare_mask, width)
                + _mask_bytes(op.swap_mask, width) + compare + op.data)
    if isinstance(op, FetchAddOp):
        flags = FLAG_CONDITIONAL if op.conditional else 0
        header = _HEADER.pack(OPCODE_FETCHADD, flags, 0, op.rkey, op.target,
                              0, 0, 8, 0)
        return header + struct.pack("<q", op.delta)
    raise InvalidOperation(f"cannot encode {op!r}")


def decode_op(buffer, offset=0):
    """Decode one operation; returns ``(op, next_offset)``."""
    if offset + _HEADER.size > len(buffer):
        raise InvalidOperation("truncated operation header")
    (opcode, flags, _r0, rkey, target, length, mode_code, width,
     _r2) = _HEADER.unpack_from(buffer, offset)
    cursor = offset + _HEADER.size

    def take(n, what):
        nonlocal cursor
        if cursor + n > len(buffer):
            raise InvalidOperation(f"truncated {what}")
        piece = bytes(buffer[cursor:cursor + n])
        cursor += n
        return piece

    conditional = bool(flags & FLAG_CONDITIONAL)
    if opcode == OPCODE_READ:
        redirect_to = None
        if flags & FLAG_REDIRECT:
            redirect_to = struct.unpack("<Q", take(8, "redirect address"))[0]
        op = ReadOp(addr=target, length=length, rkey=rkey,
                    indirect=bool(flags & FLAG_ADDR_INDIRECT),
                    bounded=bool(flags & FLAG_BOUNDED),
                    conditional=conditional, redirect_to=redirect_to)
        return op, cursor
    if opcode == OPCODE_WRITE:
        data_indirect = bool(flags & FLAG_DATA_INDIRECT)
        payload = take(8 if data_indirect else length, "write payload")
        op = WriteOp(addr=target, data=payload, rkey=rkey, length=length,
                     addr_indirect=bool(flags & FLAG_ADDR_INDIRECT),
                     addr_bounded=bool(flags & FLAG_BOUNDED),
                     data_indirect=data_indirect, conditional=conditional)
        return op, cursor
    if opcode == OPCODE_ALLOCATE:
        redirect_to = None
        if flags & FLAG_REDIRECT:
            redirect_to = struct.unpack("<Q", take(8, "redirect address"))[0]
        payload = take(length, "allocate payload")
        op = AllocateOp(freelist=target, data=payload, rkey=rkey,
                        conditional=conditional, redirect_to=redirect_to)
        return op, cursor
    if opcode == OPCODE_CAS:
        compare_mask = int.from_bytes(take(width, "compare mask"), "little")
        swap_mask = int.from_bytes(take(width, "swap mask"), "little")
        compare_data = None
        if flags & FLAG_HAS_COMPARE:
            compare_data = take(width, "cas compare operand")
        data_indirect = bool(flags & FLAG_DATA_INDIRECT)
        payload = take(8 if data_indirect else width, "cas operand")
        op = CasOp(target=target, data=payload, rkey=rkey,
                   mode=_MODES_BY_CODE[mode_code],
                   compare_mask=compare_mask, swap_mask=swap_mask,
                   compare_data=compare_data,
                   target_indirect=bool(flags & FLAG_ADDR_INDIRECT),
                   data_indirect=data_indirect, conditional=conditional,
                   operand_width=width)
        return op, cursor
    if opcode == OPCODE_FETCHADD:
        delta = struct.unpack("<q", take(8, "fetchadd delta"))[0]
        op = FetchAddOp(target=target, delta=delta, rkey=rkey,
                        conditional=conditional)
        return op, cursor
    raise InvalidOperation(f"unknown opcode {opcode:#x}")


def encode_chain(ops):
    """Serialize a chain (or iterable of ops) back to back."""
    return b"".join(encode_op(op) for op in ops)


def decode_chain(buffer):
    """Decode a back-to-back op sequence; returns a list of descriptors."""
    ops = []
    offset = 0
    while offset < len(buffer):
        op, offset = decode_op(buffer, offset)
        ops.append(op)
    return ops
