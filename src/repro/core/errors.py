"""Error model for PRISM operations.

Errors mirror how a NIC reports failures: NAKs for protection/flow
problems, a distinguished status for CAS comparisons that did not take
(which is *not* an error — callers inspect the returned old value), and
chain aborts when a conditional's predecessor failed.
"""


class PrismError(Exception):
    """Base class for all PRISM interface errors."""


class InvalidOperation(PrismError):
    """Malformed operation descriptor (bad flags, oversized operand...)."""


class AccessViolation(PrismError):
    """rkey check failed: the target (or pointee) is outside the
    memory region the client was granted (§3.1 security discussion)."""


class RemoteNak(PrismError):
    """Receiver Not Ready or generic remote rejection."""


class AllocationFailure(RemoteNak):
    """ALLOCATE found the designated free list empty."""


class FreeListExhausted(AllocationFailure):
    """A free-list queue pair ran dry; carries its final watermark
    counters so exhaustion is diagnosable (did the server never post
    enough buffers, or did recycling fall behind the pop rate?)."""

    def __init__(self, name, posted, popped, high_watermark):
        super().__init__(
            f"{name}: free list exhausted (posted={posted}, "
            f"popped={popped}, high watermark={high_watermark}, "
            "low watermark=0)")
        self.freelist_name = name
        self.posted = posted
        self.popped = popped
        self.high_watermark = high_watermark


class CasFailure(PrismError):
    """Internal marker used by engines to signal an unsuccessful
    comparison to the chain executor. Not raised to clients: a failed
    CAS returns the old value; only *conditional successors* see it."""


class ChainAborted(PrismError):
    """A conditional operation was skipped because its predecessor
    failed. Carries the index of the first op that did not execute."""

    def __init__(self, first_skipped_index, cause=None):
        super().__init__(f"chain aborted at op {first_skipped_index}: {cause}")
        self.first_skipped_index = first_skipped_index
        self.cause = cause
