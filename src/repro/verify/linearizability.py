"""Linearizability checking for read/write registers (Wing & Gong '93).

The checker searches for a legal sequential order of one register's
operations that (1) respects real-time precedence and (2) makes every
read return the most recently written value. The search is exponential
in the worst case but fast for the history sizes our tests record; the
frontier memoization (set of "already explored" completed-op subsets)
keeps typical cases near-linear.

``check_linearizable`` partitions a mixed history by key (registers are
independent) and checks each key's sub-history.
"""

from collections import defaultdict


class LinearizabilityViolation(AssertionError):
    """The history admits no legal linearization."""


def _minimal_ops(pending, done_mask):
    """Ops eligible to linearize next: not done, and no undone op
    strictly precedes them."""
    eligible = []
    for i, op in enumerate(pending):
        if done_mask & (1 << i):
            continue
        blocked = False
        for j, other in enumerate(pending):
            if i != j and not done_mask & (1 << j) and other.precedes(op):
                blocked = True
                break
        if not blocked:
            eligible.append(i)
    return eligible


def _check_register(ops, initial_value):
    """DFS over linearization prefixes for a single register."""
    ops = sorted(ops, key=lambda op: op.start)
    n = len(ops)
    if n == 0:
        return True
    full_mask = (1 << n) - 1
    # State: (done_mask, current_value_key). Values may be unhashable
    # bytes-likes; normalize to bytes/None.
    seen = set()
    stack = [(0, initial_value)]
    while stack:
        done_mask, value = stack.pop()
        if done_mask == full_mask:
            return True
        state = (done_mask, value)
        if state in seen:
            continue
        seen.add(state)
        for i in _minimal_ops(ops, done_mask):
            op = ops[i]
            if op.kind == "put":
                stack.append((done_mask | (1 << i), op.value))
            else:  # get
                if op.value == value:
                    stack.append((done_mask | (1 << i), value))
    return False


def check_linearizable(history, initial_values=None, keys=None):
    """Check a (possibly multi-key) register history.

    ``history`` is an iterable of :class:`~repro.verify.history.Invocation`
    with kinds 'get'/'put'. ``initial_values`` maps key -> value present
    before the history started (default None per key).

    Raises :class:`LinearizabilityViolation` naming the offending key;
    returns the number of keys checked on success.
    """
    initial_values = initial_values or {}
    by_key = defaultdict(list)
    for invocation in history:
        by_key[invocation.key].append(invocation)
    checked = 0
    for key, ops in by_key.items():
        if keys is not None and key not in keys:
            continue
        if not _check_register(ops, initial_values.get(key)):
            raise LinearizabilityViolation(
                f"history for key {key!r} is not linearizable "
                f"({len(ops)} ops)")
        checked += 1
    return checked
