"""Serializability checking for transactional histories.

PRISM-TX stamps every committed transaction with its timestamp and
claims transactions "appear to execute in timestamp order" (§8.2). That
gives us a direct check: replay the committed transactions in timestamp
order against an in-memory model and verify every transaction read
exactly the values the replay predicts. This is stronger than conflict-
serializability testing — it validates the specific equivalent serial
order the protocol promises.

For protocols without exposed timestamps (FaRM), ``infer_order=True``
falls back to checking *some* serial order exists over the per-key
version chains (version order induced by observed reads/writes).
"""

from collections import defaultdict


class SerializabilityViolation(AssertionError):
    """No valid serial order (or the claimed TS order is not valid)."""


class CommittedTxn:
    """One committed transaction for checking."""

    __slots__ = ("txn_id", "timestamp", "reads", "writes", "start", "finish")

    def __init__(self, txn_id, timestamp, reads, writes, start=None,
                 finish=None):
        self.txn_id = txn_id
        self.timestamp = timestamp
        self.reads = dict(reads)     # key -> value observed
        self.writes = dict(writes)   # key -> value installed
        self.start = start
        self.finish = finish


def check_timestamp_serializable(transactions, initial_values):
    """Replay in timestamp order; every read must match the model.

    Also enforces external consistency where visible: if T1 finished
    before T2 started and both touch a key, T1's timestamp must be
    smaller (real-time order respected for non-overlapping conflicting
    transactions). Returns the number of reads validated.
    """
    ordered = sorted(transactions, key=lambda t: t.timestamp)
    timestamps = [t.timestamp for t in ordered]
    if len(set(timestamps)) != len(timestamps):
        raise SerializabilityViolation("duplicate commit timestamps")

    state = dict(initial_values)
    validated = 0
    for txn in ordered:
        for key, observed in txn.reads.items():
            expected = state.get(key)
            if observed != expected:
                raise SerializabilityViolation(
                    f"txn {txn.txn_id} (ts={txn.timestamp}) read "
                    f"{observed!r} for key {key!r}, but the serial replay "
                    f"expects {expected!r}")
            validated += 1
        state.update(txn.writes)

    # Real-time check for conflicting, non-overlapping transactions.
    for a in transactions:
        if a.finish is None:
            continue
        for b in transactions:
            if b.start is None or a is b:
                continue
            if a.finish <= b.start and a.timestamp > b.timestamp:
                conflict = (set(a.reads) | set(a.writes)) & (
                    set(b.reads) | set(b.writes))
                if conflict:
                    raise SerializabilityViolation(
                        f"txn {a.txn_id} finished before {b.txn_id} started "
                        f"but was ordered after it (keys {conflict})")
    return validated


def check_serializable(transactions, initial_values, infer_order=False):
    """Entry point. With ``infer_order`` the serial order is inferred
    from per-key write chains instead of explicit timestamps."""
    if not infer_order:
        return check_timestamp_serializable(transactions, initial_values)
    ordered = _infer_version_order(transactions, initial_values)
    state = dict(initial_values)
    validated = 0
    for txn in ordered:
        for key, observed in txn.reads.items():
            if observed != state.get(key):
                raise SerializabilityViolation(
                    f"txn {txn.txn_id}: inferred order invalid at "
                    f"key {key!r}")
            validated += 1
        state.update(txn.writes)
    return validated


def _infer_version_order(transactions, initial_values):
    """Topologically order transactions by read-from / version edges.

    Builds edges: if T2 read a value T1 wrote, T1 < T2; if T read the
    initial value of a key, T precedes every writer of that key.
    Falls back to start-time order among unconstrained pairs.
    """
    writers = defaultdict(dict)  # key -> value -> txn
    for txn in transactions:
        for key, value in txn.writes.items():
            writers[key][_norm(value)] = txn

    successors = defaultdict(set)
    indegree = defaultdict(int)
    txns = list(transactions)
    for txn in txns:
        for key, observed in txn.reads.items():
            source = writers.get(key, {}).get(_norm(observed))
            if source is not None and source is not txn:
                if txn not in successors[source]:
                    successors[source].add(txn)
                    indegree[txn] += 1
            elif _norm(observed) == _norm(initial_values.get(key)):
                for writer in writers.get(key, {}).values():
                    if writer is not txn and txn not in successors[txn]:
                        if writer not in successors[txn]:
                            successors[txn].add(writer)
                            indegree[writer] += 1

    ready = sorted((t for t in txns if indegree[t] == 0),
                   key=lambda t: (t.start if t.start is not None else 0))
    ordered = []
    while ready:
        txn = ready.pop(0)
        ordered.append(txn)
        for successor in sorted(successors[txn], key=lambda t: t.txn_id):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
        ready.sort(key=lambda t: (t.start if t.start is not None else 0))
    if len(ordered) != len(txns):
        raise SerializabilityViolation("cyclic read-from dependencies")
    return ordered


def _norm(value):
    if isinstance(value, bytearray):
        return bytes(value)
    return value
