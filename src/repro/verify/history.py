"""Operation histories recorded from simulated runs."""

from dataclasses import dataclass, field
from itertools import count
from typing import Optional


@dataclass
class Invocation:
    """One completed operation in a concurrent history.

    ``start``/``finish`` are simulated timestamps; real-time order
    between non-overlapping operations is what linearizability must
    respect.
    """

    op_id: int
    client: object
    kind: str          # "get" / "put" / "txn"
    key: object
    value: object      # written value (put) or observed value (get)
    start: float
    finish: float
    extra: dict = field(default_factory=dict)

    def overlaps(self, other):
        return self.start < other.finish and other.start < self.finish

    def precedes(self, other):
        """Strict real-time order: this finished before that started."""
        return self.finish <= other.start


class HistoryRecorder:
    """Collects invocations; wraps client process helpers to time them."""

    def __init__(self, sim):
        self.sim = sim
        self.invocations = []
        self._ids = count(1)

    def record(self, client, kind, key, value, start, finish, **extra):
        invocation = Invocation(next(self._ids), client, kind, key, value,
                                start, finish, dict(extra))
        self.invocations.append(invocation)
        return invocation

    def timed_get(self, client_name, getter, key):
        """Process helper: run ``getter(key)`` and record a 'get'."""
        start = self.sim.now
        value = yield from getter(key)
        self.record(client_name, "get", key, value, start, self.sim.now)
        return value

    def timed_put(self, client_name, putter, key, value):
        """Process helper: run ``putter(key, value)`` and record a 'put'."""
        start = self.sim.now
        yield from putter(key, value)
        self.record(client_name, "put", key, value, start, self.sim.now)

    def for_key(self, key):
        return [inv for inv in self.invocations if inv.key == key]

    def __len__(self):
        return len(self.invocations)
