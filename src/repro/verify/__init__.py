"""Correctness checkers for concurrent histories.

The paper's systems make strong consistency claims — PRISM-RS is
linearizable (§7), PRISM-TX is serializable (§8). This package records
operation histories from simulated runs and checks those claims:

* :mod:`repro.verify.history` — timed operation records;
* :mod:`repro.verify.linearizability` — a Wing & Gong style checker for
  read/write registers, with the standard memoized search;
* :mod:`repro.verify.serializability` — a version-order based checker
  for transactional histories.
"""

from repro.verify.history import HistoryRecorder, Invocation
from repro.verify.linearizability import check_linearizable
from repro.verify.serializability import check_serializable

__all__ = [
    "HistoryRecorder",
    "Invocation",
    "check_linearizable",
    "check_serializable",
]
