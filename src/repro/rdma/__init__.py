"""Classic RDMA machinery: memory regions, rkeys, queue pairs, verbs.

The protection model here is shared by plain RDMA and PRISM: PRISM's
indirect operations reuse rkey checks for both the target address and
the location it points to (§3.1).
"""

from repro.rdma.mr import AccessFlags, MemoryRegion, MemoryRegionTable
from repro.rdma.qp import CompletionQueue, QueuePair
from repro.rdma.verbs import ReceiveEndpoint, SendEndpoint

__all__ = [
    "AccessFlags",
    "CompletionQueue",
    "MemoryRegion",
    "MemoryRegionTable",
    "QueuePair",
    "ReceiveEndpoint",
    "SendEndpoint",
]
