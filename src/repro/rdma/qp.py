"""Queue pairs and completion queues.

Queue pairs serve two roles in this reproduction, mirroring the paper:

* classic SEND/RECV rendezvous (a posted receive buffer absorbs an
  incoming SEND), and
* PRISM free lists (§3.2): "we represent the free list the same way as
  a queue pair — a standard RDMA structure containing a list of free
  buffers", popped by ALLOCATE.
"""

from collections import deque
from itertools import count

from repro.core.errors import FreeListExhausted, RemoteNak

_qp_ids = count(1)


class CompletionQueue:
    """Records work completions for inspection by tests and daemons."""

    def __init__(self, capacity=None):
        self.capacity = capacity
        self._entries = deque()

    def push(self, entry):
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise RemoteNak("completion queue overflow")
        self._entries.append(entry)

    def poll(self):
        """Pop the oldest completion, or None."""
        if self._entries:
            return self._entries.popleft()
        return None

    def __len__(self):
        return len(self._entries)


class QueuePair:
    """A receive/free-buffer queue registered with the NIC.

    Buffers are ``(addr, size)`` pairs in server memory. ``pop`` is what
    the NIC does when an ALLOCATE (or incoming SEND) arrives; ``post``
    is the server-CPU side. Synchronization between posting and
    concurrent NIC operations is enforced by the owner (see
    ``repro.prism.server.PrismServer.post_buffers``), not here.
    """

    def __init__(self, buffer_size, name=None):
        self.id = next(_qp_ids)
        self.buffer_size = buffer_size
        self.name = name or f"qp{self.id}"
        self._buffers = deque()
        self.total_posted = 0
        self.total_popped = 0
        #: deepest the queue has ever been (capacity actually provisioned)
        self.high_watermark = 0
        self._min_depth = None  # shallowest depth seen after a pop

    def __len__(self):
        return len(self._buffers)

    @property
    def low_watermark(self):
        """Shallowest depth the queue reached (current depth if never
        popped) — how close ALLOCATE came to draining it."""
        if self._min_depth is None:
            return len(self._buffers)
        return self._min_depth

    def post(self, addr):
        """Add one free buffer (server CPU side)."""
        self._buffers.append(addr)
        self.total_posted += 1
        depth = len(self._buffers)
        if depth > self.high_watermark:
            self.high_watermark = depth

    def post_many(self, addrs):
        for addr in addrs:
            self.post(addr)

    def pop(self):
        """Pop the first free buffer (NIC data-plane side)."""
        if not self._buffers:
            self._min_depth = 0
            raise FreeListExhausted(self.name, posted=self.total_posted,
                                    popped=self.total_popped,
                                    high_watermark=self.high_watermark)
        self.total_popped += 1
        addr = self._buffers.popleft()
        depth = len(self._buffers)
        if self._min_depth is None or depth < self._min_depth:
            self._min_depth = depth
        return addr

    def would_satisfy(self, nbytes):
        """True if this queue's buffers can hold ``nbytes``."""
        return nbytes <= self.buffer_size
