"""Memory registration and rkey protection checks."""

import enum
from itertools import count

from repro.core.errors import AccessViolation


class AccessFlags(enum.Flag):
    """Remote access permissions attached to a registered region."""

    READ = enum.auto()
    WRITE = enum.auto()
    ATOMIC = enum.auto()
    ALL = READ | WRITE | ATOMIC


class MemoryRegion:
    """A registered, remotely accessible span of server memory."""

    __slots__ = ("rkey", "start", "length", "flags", "_mask")

    def __init__(self, rkey, start, length, flags):
        self.rkey = rkey
        self.start = start
        self.length = length
        self.flags = flags
        # Plain-int permission mask: ``check`` runs once per memory
        # access, and enum.Flag operators are ~10x an int ``&``.
        self._mask = flags.value

    @property
    def end(self):
        return self.start + self.length

    def covers(self, addr, length):
        return self.start <= addr and addr + length <= self.end

    def __repr__(self):
        return f"<MR rkey={self.rkey} [{self.start}, {self.end}) {self.flags}>"


class MemoryRegionTable:
    """The NIC's registration table.

    ``check`` enforces the paper's security rule for indirect operations:
    an operation is rejected if either the target address *or the
    location pointed to by the target address* lies in a region with a
    different rkey, or in no registered region at all (§3.1).
    """

    def __init__(self):
        self._regions = {}
        self._rkeys = count(start=0x1000)

    def register(self, start, length, flags=AccessFlags.ALL):
        """Register [start, start+length); returns the new rkey."""
        if length <= 0:
            raise AccessViolation(f"cannot register empty region at {start}")
        rkey = next(self._rkeys)
        self._regions[rkey] = MemoryRegion(rkey, start, length, flags)
        return rkey

    def deregister(self, rkey):
        self._regions.pop(rkey, None)

    def region(self, rkey):
        try:
            return self._regions[rkey]
        except KeyError:
            raise AccessViolation(f"unknown rkey {rkey:#x}") from None

    def check(self, addr, length, rkey, need):
        """Validate an access of ``length`` bytes at ``addr`` under ``rkey``.

        Returns the region on success; raises :class:`AccessViolation`
        otherwise.
        """
        try:
            region = self._regions[rkey]
        except KeyError:
            raise AccessViolation(f"unknown rkey {rkey:#x}") from None
        if need.value & ~region._mask:
            raise AccessViolation(
                f"rkey {rkey:#x} lacks {need} (has {region.flags})")
        start = region.start
        if addr < start or addr + length > start + region.length:
            raise AccessViolation(
                f"[{addr}, {addr + length}) outside region {region!r}")
        return region
