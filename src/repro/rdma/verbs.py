"""Two-sided SEND/RECV verbs (§2.1's message-passing half).

"A SEND operation transmits a message to a remote application that
calls RECEIVE." The receiving NIC pops a posted receive buffer, DMAs
the payload into it, and deposits a completion; if no buffer is posted
it answers Receiver Not Ready — the flow-control NAK §4.2 reuses for
chain buffering.

These verbs are *NIC*-executed on both ends (no remote CPU on the data
path — the application only posts buffers and polls completions),
which is why the eRPC layer (:mod:`repro.rpc`) is a separate, more
expensive animal: RPC adds dispatch + handler CPU on top of what SEND
gives you.
"""

from dataclasses import dataclass

from repro.core.errors import RemoteNak
from repro.core.ops import WriteOp
from repro.net.port import RequestChannel, send_reply
from repro.rdma.qp import QueuePair
from repro.sim.resources import Store


@dataclass
class ReceiveCompletion:
    """One received message: where it landed and who sent it."""

    buffer_addr: int
    length: int
    sender: str


class ReceiveEndpoint:
    """Server side: a receive queue + completion stream.

    Buffers are carved from the server's memory and posted to the
    receive QP; incoming SENDs consume them FIFO. The application
    consumes :class:`ReceiveCompletion`s with ``yield endpoint.recv()``.
    """

    def __init__(self, sim, server, buffer_size, buffer_count,
                 service="sendrecv"):
        self.sim = sim
        self.server = server
        self.buffer_size = buffer_size
        self.service = service
        base, self.rkey = server.add_region(buffer_size * buffer_count)
        self.qp = QueuePair(buffer_size, name=f"recv.{service}")
        self.qp.post_many(base + i * buffer_size
                          for i in range(buffer_count))
        self.completions = Store(sim, name=f"cq.{service}")
        self._connection = server.connect(f"__{service}__")
        self.rnr_naks = 0
        server.fabric.host(server.host_name).register_service(
            service, self._on_send)

    def post_receive(self, buffer_addr):
        """Return a consumed buffer to the receive queue (app side)."""
        self.qp.post(buffer_addr)

    def recv(self):
        """Event: the next :class:`ReceiveCompletion` (FIFO)."""
        return self.completions.get()

    # -- data plane -----------------------------------------------------------

    def _on_send(self, message):
        self.sim.spawn(self._absorb(message),
                       name=f"{self.service}@{self.server.host_name}")

    def _absorb(self, message):
        request = message.payload
        payload = request.body
        if len(self.qp) == 0 or len(payload) > self.buffer_size:
            # Receiver Not Ready: reject without consuming anything.
            self.rnr_naks += 1
            yield from send_reply(
                self.server.fabric, self.server.host_name, request,
                RemoteNak("receiver not ready"), 12, ok=False)
            return
        buffer_addr = self.qp.pop()
        op = WriteOp(addr=buffer_addr, data=payload, rkey=self.rkey)
        result = yield from self.server.backend.process(
            self._connection, [op])
        self.completions.put(ReceiveCompletion(
            buffer_addr=buffer_addr, length=len(payload),
            sender=message.src))
        yield from send_reply(self.server.fabric, self.server.host_name,
                              request, True, 12)


class SendEndpoint:
    """Client side: one-way messages into a remote receive queue."""

    def __init__(self, sim, fabric, client_name, server_name,
                 service="sendrecv", channel=None):
        self.sim = sim
        self.fabric = fabric
        self.client_name = client_name
        self.server_name = server_name
        self.service = service
        self.channel = channel or RequestChannel(sim, fabric, client_name)
        self.sends = 0

    def send(self, payload):
        """Process helper: SEND ``payload``; completes when the remote
        NIC has placed it (raises :class:`RemoteNak` on RNR)."""
        payload = bytes(payload)
        yield from self.channel.request(
            self.server_name, self.service, payload,
            request_size=42 + len(payload))
        self.sends += 1
