"""Reproduction of *PRISM: Rethinking the RDMA Interface for
Distributed Systems* (SOSP 2021).

A discrete-event simulated RDMA/PRISM stack plus the paper's three
applications (PRISM-KV, PRISM-RS, PRISM-TX) and their baselines (Pilaf,
lock-based ABD, FaRM). See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.

Quick tour:

* :mod:`repro.core` -- the PRISM interface (Table 1).
* :mod:`repro.prism` -- execution engine + timing backends + client/server.
* :mod:`repro.apps` -- PRISM-KV / PRISM-RS / PRISM-TX and baselines.
* :mod:`repro.workload` -- YCSB-style drivers for the evaluation.
* :mod:`repro.bench` -- harnesses that regenerate each figure.
"""

__version__ = "1.0.0"
