"""Two-sided RPC transport (eRPC-like), used by baselines and daemons."""

from repro.rpc.erpc import RpcClient, RpcConfig, RpcServer

__all__ = ["RpcClient", "RpcConfig", "RpcServer"]
