"""An eRPC-flavoured two-sided RPC layer (Kalia et al., NSDI '19).

This is the "fast RPC" the paper benchmarks against in §2.1 (5.6 µs for
a 512 B read through one switch, vs 3.2 µs one-sided) and the transport
its software PRISM prototype borrows. Unlike one-sided operations, an
RPC involves the server CPU: requests are dispatched to application
handler threads drawn from a core pool, so RPC latency carries dispatch
and handler time, and RPC throughput is capped by cores as well as by
the network.

Handlers are plain callables ``handler(args) -> (result, response_bytes)``
executed *functionally* at the end of their simulated service time.
"""

from dataclasses import dataclass

from repro.hw.cpu import CorePool
from repro.net.message import ETHERNET_HEADER_BYTES
from repro.net.port import RequestChannel, send_reply
from repro.obs.trace import NULL_SPAN


@dataclass
class RpcConfig:
    """Timing knobs for the RPC layer (µs)."""

    cores: int = 16
    dispatch_us: float = 0.60        # rx ring poll + request steering
    default_service_us: float = 1.60  # handler body unless overridden
    client_post_us: float = 0.85      # request marshalling + doorbell
    client_completion_us: float = 0.85  # completion callback + unmarshal


class RpcServer:
    """Registers named methods on a host's ``rpc`` service."""

    def __init__(self, sim, fabric, host_name, config=None, service="rpc",
                 core_pool=None):
        self.sim = sim
        self.fabric = fabric
        self.host_name = host_name
        self.service = service
        self.config = config or RpcConfig()
        self.cores = core_pool or CorePool(sim, self.config.cores,
                                           name=f"rpc@{host_name}")
        self._methods = {}
        self.calls_served = 0
        fabric.host(host_name).register_service(service, self._on_request)

    def register(self, method, handler, service_us=None):
        """Expose ``handler(args) -> (result, response_payload_bytes)``.

        ``service_us`` may be a float or a callable ``(args) -> float``
        for size-dependent handler cost; defaults to the config value.
        """
        if method in self._methods:
            raise ValueError(f"method {method!r} already registered")
        self._methods[method] = (handler, service_us)

    def _on_request(self, message):
        self.sim.spawn(self._serve(message), name=f"rpc.{message.payload.body[0]}")

    def _serve(self, message):
        request = message.payload
        root = request.span
        method, args = request.body
        handler = self._methods.get(method)
        if handler is None:
            yield from send_reply(self.fabric, self.host_name, request,
                                  KeyError(f"no RPC method {method!r}"),
                                  ETHERNET_HEADER_BYTES, ok=False, span=root)
            return
        handler, service_us = handler
        if service_us is None:
            duration = self.config.default_service_us
        elif callable(service_us):
            duration = service_us(args)
        else:
            duration = service_us
        duration += self.config.dispatch_us
        try:
            with root.child("rpc.handler", phase="cpu", method=method,
                            host=self.host_name) as span:
                outcome = yield from self.cores.execute(
                    duration, work=lambda: handler(args), span=span)
            result, response_payload = outcome
        except Exception as exc:  # handler bug: report, don't crash
            yield from send_reply(self.fabric, self.host_name, request,
                                  exc, ETHERNET_HEADER_BYTES, ok=False,
                                  span=root)
            return
        self.calls_served += 1
        yield from send_reply(self.fabric, self.host_name, request, result,
                              ETHERNET_HEADER_BYTES + response_payload,
                              span=root)


class RpcClient:
    """Client endpoint issuing calls to any host's RPC service."""

    def __init__(self, sim, fabric, client_name, config=None, channel=None,
                 retry_policy=None):
        self.config = config or RpcConfig()
        self.sim = sim
        self.fabric = fabric
        self.client_name = client_name
        self.channel = channel or RequestChannel(
            sim, fabric, client_name,
            post_overhead_us=self.config.client_post_us,
            completion_overhead_us=self.config.client_completion_us)
        # Same auto-adoption as PrismClient: a fault plan's retry knobs
        # apply to every client built after set_faults, and with no plan
        # the call path is untouched.
        if retry_policy is None and sim.faults is not None:
            retry_policy = sim.faults.plan.retry
        self.retry_policy = retry_policy
        self.calls_made = 0

    def call(self, server_name, method, args, request_payload_bytes,
             service="rpc", span=NULL_SPAN, retryable=True):
        """Process helper: invoke ``method`` on ``server_name``.

        With a retry policy attached (fault plan installed), lost
        calls are retransmitted. At-least-once delivery means the
        handler may run twice; handlers that are not naturally
        idempotent must dedupe (the recycler daemon does, by report
        id) or the caller must pass ``retryable=False`` and handle
        :class:`~repro.sim.events.TimeoutExpired` itself.
        """
        policy = self.retry_policy
        if self.sim.flight is not None:
            self.sim.flight.record("rpc.submit", method=method,
                                   server=server_name)
        with span.child("rpc.call", phase="cpu", method=method) as call_span:
            if policy is None:
                result = yield from self.channel.request(
                    server_name, service, (method, args),
                    ETHERNET_HEADER_BYTES + request_payload_bytes,
                    span=call_span)
            elif retryable:
                result = yield from self.channel.request_with_retry(
                    server_name, service, (method, args),
                    ETHERNET_HEADER_BYTES + request_payload_bytes,
                    policy, span=call_span)
            else:
                result = yield from self.channel.request(
                    server_name, service, (method, args),
                    ETHERNET_HEADER_BYTES + request_payload_bytes,
                    timeout_us=policy.timeout_us, span=call_span)
        self.calls_made += 1
        return result
