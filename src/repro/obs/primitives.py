"""Primitive-level telemetry: what the PRISM primitives *did*.

Where :mod:`repro.obs.timeline` answers "which resource was busy",
this layer answers the semantic questions the paper's §4–§8 arguments
turn on: how often did the enhanced CAS miss, and on which addresses?
How deep did indirect reads chase pointers? How long were the chains,
and why did they abort? How close did ALLOCATE come to draining a free
list? Which application keys were hot?

Install a :class:`PrimitiveCollector` *before* system construction via
``sim.set_primitives(collector)`` — the same self-registration pattern
as ``sim.set_utilization``. The engine, backends, and app clients all
check ``sim.primitives is None`` (one attribute read) on the off path,
and the collector itself only increments counters at transitions the
run already makes: it never reads or schedules simulator events, so a
monitored run is bit-identical in simulated time to a bare one.

Heavy-hitter sketches use the SpaceSaving algorithm (:class:`TopK`):
bounded memory, deterministic (ties broken by insertion order, and the
simulator itself is deterministic), with a per-entry overestimation
bound so reports can show how trustworthy each count is.
"""


class TopK:
    """SpaceSaving heavy-hitter sketch over at most ``k`` keys.

    ``note(key)`` costs O(k) worst case (a min scan on eviction) and
    O(1) when the key is tracked; counts of surviving keys are exact
    for exact-fitting streams and otherwise overestimates by at most
    the recorded ``max_overestimate``.
    """

    __slots__ = ("k", "total", "_counts")

    def __init__(self, k=16):
        if k < 1:
            raise ValueError("TopK needs k >= 1")
        self.k = k
        self.total = 0
        self._counts = {}  # key -> [count, max_overestimate]

    def note(self, key, weight=1):
        self.total += weight
        entry = self._counts.get(key)
        if entry is not None:
            entry[0] += weight
            return
        if len(self._counts) < self.k:
            self._counts[key] = [weight, 0]
            return
        # Evict the current minimum; the newcomer inherits its count
        # as the overestimation bound (classic SpaceSaving).
        victim = min(self._counts, key=lambda k: self._counts[k][0])
        floor = self._counts.pop(victim)[0]
        self._counts[key] = [floor + weight, floor]

    def __len__(self):
        return len(self._counts)

    def __contains__(self, key):
        return key in self._counts

    def count(self, key):
        entry = self._counts.get(key)
        return entry[0] if entry is not None else 0

    def top(self, n=None):
        """Ranked entries, heaviest first (ties by key repr)."""
        ranked = sorted(self._counts.items(),
                        key=lambda item: (-item[1][0], str(item[0])))
        if n is not None:
            ranked = ranked[:n]
        return [{"key": key, "count": count, "max_overestimate": err}
                for key, (count, err) in ranked]


def _bump(histogram, bucket, weight=1):
    histogram[bucket] = histogram.get(bucket, 0) + weight


def _hist_items(histogram):
    """A histogram dict as sorted ``[[bucket, count], ...]`` (JSON-safe)."""
    return [[bucket, histogram[bucket]] for bucket in sorted(histogram)]


def _op_hops(op):
    """Pointer dereferences an op descriptor will perform (0–2)."""
    return (int(getattr(op, "indirect", False))
            + int(getattr(op, "addr_indirect", False))
            + int(getattr(op, "target_indirect", False))
            + int(getattr(op, "data_indirect", False)))


class PrimitiveCollector:
    """Semantic counters for CAS, indirect reads, chains, ALLOCATE,
    and app-level key hotness. See the module docstring for the
    install pattern and the bit-identical guarantee."""

    def __init__(self, top_k=16):
        self.top_k = top_k
        self._sim = None
        # -- enhanced CAS -------------------------------------------------
        self.cas_attempts = 0
        self.cas_misses = 0
        self.cas_by_mode = {}        # mode value -> {"ok": n, "miss": n}
        self.cas_hot_targets = TopK(top_k)    # every attempt
        self.cas_contended = TopK(top_k)      # misses only
        self.cas_retry_chains = {}   # streak length -> count (closed streaks)
        self._miss_streaks = {}      # (connection_id, target) -> live streak
        # -- pointer chasing ----------------------------------------------
        self.deref_depth = {}        # opname -> {hops: count}
        self.bounded_reads = 0
        # -- chains -------------------------------------------------------
        self.chains = 0
        self.chains_committed = 0
        self.chains_aborted = 0
        self.chains_retransmitted = 0
        self._seen_logicals = set()
        self.chain_lengths = {}      # ops per chain -> count
        self.chain_hops = {}         # total derefs per chain -> count
        self.chain_abort_reasons = {}
        self.ops_executed = 0
        self.ops_skipped = 0
        self.nak_reasons = {}        # opname -> {error class name: count}
        # -- ALLOCATE / free lists ----------------------------------------
        self.alloc_pops = {}         # freelist id -> count
        self.alloc_exhaustions = {}  # freelist id -> count
        self.alloc_low_watermark = {}  # freelist id -> min depth seen
        self._freelists = {}         # freelist id -> QueuePair
        # -- app-level key hotness ----------------------------------------
        self.key_hotness = {}        # app -> TopK
        self.key_ops = {}            # app -> {op kind: count}

    def bind(self, sim):
        """Attach to the simulator (``sim.set_primitives`` calls this)."""
        self._sim = sim
        return self

    # -- engine hooks ------------------------------------------------------

    def note_cas(self, connection_id, target, mode, swapped):
        """One CAS attempt on ``target``; ``swapped`` is the outcome."""
        self.cas_attempts += 1
        self.cas_hot_targets.note(target)
        outcomes = self.cas_by_mode.setdefault(mode.value,
                                               {"ok": 0, "miss": 0})
        streak_key = (connection_id, target)
        if swapped:
            outcomes["ok"] += 1
            streak = self._miss_streaks.pop(streak_key, 0)
            if streak:
                _bump(self.cas_retry_chains, streak)
        else:
            outcomes["miss"] += 1
            self.cas_misses += 1
            self.cas_contended.note(target)
            self._miss_streaks[streak_key] = \
                self._miss_streaks.get(streak_key, 0) + 1

    def note_deref(self, opname, hops, bounded=False):
        """Pointer-chase depth of one executed op (0 = direct)."""
        _bump(self.deref_depth.setdefault(opname, {}), hops)
        if bounded:
            self.bounded_reads += 1

    def note_nak(self, opname, error):
        """An op hard-NAK'd; remember why, by error class."""
        _bump(self.nak_reasons.setdefault(opname, {}), type(error).__name__)

    def note_chain(self, ops, results, logical=None):
        """One finished request: its ops and their OpResults in order.

        ``logical`` is the stable logical-request id from the client's
        envelope (None for callers outside the request path). A repeat
        execution of an already-seen logical id is a retransmission —
        counted separately so chain statistics can report logical
        requests without double-counting retried ones.
        """
        self.chains += 1
        if logical is not None:
            if logical in self._seen_logicals:
                self.chains_retransmitted += 1
            else:
                self._seen_logicals.add(logical)
        _bump(self.chain_lengths, len(ops))
        _bump(self.chain_hops, sum(_op_hops(op) for op in ops))
        statuses = [result.status.value for result in results]
        self.ops_skipped += sum(1 for s in statuses if s == "skipped")
        self.ops_executed += sum(1 for s in statuses if s != "skipped")
        if statuses and statuses[-1] == "ok":
            self.chains_committed += 1
            return
        self.chains_aborted += 1
        reason = "empty"
        for op, result in zip(ops, results):
            status = result.status.value
            if status == "nak":
                error = getattr(result, "error", None)
                reason = (type(error).__name__ if error is not None
                          else "nak")
                break
            if status == "cas_miss":
                reason = "cas_miss"
                break
            if status == "skipped":
                reason = "skipped"
                break
            reason = "uncommitted"
        _bump(self.chain_abort_reasons, reason)

    def register_freelist(self, freelist_id, freelist):
        """Track a free list from creation so the watermark report
        covers queues ALLOCATE never popped (full occupancy)."""
        self._freelists.setdefault(freelist_id, freelist)

    def note_allocate(self, freelist_id, freelist):
        """A successful free-list pop; track the post-pop low watermark."""
        self._freelists.setdefault(freelist_id, freelist)
        _bump(self.alloc_pops, freelist_id)
        depth = len(freelist)
        low = self.alloc_low_watermark.get(freelist_id)
        if low is None or depth < low:
            self.alloc_low_watermark[freelist_id] = depth

    def note_exhaustion(self, freelist_id, freelist):
        """ALLOCATE found the free list empty."""
        self._freelists.setdefault(freelist_id, freelist)
        _bump(self.alloc_exhaustions, freelist_id)
        self.alloc_low_watermark[freelist_id] = 0

    # -- app hooks ---------------------------------------------------------

    def note_key(self, app, kind, key):
        """One application-level operation ``kind`` on ``key``."""
        sketch = self.key_hotness.get(app)
        if sketch is None:
            sketch = self.key_hotness[app] = TopK(self.top_k)
        sketch.note(key)
        _bump(self.key_ops.setdefault(app, {}), kind)

    # -- reporting ---------------------------------------------------------

    def report(self, top=None):
        """JSON-ready snapshot of every counter family."""
        top = top or self.top_k
        open_streaks = sum(1 for s in self._miss_streaks.values() if s)
        miss_rate = (self.cas_misses / self.cas_attempts
                     if self.cas_attempts else 0.0)
        allocator_rows = []
        for freelist_id in sorted(self._freelists):
            freelist = self._freelists[freelist_id]
            depth = len(freelist)
            capacity = getattr(freelist, "high_watermark", 0) or depth
            allocator_rows.append({
                "freelist": freelist_id,
                "name": freelist.name,
                "buffer_bytes": freelist.buffer_size,
                "depth": depth,
                "capacity": capacity,
                "occupancy": (1.0 - depth / capacity) if capacity else 0.0,
                "pops": self.alloc_pops.get(freelist_id, 0),
                "exhaustions": self.alloc_exhaustions.get(freelist_id, 0),
                "low_watermark": self.alloc_low_watermark.get(freelist_id,
                                                              depth),
                "lifetime_low_watermark": getattr(freelist, "low_watermark",
                                                  depth),
                "posted": freelist.total_posted,
                "popped": freelist.total_popped,
            })
        return {
            "cas": {
                "attempts": self.cas_attempts,
                "misses": self.cas_misses,
                "miss_rate": miss_rate,
                "by_mode": {mode: dict(outcomes) for mode, outcomes
                            in sorted(self.cas_by_mode.items())},
                "contended_topk": self.cas_contended.top(top),
                "hot_targets_topk": self.cas_hot_targets.top(top),
                "retry_chains": _hist_items(self.cas_retry_chains),
                "open_retry_chains": open_streaks,
            },
            "pointer_chase": {
                "depth_by_op": {opname: _hist_items(hist) for opname, hist
                                in sorted(self.deref_depth.items())},
                "bounded_reads": self.bounded_reads,
            },
            "chains": {
                "requests": self.chains,
                "committed": self.chains_committed,
                "aborted": self.chains_aborted,
                "retransmitted_executions": self.chains_retransmitted,
                "logical_requests": self.chains - self.chains_retransmitted,
                "lengths": _hist_items(self.chain_lengths),
                "hops": _hist_items(self.chain_hops),
                "abort_reasons": dict(sorted(
                    self.chain_abort_reasons.items())),
                "ops_executed": self.ops_executed,
                "ops_skipped": self.ops_skipped,
                "nak_reasons": {opname: dict(sorted(reasons.items()))
                                for opname, reasons
                                in sorted(self.nak_reasons.items())},
            },
            "allocator": allocator_rows,
            "keys": {
                app: {
                    "ops": dict(sorted(self.key_ops.get(app, {}).items())),
                    "topk": sketch.top(top),
                    "total": sketch.total,
                }
                for app, sketch in sorted(self.key_hotness.items())
            },
        }
