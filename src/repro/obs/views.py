"""Online telemetry views: queryable sliding-window signals in-sim.

Every other collector in :mod:`repro.obs` is post-hoc — signals are
aggregated on the simulated clock but only *read* after the run. This
module turns the same hook points (`prism.engine` CAS/NAK/pointer-chase
outcomes, `prism` client round trips, `net.port` timeouts and backoffs)
into **live** per-connection and per-key windowed views a policy layer
can query *mid-run*:

    view.rate("cas_retry", conn)          # windowed events/sec
    view.rate("cas_retry", key=target)    # per hot address
    view.ewma("chase_depth", conn)        # exponential average
    view.quantile("chase_depth", 0.99, conn)

Each signal is maintained incrementally in an O(1) ring of
``n_buckets`` sub-windows (advance on touch, bounded by the ring
length), so a query is a ring sum and an update is one increment —
near-zero cost on the data path. Per-key maps are bounded
(``max_keys``, stalest-entry eviction), so memory never grows with the
address space.

On top sits a structured **decision log**: :meth:`ViewCollector.probe`
records would-be policy decisions (inputs snapshot + verdict + sim
timestamp) into a bounded ring, and registered probe objects (see
:class:`RfpCrossoverProbe`) are evaluated whenever a connection's
signals cross into a new window — event-driven, never scheduled, so
the bit-identical-when-off contract of every collector holds here too.

Install contract (same as every collector)::

    views = ViewCollector(window_us=50.0)
    sim.set_views(views)            # BEFORE system construction
    ... build system, run ...       # query views.rate(...) mid-run
    views.finish(sim.now)
    report = views.report()

Off by default: with no collector installed every hook on the data
path is a single ``is None`` check. The collector itself only reads
``sim.now`` and appends to host-side structures — it never schedules
simulator events — so a collected run is bit-identical in simulated
time to a bare one. Host cost is accounted to the ``hooks.views``
hostprof bucket (see :mod:`repro.obs.hostprof`).

Reconciliation contract: the views' signal totals equal the post-hoc
collectors' aggregates on the same run — CAS attempts/misses match
:class:`~repro.obs.primitives.PrimitiveCollector`, timeout/backoff
totals match the :class:`~repro.obs.series.SeriesCollector` window
counters — tested in ``tests/obs/test_views.py``.
"""

from repro.obs import quantiles

#: default sliding-window width, simulated microseconds
DEFAULT_WINDOW_US = 50.0

#: sub-buckets per sliding window (rate resolution vs ring memory)
DEFAULT_N_BUCKETS = 8

#: per-key ring maps are bounded to this many tracked keys
DEFAULT_MAX_KEYS = 128

#: decision-log ring capacity (decisions, not bytes)
DEFAULT_DECISION_CAPACITY = 4096

#: EWMA smoothing factor (weight of the newest sample)
EWMA_ALPHA = 0.2

#: counting signals exposed as windowed rates; ``cas_retry`` is also
#: tracked per target address (the hot-key view)
RATE_SIGNALS = ("cas_retry", "cas_attempt", "nak", "timeout", "backoff")

#: signals exposed as EWMAs (``chase_depth`` also carries a quantile
#: sketch — an exact bounded histogram, depths are tiny integers)
EWMA_SIGNALS = ("chase_depth", "service_time_us")


class _Ring:
    """O(1) sliding-window counter: ``n`` sub-buckets of one window.

    ``add``/``total`` advance the ring to the caller's absolute
    sub-bucket index first, evicting expired buckets from the running
    sum; a gap larger than the ring clears it outright, so advancing
    is bounded by the ring length no matter how long the key idled.
    """

    __slots__ = ("counts", "head", "running", "bucket", "lifetime")

    def __init__(self, n):
        self.counts = [0.0] * n
        self.head = 0
        self.running = 0.0   # sum of live buckets
        self.bucket = None   # absolute sub-bucket index of counts[head]
        self.lifetime = 0.0  # total ever added (reconciliation)

    def _advance(self, bucket):
        if self.bucket is None:
            self.bucket = bucket
            return
        gap = bucket - self.bucket
        if gap <= 0:
            return
        counts = self.counts
        n = len(counts)
        if gap >= n:
            for i in range(n):
                counts[i] = 0.0
            self.running = 0.0
            self.head = 0
        else:
            head = self.head
            for _ in range(gap):
                head = (head + 1) % n
                self.running -= counts[head]
                counts[head] = 0.0
            self.head = head
        self.bucket = bucket

    def add(self, bucket, weight=1.0):
        self._advance(bucket)
        self.counts[self.head] += weight
        self.running += weight
        self.lifetime += weight

    def total(self, bucket):
        """Windowed sum as of absolute sub-bucket ``bucket``."""
        self._advance(bucket)
        return self.running


class _Ewma:
    """Per-signal exponential average; first sample seeds the value."""

    __slots__ = ("value", "count")

    def __init__(self):
        self.value = float("nan")
        self.count = 0

    def update(self, sample):
        if self.count == 0:
            self.value = float(sample)
        else:
            self.value = (EWMA_ALPHA * sample
                          + (1.0 - EWMA_ALPHA) * self.value)
        self.count += 1


class ViewCollector:
    """Bounded-memory sliding-window telemetry views on the sim clock.

    See the module docstring for the install pattern, the off-by-
    default guarantee, and the reconciliation contract. Hook methods
    (``note_*``) are called by the engine, client, and net layers;
    query methods (:meth:`rate`, :meth:`ewma`, :meth:`quantile`) are
    safe to call from inside a running simulation process.
    """

    def __init__(self, window_us=DEFAULT_WINDOW_US,
                 n_buckets=DEFAULT_N_BUCKETS, max_keys=DEFAULT_MAX_KEYS,
                 decision_capacity=DEFAULT_DECISION_CAPACITY):
        if window_us <= 0:
            raise ValueError(f"window_us must be > 0, got {window_us}")
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self.window_us = float(window_us)
        self.n_buckets = int(n_buckets)
        self.sub_us = self.window_us / self.n_buckets
        self.max_keys = int(max_keys)
        self._sim = None
        #: (signal, conn) -> _Ring; conns are bounded by the population
        self._conn_rings = {}
        #: target address -> _Ring (cas_retry only), bounded by max_keys
        self._key_rings = {}
        self.evicted_keys = 0
        #: signal -> _Ring over every connection (the global view)
        self._global_rings = {signal: _Ring(self.n_buckets)
                              for signal in RATE_SIGNALS}
        #: (signal, conn) -> _Ewma, plus conn=None for the global one
        self._ewmas = {}
        #: conn -> {depth: count}, exact (depths are 0-2 per op)
        self._chase_hist = {}
        # decision log: bounded ring of probe verdicts
        self.decision_capacity = int(decision_capacity)
        self.decisions = []
        self._decision_head = 0
        self.decisions_recorded = 0
        self._decision_seq = 0
        # registered probe objects, evaluated on window transitions
        self._probes = []
        #: conn -> window index of the last probe evaluation
        self._probe_windows = {}
        self.end_us = None

    def bind(self, sim):
        """Attach to the simulator (``sim.set_views`` calls this)."""
        self._sim = sim
        return self

    # -- hostprof accounting -------------------------------------------------

    def _hp(self):
        sim = self._sim
        if sim is None:
            return None
        hp = sim.hostprof
        if hp is not None and not hp._timing:
            return None
        return hp

    # -- hot-path hooks ------------------------------------------------------

    def _bucket(self):
        return int(self._sim._now // self.sub_us)

    def _count(self, signal, conn, bucket):
        self._global_rings[signal].add(bucket)
        ring = self._conn_rings.get((signal, conn))
        if ring is None:
            ring = self._conn_rings[(signal, conn)] = _Ring(self.n_buckets)
        ring.add(bucket)

    def _count_key(self, key, bucket):
        ring = self._key_rings.get(key)
        if ring is None:
            if len(self._key_rings) >= self.max_keys:
                # Evict the stalest tracked key (smallest last-touched
                # bucket) — an O(max_keys) scan, paid only on eviction,
                # like the TopK sketch's min scan.
                victim = min(self._key_rings,
                             key=lambda k: self._key_rings[k].bucket)
                del self._key_rings[victim]
                self.evicted_keys += 1
            ring = self._key_rings[key] = _Ring(self.n_buckets)
        ring.add(bucket)

    def _ewma_update(self, signal, conn, sample):
        for k in ((signal, conn), (signal, None)):
            ewma = self._ewmas.get(k)
            if ewma is None:
                ewma = self._ewmas[k] = _Ewma()
            ewma.update(sample)

    def note_cas(self, conn, target, swapped):
        """One CAS attempt by ``conn`` on ``target``; miss feeds the
        retry-rate views (per connection and per address)."""
        hp = self._hp()
        if hp is not None:
            hp.enter("hooks.views")
        try:
            bucket = self._bucket()
            self._count("cas_attempt", conn, bucket)
            if not swapped:
                self._count("cas_retry", conn, bucket)
                self._count_key(target, bucket)
            self._tick_probes(conn)
        finally:
            if hp is not None:
                hp.exit()

    def note_chase(self, conn, opname, hops):
        """Pointer-chase depth of one executed op (0 = direct)."""
        hp = self._hp()
        if hp is not None:
            hp.enter("hooks.views")
        try:
            self._ewma_update("chase_depth", conn, hops)
            hist = self._chase_hist.get(conn)
            if hist is None:
                hist = self._chase_hist[conn] = {}
            hist[hops] = hist.get(hops, 0) + 1
            self._tick_probes(conn)
        finally:
            if hp is not None:
                hp.exit()

    def note_nak(self, conn, opname):
        """An op by ``conn`` hard-NAK'd at the engine."""
        hp = self._hp()
        if hp is not None:
            hp.enter("hooks.views")
        try:
            self._count("nak", conn, self._bucket())
            self._tick_probes(conn)
        finally:
            if hp is not None:
                hp.exit()

    def note_timeout(self, conn):
        """A request by ``conn`` hit its ack timeout."""
        hp = self._hp()
        if hp is not None:
            hp.enter("hooks.views")
        try:
            self._count("timeout", conn, self._bucket())
            self._tick_probes(conn)
        finally:
            if hp is not None:
                hp.exit()

    def note_backoff(self, conn):
        """A request by ``conn`` entered retransmission backoff."""
        hp = self._hp()
        if hp is not None:
            hp.enter("hooks.views")
        try:
            self._count("backoff", conn, self._bucket())
            self._tick_probes(conn)
        finally:
            if hp is not None:
                hp.exit()

    def note_service_time(self, conn, latency_us):
        """One client round trip by ``conn`` took ``latency_us``."""
        hp = self._hp()
        if hp is not None:
            hp.enter("hooks.views")
        try:
            self._ewma_update("service_time_us", conn, latency_us)
            self._tick_probes(conn)
        finally:
            if hp is not None:
                hp.exit()

    # -- queries -------------------------------------------------------------

    def rate(self, signal, conn=None, key=None):
        """Windowed event rate (events/sec) as of now.

        ``conn`` selects one connection's view; ``key`` (for
        ``cas_retry``) selects one target address; neither selects the
        global view. An untracked conn/key reads as 0.0 — absence of
        evidence is a rate of zero, not an error.
        """
        if signal not in RATE_SIGNALS:
            raise ValueError(f"unknown rate signal {signal!r} "
                             f"(rate signals: {RATE_SIGNALS})")
        bucket = self._bucket()
        if key is not None:
            if signal != "cas_retry":
                raise ValueError("per-key views exist only for 'cas_retry'")
            ring = self._key_rings.get(key)
        elif conn is not None:
            ring = self._conn_rings.get((signal, conn))
        else:
            ring = self._global_rings[signal]
        if ring is None:
            return 0.0
        return ring.total(bucket) / self.window_us * 1e6

    def ewma(self, signal, conn=None):
        """Exponential average of ``signal`` (NaN before any sample)."""
        if signal not in EWMA_SIGNALS:
            raise ValueError(f"unknown ewma signal {signal!r} "
                             f"(ewma signals: {EWMA_SIGNALS})")
        ewma = self._ewmas.get((signal, conn))
        return ewma.value if ewma is not None else float("nan")

    def quantile(self, signal, q, conn=None):
        """Quantile of the depth sketch (only ``chase_depth`` has one)."""
        if signal != "chase_depth":
            raise ValueError("quantile sketches exist only for 'chase_depth'")
        if conn is None:
            merged = {}
            for hist in self._chase_hist.values():
                for hops, count in hist.items():
                    merged[hops] = merged.get(hops, 0) + count
            hist = merged
        else:
            hist = self._chase_hist.get(conn) or {}
        if not hist:
            return float("nan")
        items = sorted(hist.items())
        return quantiles.percentile_weighted(items, q * 100.0)

    def connections(self):
        """Every connection any signal has been recorded for."""
        conns = {conn for _signal, conn in self._conn_rings}
        conns.update(conn for _signal, conn in self._ewmas
                     if conn is not None)
        conns.update(self._chase_hist)
        return sorted(conns, key=str)

    # -- decision log --------------------------------------------------------

    def probe(self, name, inputs, verdict):
        """Record one would-be policy decision; returns the entry.

        ``inputs`` is a snapshot of the signals the decision read;
        ``verdict`` is what the policy would have done. Entries land in
        a bounded ring (oldest evicted first) stamped with the sim
        clock, the bench record's ``views.decisions`` section, and the
        human-readable report.
        """
        entry = {
            "seq": self._decision_seq,
            "t_us": self._sim._now if self._sim is not None else 0.0,
            "name": name,
            "inputs": dict(inputs),
            "verdict": verdict,
        }
        self._decision_seq += 1
        if len(self.decisions) < self.decision_capacity:
            self.decisions.append(entry)
        else:
            self.decisions[self._decision_head] = entry
            self._decision_head = ((self._decision_head + 1)
                                   % self.decision_capacity)
        self.decisions_recorded += 1
        return entry

    def decision_log(self):
        """Decisions in record order (ring unrolled)."""
        head = self._decision_head
        return self.decisions[head:] + self.decisions[:head]

    @property
    def decisions_evicted(self):
        return self.decisions_recorded - len(self.decisions)

    # -- probes --------------------------------------------------------------

    def add_probe(self, probe):
        """Register a probe object evaluated on window transitions.

        ``probe.evaluate(views, conn, window_start_us)`` runs the first
        time any of ``conn``'s signals land in a new ``window_us``-wide
        window — event-driven at hook time (no scheduled events), so
        registration preserves bit-identical simulated timing.
        """
        self._probes.append(probe)
        return probe

    def _tick_probes(self, conn):
        if not self._probes:
            return
        window = int(self._sim._now // self.window_us)
        last = self._probe_windows.get(conn)
        if last == window:
            return
        self._probe_windows[conn] = window
        start = window * self.window_us
        for probe in self._probes:
            probe.evaluate(self, conn, start)

    # -- lifecycle / reporting ----------------------------------------------

    def finish(self, elapsed=None):
        """Close the views at ``elapsed`` (default: now). Idempotent."""
        if elapsed is None:
            elapsed = self._sim._now if self._sim is not None else 0.0
        if self.end_us is None or elapsed > self.end_us:
            self.end_us = elapsed
        return self

    def report(self, top=8):
        """JSON-ready snapshot: totals, per-conn views, decision log."""
        nan = float("nan")
        signals = {}
        for signal in RATE_SIGNALS:
            ring = self._global_rings[signal]
            signals[signal] = {"total": ring.lifetime,
                               "rate_per_s": self.rate(signal)}
        conns = {}
        for conn in self.connections():
            hist = self._chase_hist.get(conn) or {}
            row = {
                "chase_depth_ewma": self.ewma("chase_depth", conn),
                "chase_depth_p99": (self.quantile("chase_depth", 0.99, conn)
                                    if hist else nan),
                "chase_ops": sum(hist.values()),
                "service_time_ewma_us": self.ewma("service_time_us", conn),
            }
            for signal in RATE_SIGNALS:
                ring = self._conn_rings.get((signal, conn))
                row[f"{signal}_total"] = ring.lifetime if ring else 0.0
                row[f"{signal}_per_s"] = self.rate(signal, conn)
            conns[str(conn)] = row
        hot = sorted(self._key_rings.items(),
                     key=lambda item: (-item[1].lifetime, str(item[0])))
        return {
            "window_us": self.window_us,
            "n_buckets": self.n_buckets,
            "end_us": self.end_us,
            "signals": signals,
            "connections": conns,
            "hot_keys": [{"key": key, "cas_retry_total": ring.lifetime,
                          "cas_retry_per_s": self.rate("cas_retry", key=key)}
                         for key, ring in hot[:top]],
            "tracked_keys": len(self._key_rings),
            "evicted_keys": self.evicted_keys,
            "probes": [getattr(p, "name", type(p).__name__)
                       for p in self._probes],
            "decisions": {
                "recorded": self.decisions_recorded,
                "evicted": self.decisions_evicted,
                "capacity": self.decision_capacity,
                "log": self.decision_log(),
            },
        }


class RfpCrossoverProbe:
    """Shadow-mode RFP crossover detector (the demonstration probe).

    The RFP argument ("RDMA vs. RPC for Implementing Distributed Data
    Structures", PAPERS.md; ROADMAP open item 3): RPC beats one-sided
    access exactly when contention is high — hot-key CAS retry storms,
    deep pointer chases — because the server CPU resolves conflicts
    locally instead of the client burning round trips. This probe
    watches each connection's online views once per window and logs
    which transport the RFP rule *would* pick; it never switches
    anything (shadow mode — the policy layer is a later PR).

    A decision is logged on the first evaluation of a connection and on
    every verdict transition, so a steady contended run yields one
    decision per connection rather than one per window.
    """

    name = "rfp-crossover"

    def __init__(self, cas_retry_per_s=50_000.0, chase_depth=1.5,
                 timeout_per_s=1_000.0):
        self.cas_retry_per_s = cas_retry_per_s
        self.chase_depth = chase_depth
        self.timeout_per_s = timeout_per_s
        self._last_verdict = {}

    def evaluate(self, views, conn, window_start_us):
        cas_rate = views.rate("cas_retry", conn)
        chase = views.ewma("chase_depth", conn)
        timeout_rate = views.rate("timeout", conn)
        contended = (cas_rate >= self.cas_retry_per_s
                     or (chase == chase and chase >= self.chase_depth)
                     or timeout_rate >= self.timeout_per_s)
        verdict = "rpc" if contended else "one-sided"
        if self._last_verdict.get(conn) == verdict:
            return
        self._last_verdict[conn] = verdict
        views.probe(self.name, {
            "conn": conn,
            "window_start_us": window_start_us,
            "cas_retry_per_s": cas_rate,
            "chase_depth_ewma": chase,
            "timeout_per_s": timeout_rate,
            "service_time_ewma_us": views.ewma("service_time_us", conn),
        }, verdict)


def crossover_vs_series(decisions, series_report):
    """Validate shadow-probe verdicts against post-hoc changepoints.

    ``decisions`` is the views' decision log (rfp-crossover entries);
    ``series_report`` is :meth:`repro.obs.series.SeriesCollector.report`
    output from the *same run*. The two layers watch the same run
    through different lenses, so they must not contradict each other: a
    switch-to-RPC decision (contention seen online) landing inside a
    window the series flagged as a latency *dip* is a conflict, as is a
    switch-to-one-sided decision inside a latency-*spike* window.
    Steady runs — no changepoints at all — agree vacuously, which is
    the expected outcome on a stationary contention sweep.

    Returns ``{"decisions", "changepoints", "conflicts", "agree"}``.
    """
    spans = {"latency-spike": [], "latency-dip": []}
    for annotation in series_report.get("annotations", []):
        if annotation["kind"] in spans:
            spans[annotation["kind"]].append(
                (annotation["start_us"], annotation["end_us"]))

    def inside(t, intervals):
        return any(start <= t < end for start, end in intervals)

    conflicts = []
    relevant = [d for d in decisions
                if d.get("name") == RfpCrossoverProbe.name]
    for decision in relevant:
        t = decision["inputs"].get("window_start_us", decision["t_us"])
        if decision["verdict"] == "rpc" and inside(t, spans["latency-dip"]):
            conflicts.append({"decision": decision,
                              "against": "latency-dip"})
        elif (decision["verdict"] == "one-sided"
              and inside(t, spans["latency-spike"])):
            conflicts.append({"decision": decision,
                              "against": "latency-spike"})
    return {
        "decisions": len(relevant),
        "changepoints": sum(len(v) for v in spans.values()),
        "conflicts": conflicts,
        "agree": not conflicts,
    }
