"""Windowed busy/idle accounting and queue-depth telemetry.

Answers the evaluation's other question — *which resource saturates?* —
for any simulated run: every contended resource (NIC verb-engine
pools, host TX/RX wire ports, CPU core pools, the PCIe link, the PRISM
engine, client request channels) reports busy time, queue depth, and
queueing delay, integrated on the simulated clock and bucketed into
fixed windows so saturation onset is visible in time as well as in
aggregate.

Accounting is **event-driven**: monitors integrate piecewise-constant
state (slots in use, waiters queued) at every transition instead of
scheduling sampling events, so a monitored run executes the *same
event sequence* as an unmonitored one — timing is bit-identical, the
same discipline as the NULL_SPAN tracer. With no collector installed
(the default) every hook is a single ``is None`` check.

Usage::

    from repro.obs.timeline import UtilizationCollector
    from repro.sim import Simulator

    sim = Simulator()
    collector = sim.set_utilization(UtilizationCollector())
    ...build the system; every Resource self-registers...
    sim.run(...)
    collector.finish(sim.now)
    for row in collector.report():
        print(row["name"], row["utilization"], row["queue"]["mean_depth"])

Three monitor flavours:

* :class:`ResourceMonitor` — slot-based resources
  (:class:`repro.sim.resources.Resource`): busy integral from slots in
  use, queue-depth integral from the waiter queue, a queueing-delay
  sample per grant.
* :class:`ChargeMonitor` — charge-based resources with no explicit
  queue (PCIe DMA time, engine op counts): callers add busy time or
  event counts directly.
* :class:`DepthMonitor` — pure occupancy counters (in-flight requests
  on a client channel, messages in flight on the fabric).
"""

from collections import deque

from repro.obs import quantiles

#: default accounting window, simulated microseconds
DEFAULT_WINDOW_US = 100.0


class Window:
    """One closed accounting window of a monitor's timeline."""

    __slots__ = ("start", "end", "busy_us", "depth_time_us", "max_depth",
                 "events", "units")

    def __init__(self, start, end, busy_us, depth_time_us, max_depth,
                 events, units):
        self.start = start
        self.end = end
        self.busy_us = busy_us
        self.depth_time_us = depth_time_us
        self.max_depth = max_depth
        self.events = events
        self.units = units

    @property
    def width(self):
        return self.end - self.start

    def as_dict(self):
        return {"start": self.start, "end": self.end,
                "busy_us": self.busy_us,
                "depth_time_us": self.depth_time_us,
                "max_depth": self.max_depth,
                "events": self.events, "units": self.units}


class _WindowedMonitor:
    """Shared piecewise-constant integration over a fixed window grid.

    Subclasses mutate ``_in_use`` (busy level) and ``_depth`` (queue
    depth) and call :meth:`_advance` *before* every state change; the
    base class splits the integrals exactly at window boundaries.
    """

    __slots__ = ("sim", "name", "kind", "capacity", "window_us",
                 "windows", "extra", "_in_use", "_depth", "_last",
                 "_win_start", "_win_busy", "_win_depth_time",
                 "_win_max_depth", "_win_events", "_win_units",
                 "_finished", "busy_us", "depth_time_us", "max_depth",
                 "events", "units")

    def __init__(self, sim, name, kind, capacity=1,
                 window_us=DEFAULT_WINDOW_US):
        self.sim = sim
        self.name = name
        self.kind = kind
        self.capacity = capacity  # None => occupancy has no ceiling
        self.window_us = float(window_us)
        self.windows = []
        #: optional callable returning a dict merged into summary()
        self.extra = None
        self._in_use = 0
        self._depth = 0
        self._last = sim.now
        self._win_start = sim.now
        self._win_busy = 0.0
        self._win_depth_time = 0.0
        self._win_max_depth = 0
        self._win_events = 0
        self._win_units = 0
        self._finished = False
        # run totals
        self.busy_us = 0.0
        self.depth_time_us = 0.0
        self.max_depth = 0
        self.events = 0
        self.units = 0

    # -- integration -------------------------------------------------------

    def _integrate_to(self, t):
        dt = t - self._last
        if dt > 0:
            busy = self._in_use * dt
            depth = self._depth * dt
            self._win_busy += busy
            self._win_depth_time += depth
            self.busy_us += busy
            self.depth_time_us += depth
        self._last = t

    def _close_window(self, end):
        self.windows.append(Window(
            self._win_start, end, self._win_busy, self._win_depth_time,
            self._win_max_depth, self._win_events, self._win_units))
        self._win_start = end
        self._win_busy = 0.0
        self._win_depth_time = 0.0
        self._win_max_depth = self._depth
        self._win_events = 0
        self._win_units = 0

    def _advance(self, now):
        """Integrate current state up to ``now``, closing crossed windows."""
        boundary = self._win_start + self.window_us
        if now < boundary:
            # Fast path: still inside the current window — inline the
            # integration (this runs on every monitored transition).
            dt = now - self._last
            if dt > 0:
                busy = self._in_use * dt
                depth = self._depth * dt
                self._win_busy += busy
                self._win_depth_time += depth
                self.busy_us += busy
                self.depth_time_us += depth
            self._last = now
            return
        while now >= boundary:
            self._integrate_to(boundary)
            self._close_window(boundary)
            boundary = self._win_start + self.window_us
        self._integrate_to(now)

    def _note_depth(self):
        if self._depth > self._win_max_depth:
            self._win_max_depth = self._depth
        if self._depth > self.max_depth:
            self.max_depth = self._depth

    def finish(self, elapsed=None):
        """Integrate up to ``elapsed`` (default: now) and close the
        final partial window. Idempotent."""
        if self._finished:
            return
        end = self.sim.now if elapsed is None else max(elapsed, self._last)
        self._advance(end)
        if end > self._win_start or not self.windows:
            self._close_window(end)
        self._finished = True

    # -- reporting ---------------------------------------------------------

    def busy_between(self, start, end):
        """Busy µs inside [start, end], attributing partial windows
        proportionally (state is near-uniform within a window)."""
        return self._overlap_sum(start, end, "busy_us")

    def depth_time_between(self, start, end):
        return self._overlap_sum(start, end, "depth_time_us")

    def _overlap_sum(self, start, end, field):
        total = 0.0
        for window in self.windows:
            lo = max(window.start, start)
            hi = min(window.end, end)
            if hi <= lo or window.width <= 0:
                continue
            total += getattr(window, field) * (hi - lo) / window.width
        return total

    def utilization(self, start, end):
        """Mean busy fraction over [start, end]; None when the monitor
        has no capacity ceiling (pure occupancy counters)."""
        width = end - start
        if self.capacity is None or width <= 0:
            return None
        return self.busy_between(start, end) / (width * self.capacity)

    def summary(self, start, end):
        """One report row covering the [start, end] analysis window."""
        width = max(end - start, 0.0)
        row = {
            "name": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "window_us": self.window_us,
            "busy_us": self.busy_between(start, end),
            "utilization": self.utilization(start, end),
            "queue": {
                "mean_depth": (self.depth_time_between(start, end) / width
                               if width > 0 else 0.0),
                "max_depth": self.max_depth,
            },
            "events": self.events,
            "units": self.units,
        }
        if self.extra is not None:
            row.update(self.extra())
        return row


class ResourceMonitor(_WindowedMonitor):
    """Busy/queue accounting for a slot-based FIFO resource.

    Driven by :class:`repro.sim.resources.Resource` at every acquire,
    grant, and release. Also samples the queueing delay of every grant
    (zero for uncontended acquires) into a distribution.
    """

    __slots__ = ("requests", "grants", "releases", "enqueues",
                 "dequeues", "cancels", "queue_delays")

    def __init__(self, sim, name, kind, capacity=1,
                 window_us=DEFAULT_WINDOW_US):
        super().__init__(sim, name, kind, capacity, window_us)
        self.requests = 0
        self.grants = 0
        self.releases = 0
        self.enqueues = 0
        self.dequeues = 0
        self.cancels = 0
        self.queue_delays = []

    def on_request(self, queued):
        """An acquire() arrived; ``queued`` when no slot was free."""
        self._advance(self.sim._now)
        self.requests += 1
        if queued:
            self._depth += 1
            self.enqueues += 1
            self._note_depth()

    def on_grant(self, waited_us, from_queue):
        """A slot was granted after ``waited_us`` in the queue."""
        self._advance(self.sim._now)
        self.grants += 1
        self.events += 1
        self._win_events += 1
        if from_queue:
            self._depth -= 1
            self.dequeues += 1
        self._in_use += 1
        self.queue_delays.append(waited_us)

    def on_uncontended_grant(self):
        """Fused ``on_request(queued=False)`` + ``on_grant(0.0,
        from_queue=False)``: both hooks fire at the same instant on an
        uncontended acquire (the hot case), so one ``_advance``
        suffices and the result is numerically identical."""
        self._advance(self.sim._now)
        self.requests += 1
        self.grants += 1
        self.events += 1
        self._win_events += 1
        self._in_use += 1
        self.queue_delays.append(0.0)

    def on_handoff(self, waited_us):
        """Fused ``on_release`` + ``on_grant(waited_us,
        from_queue=True)``: a freed slot handed straight to a waiter
        changes nothing at distinct instants (release -1 and grant +1
        cancel), so one ``_advance`` suffices."""
        self._advance(self.sim._now)
        self.releases += 1
        self.grants += 1
        self.events += 1
        self._win_events += 1
        self._depth -= 1
        self.dequeues += 1
        self.queue_delays.append(waited_us)

    def on_release(self):
        """A slot was freed (possibly handed straight to a waiter)."""
        self._advance(self.sim._now)
        self.releases += 1
        self._in_use -= 1

    def on_cancel(self):
        """A queued acquire was abandoned (interrupt, timeout) before
        any slot was granted — a dequeue that is not a grant."""
        self._advance(self.sim._now)
        self._depth -= 1
        self.dequeues += 1
        self.cancels += 1

    def summary(self, start, end):
        row = super().summary(start, end)
        row["requests"] = self.requests
        row["grants"] = self.grants
        row["queue"]["delay_us"] = quantiles.distribution_summary(
            self.queue_delays)
        return row


class ChargeMonitor(_WindowedMonitor):
    """Busy accounting for resources charged by duration, not slots.

    The PCIe link is the canonical case: backends charge each DMA's
    duration as it is priced, so busy time is the total DMA time and
    ``capacity`` (concurrent DMA engines, one per NIC PU) normalizes it
    into a utilization. A charge is attributed to the window containing
    the instant it is recorded.
    """

    __slots__ = ()

    def charge(self, duration_us, events=1, units=0):
        self._advance(self.sim._now)
        self._win_busy += duration_us
        self.busy_us += duration_us
        self._win_events += events
        self.events += events
        self._win_units += units
        self.units += units

    def count(self, events=1, units=0):
        """Count events (engine ops, bytes touched) without busy time."""
        self.charge(0.0, events=events, units=units)

    def busy_between(self, start, end):
        # Charges land at instants; proportional attribution within a
        # window still applies, the totals are exact over full windows.
        return self._overlap_sum(start, end, "busy_us")


class DepthMonitor(_WindowedMonitor):
    """A pure occupancy counter: in-flight requests, queued messages."""

    __slots__ = ("enters", "exits")

    def __init__(self, sim, name, kind, window_us=DEFAULT_WINDOW_US):
        super().__init__(sim, name, kind, capacity=None,
                         window_us=window_us)
        self.enters = 0
        self.exits = 0

    def adjust(self, delta):
        self._advance(self.sim._now)
        self._depth += delta
        if delta > 0:
            self.enters += delta
            self.events += delta
            self._win_events += delta
            self._note_depth()
        else:
            self.exits -= delta

    def summary(self, start, end):
        row = super().summary(start, end)
        row["enters"] = self.enters
        row["exits"] = self.exits
        return row


class UtilizationCollector:
    """The per-run home of every monitor.

    Install with :meth:`repro.sim.kernel.Simulator.set_utilization`
    *before* building the system: every
    :class:`~repro.sim.resources.Resource` created afterwards
    self-registers, and the instrumented layers (PCIe, engine,
    channels, fabric) attach their charge/depth monitors. After the
    run, :meth:`finish` closes the books and :meth:`report` yields one
    summary row per resource over the analysis window.
    """

    def __init__(self, window_us=DEFAULT_WINDOW_US):
        self.window_us = float(window_us)
        self.monitors = []
        self._sim = None
        #: analysis window bounds; the bench harness sets these to the
        #: measurement window so warmup does not dilute utilization
        self.measure_from = 0.0
        self.measure_until = None
        self.elapsed = None

    def bind(self, sim):
        self._sim = sim
        return self

    @property
    def sim(self):
        if self._sim is None:
            raise RuntimeError(
                "collector not bound; install it with sim.set_utilization()")
        return self._sim

    # -- attachment --------------------------------------------------------

    def watch_resource(self, resource, kind=None):
        """Attach a :class:`ResourceMonitor` to a FIFO resource."""
        monitor = ResourceMonitor(
            resource.sim, resource.name, kind or resource.kind,
            capacity=resource.capacity, window_us=self.window_us)
        resource.monitor = monitor
        resource._wait_since = deque()
        self.monitors.append(monitor)
        return monitor

    def charge_monitor(self, name, kind, capacity=1):
        monitor = ChargeMonitor(self.sim, name, kind, capacity=capacity,
                                window_us=self.window_us)
        self.monitors.append(monitor)
        return monitor

    def depth_monitor(self, name, kind):
        monitor = DepthMonitor(self.sim, name, kind,
                               window_us=self.window_us)
        self.monitors.append(monitor)
        return monitor

    # -- reporting ---------------------------------------------------------

    def finish(self, elapsed=None):
        """Close every monitor's final window at ``elapsed`` (or now)."""
        self.elapsed = self.sim.now if elapsed is None else elapsed
        for monitor in self.monitors:
            monitor.finish(self.elapsed)
        return self

    def window_bounds(self):
        end = self.measure_until
        if end is None:
            end = self.elapsed if self.elapsed is not None else self.sim.now
        return self.measure_from, end

    def report(self, start=None, end=None):
        """Per-resource summaries over the analysis window, in
        attachment order."""
        bounds = self.window_bounds()
        start = bounds[0] if start is None else start
        end = bounds[1] if end is None else end
        if not self.monitors:
            return []
        if self.elapsed is None:
            self.finish()
        return [monitor.summary(start, end) for monitor in self.monitors]
