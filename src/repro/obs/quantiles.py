"""Shared quantile and histogram arithmetic.

One implementation of linear-interpolated percentiles and fixed-width
histograms, used by both sample collectors in the tree —
:class:`repro.sim.stats.LatencyRecorder` (benchmark latencies) and
:class:`repro.obs.metrics.Histogram` (registry instruments) — and by
the utilization monitors' queueing-delay distributions. Keeping the
arithmetic in one place guarantees a p99 means the same thing wherever
it is reported.

All functions are total: empty inputs yield ``nan`` (or an empty
list), never an exception, so a report over a run that completed no
operations renders as NaN columns instead of crashing.
"""

import math


def percentile(samples, p):
    """Linear-interpolated percentile of ``samples``, ``p`` in [0, 100].

    ``samples`` need not be sorted. Returns ``nan`` when empty.
    """
    if not samples:
        return float("nan")
    return percentile_sorted(sorted(samples), p)


def percentile_sorted(ordered, p):
    """Like :func:`percentile` for an already ascending-sorted sequence."""
    if not ordered:
        return float("nan")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def mean(samples):
    """Arithmetic mean; ``nan`` when empty."""
    if not samples:
        return float("nan")
    return sum(samples) / len(samples)


def fixed_width_histogram(samples, bucket_width=None, max_buckets=32):
    """Fixed-width histogram: sorted list of ``(bucket_start, count)``.

    Width defaults to span/``max_buckets`` so the histogram always fits
    in ``max_buckets`` entries; with an explicit ``bucket_width`` the
    bucket count is ``ceil(span / bucket_width)`` (at least one). In
    both cases a sample equal to the maximum belongs to the *last*
    bucket — it is the closed upper edge of the range, not the start
    of a bucket of its own. Empty input yields ``[]``.
    """
    if not samples:
        return []
    low, high = min(samples), max(samples)
    span = max(high - low, 1e-9)
    if bucket_width is None:
        bucket_width = span / max_buckets
    last_bucket = max(math.ceil(span / bucket_width) - 1, 0)
    counts = {}
    for sample in samples:
        index = min(int((sample - low) / bucket_width), last_bucket)
        bucket = low + bucket_width * index
        counts[bucket] = counts.get(bucket, 0) + 1
    return sorted(counts.items())


def percentile_weighted(items, p):
    """Linear-interpolated percentile of weighted samples.

    ``items`` is an ascending-sorted sequence of ``(value, weight)``
    with positive *integer* weights; the result is exactly
    :func:`percentile_sorted` over the expanded multiset (each value
    repeated ``weight`` times) without materializing it. Returns
    ``nan`` when the total weight is zero.
    """
    total = sum(weight for _, weight in items)
    if total == 0:
        return float("nan")
    if total == 1:
        return items[0][0]
    rank = (p / 100.0) * (total - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    frac = rank - low
    low_value = high_value = None
    cumulative = 0
    for value, weight in items:
        if weight <= 0:
            continue
        # this value occupies expanded ranks [cumulative, cumulative+weight)
        if low_value is None and low < cumulative + weight:
            low_value = value
        if high < cumulative + weight:
            high_value = value
            break
        cumulative += weight
    if high_value is None:       # p == 100 lands on the last sample
        high_value = items[-1][0]
        if low_value is None:
            low_value = high_value
    if low == high:
        return low_value
    return low_value * (1 - frac) + high_value * frac


def distribution_summary(samples):
    """``{count, mean, p50, p99, max}`` of a sample list (NaNs if empty)."""
    if not samples:
        nan = float("nan")
        return {"count": 0, "mean": nan, "p50": nan, "p99": nan, "max": nan}
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile_sorted(ordered, 50),
        "p99": percentile_sorted(ordered, 99),
        "max": ordered[-1],
    }
