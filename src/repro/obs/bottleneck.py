"""Bottleneck analysis over a utilization report.

Turns :meth:`repro.obs.timeline.UtilizationCollector.report` output
into the sentence the paper's evaluation keeps writing: *which
resource saturates, and how much headroom is left* — the CPU-bound vs
network-bound crossover framing of Storm and "RDMA vs RPC".

The verdict is the kind of the most-utilized capacity-bearing
resource: ``cpu-bound`` (core pools), ``nic-bound`` (verb-engine
pools), ``wire-bound`` (TX/RX ports), ``pcie-bound`` (DMA link). When
nothing reaches the saturation threshold the run is ``load-bound`` —
offered load, not any modeled resource, limits throughput.
"""

#: a resource at or above this busy fraction is considered saturated
SATURATION_THRESHOLD = 0.85

#: kinds that represent real capacity (occupancy counters are evidence,
#: not candidates)
_CAPACITY_KINDS = ("cpu", "nic", "wire", "pcie")


def _headroom(utilization):
    """Additional load factor before 100% busy: 1/u - 1 (inf when idle)."""
    if utilization <= 0:
        return float("inf")
    return max(0.0, 1.0 / utilization - 1.0)


def analyze(report, saturation=SATURATION_THRESHOLD, top=5):
    """Name the saturated resource of a run.

    ``report`` is a list of summary rows from
    :meth:`~repro.obs.timeline.UtilizationCollector.report`. Returns::

        {"verdict": "cpu-bound" | "nic-bound" | "wire-bound"
                    | "pcie-bound" | "load-bound",
         "resource": <name of the binding resource>,
         "kind": ..., "utilization": ..., "headroom": ...,
         "mean_queue_depth": ..., "queue_delay_p99_us": ...,
         "saturated": [names at/over the threshold],
         "ranked": [top-N rows by utilization]}

    An empty report (collection disabled) yields verdict ``unknown``.
    """
    candidates = [row for row in report
                  if row.get("utilization") is not None
                  and row["kind"] in _CAPACITY_KINDS]
    if not candidates:
        return {"verdict": "unknown", "resource": None, "kind": None,
                "utilization": None, "headroom": None,
                "mean_queue_depth": None, "queue_delay_p99_us": None,
                "saturated": [], "ranked": []}
    ranked = sorted(candidates, key=lambda row: row["utilization"],
                    reverse=True)
    binding = ranked[0]
    saturated = [row["name"] for row in ranked
                 if row["utilization"] >= saturation]
    verdict = (f"{binding['kind']}-bound" if saturated else "load-bound")
    queue = binding.get("queue", {})
    delay = queue.get("delay_us", {})
    return {
        "verdict": verdict,
        "resource": binding["name"],
        "kind": binding["kind"],
        "utilization": binding["utilization"],
        "headroom": _headroom(binding["utilization"]),
        "mean_queue_depth": queue.get("mean_depth"),
        "queue_delay_p99_us": delay.get("p99"),
        "saturated": saturated,
        "ranked": [
            {"name": row["name"], "kind": row["kind"],
             "utilization": row["utilization"],
             "mean_queue_depth": row.get("queue", {}).get("mean_depth")}
            for row in ranked[:top]],
    }


def format_analysis(analysis):
    """Human-readable multi-line rendering of :func:`analyze` output."""
    if analysis["resource"] is None:
        return "bottleneck: unknown (utilization collection disabled)"
    lines = [
        f"bottleneck: {analysis['verdict']} — {analysis['resource']} at "
        f"{analysis['utilization']:.0%} busy "
        f"(headroom {analysis['headroom']:.2f}x)",
    ]
    depth = analysis.get("mean_queue_depth")
    p99 = analysis.get("queue_delay_p99_us")
    if depth is not None:
        detail = f"  queue: mean depth {depth:.2f}"
        if p99 is not None and p99 == p99:  # not NaN
            detail += f", delay p99 {p99:.2f} µs"
        lines.append(detail)
    for row in analysis["ranked"]:
        lines.append(f"  {row['name']} [{row['kind']}] "
                     f"{row['utilization']:.0%}")
    return "\n".join(lines)
