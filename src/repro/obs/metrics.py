"""A labeled metrics registry: counters, gauges, histograms.

The registry is the system's one map from metric name + label set to a
live instrument. Layers either update instruments directly (hot-path
counters) or *absorb* the ad-hoc totals they already keep into a
registry at snapshot time — :func:`repro.prism.stats.server_report` is
a thin view built this way.

Instruments are cheap plain objects; nothing here touches the
simulated clock, so the registry is safe to read at any time.
"""

from repro.obs import quantiles


def _label_key(labels):
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"{self.name}: counters only increase")
        self.value += amount
        return self.value

    def absorb(self, total):
        """Set the counter to an externally maintained running total.

        For snapshot-style collection of totals another layer already
        counts (port bytes, engine ops): idempotent across repeated
        collections, but still refuses to go backwards.
        """
        if total < self.value:
            raise ValueError(
                f"{self.name}: absorbed total went backwards "
                f"({total} < {self.value})")
        self.value = total
        return self.value


class Gauge:
    """A point-in-time value (utilization, queue depth, free buffers)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value):
        self.value = value
        return self.value

    def inc(self, amount=1):
        self.value += amount
        return self.value

    def dec(self, amount=1):
        self.value -= amount
        return self.value


class Histogram:
    """A distribution of observations with quantile queries."""

    __slots__ = ("name", "labels", "samples", "total")

    kind = "histogram"

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.samples = []
        self.total = 0.0

    def observe(self, value):
        self.samples.append(value)
        self.total += value

    @property
    def count(self):
        return len(self.samples)

    def mean(self):
        if not self.samples:
            return float("nan")
        return self.total / len(self.samples)

    def percentile(self, p):
        """Linear-interpolated percentile, ``p`` in [0, 100]; NaN if empty."""
        return quantiles.percentile(self.samples, p)

    @property
    def value(self):
        """Summary dict (what :meth:`MetricsRegistry.collect` reports)."""
        return {"count": self.count, "sum": self.total, "mean": self.mean()}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by name + labels."""

    def __init__(self):
        self._instruments = {}

    def _get(self, kind, name, labels):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KINDS[kind](name, dict(labels))
            self._instruments[key] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"not {kind}")
        return instrument

    def counter(self, name, **labels):
        return self._get("counter", name, labels)

    def gauge(self, name, **labels):
        return self._get("gauge", name, labels)

    def histogram(self, name, **labels):
        return self._get("histogram", name, labels)

    # -- reading -----------------------------------------------------------

    def __len__(self):
        return len(self._instruments)

    def __iter__(self):
        return iter(self._instruments.values())

    def get(self, name, **labels):
        """The instrument registered under this name + labels, or None."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name, **labels):
        """Shorthand: the instrument's current value (KeyError if absent)."""
        instrument = self.get(name, **labels)
        if instrument is None:
            raise KeyError(f"no metric {name!r} with labels {labels}")
        return instrument.value

    def collect(self):
        """Stable-sorted snapshot: list of (name, labels, kind, value)."""
        return [(i.name, dict(i.labels), i.kind, i.value)
                for _key, i in sorted(self._instruments.items(),
                                      key=lambda item: item[0])]

    def format(self):
        """Plain-text rendering, one metric per line."""
        lines = []
        for name, labels, kind, value in self.collect():
            label_text = ",".join(f"{k}={v}" for k, v in
                                  sorted(labels.items()))
            rendered = (f"{value:.6g}" if isinstance(value, float)
                        else str(value))
            lines.append(f"{name}{{{label_text}}} {rendered}")
        return "\n".join(lines)
