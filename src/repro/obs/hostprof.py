"""Host-side self-profiling: where does the *simulator's* time go?

Every other observability layer measures simulated time; this one
measures the wall-clock cost of producing it — the quantity ROADMAP
item 1 ("10x events/sec") is judged against. Three pieces:

* :class:`HostProfiler` — a lightweight meter the kernel drives:
  events/sec and resumes/sec from plain counters, plus per-bucket
  wall-time attribution from paired ``time.perf_counter()`` samples at
  the instrumented hot paths. Buckets (:data:`BUCKETS`):

  ========  =====================================================
  bucket    host time spent in
  ========  =====================================================
  dispatch  kernel event dispatch (callback execution, exclusive
            of the nested buckets below)
  resume    driving process generators (``Process._step``)
  resource  ``Resource.acquire``/``release`` and ``Store`` put/get
  codec     ``repro.hw`` codec pack/unpack (layout structs,
            memory integer codecs)
  hooks.obs     observability hook overhead (resource monitors)
  hooks.faults  fault-injection hook overhead (message fates)
  hooks.views   sliding-window view maintenance + probe evaluation
                (:mod:`repro.obs.views`)
  ========  =====================================================

  Attribution is *exclusive*: entering a nested bucket suspends the
  enclosing one, so bucket seconds are disjoint slices of measured
  wall time and their shares sum to <= 1.0. The remainder (heap
  operations, loop overhead, un-bucketed model code) is the
  unattributed share.

* :class:`StackSampler` — a daemon-thread sampler over
  ``sys._current_frames()`` that emits collapsed stacks
  (``a;b;c count`` lines, flamegraph.pl / speedscope ready).

* :class:`ProfileSession` / :func:`profile_session` — wraps a block of
  host work in either a ``cProfile`` capture (writes ``<prefix>.pstats``
  plus a collapsed-stack digest) or a :class:`StackSampler` capture
  (writes ``flame.<prefix>.txt``).

The off-by-default contract, same as every obs/faults layer: with no
profiler installed, every hook is a single ``is None`` check; the
kernel keeps its uninstrumented run loop. And because the profiler
only *reads* the wall clock — it never touches the simulated clock,
the event queue, or any model state — simulated results are
bit-identical whether profiling is off or on.

Installation: ``sim.set_hostprof(HostProfiler())`` (the bench harness
does this for ``--profile`` runs), or :func:`activate` to set the
ambient profiler that every subsequently constructed
:class:`~repro.sim.kernel.Simulator` picks up — the hook for
standalone benchmark scripts that build simulators internally.
"""

import os
import sys
import threading
from time import perf_counter

#: attribution buckets, in report order
BUCKETS = ("dispatch", "resume", "resource", "codec",
           "hooks.obs", "hooks.faults", "hooks.views")

#: the ambient profiler: codec hooks (which have no simulator handle)
#: read it, and ``Simulator.__init__`` adopts it when set. None means
#: profiling is off everywhere — the default.
ACTIVE = None


def activate(profiler):
    """Make ``profiler`` the ambient profiler; returns it.

    Every :class:`~repro.sim.kernel.Simulator` constructed while a
    profiler is active adopts it, and the module-level codec hooks
    charge to it. ``sim.set_hostprof`` calls this implicitly so the
    codec hooks always agree with the kernel's installed profiler.
    """
    global ACTIVE
    ACTIVE = profiler
    return profiler


def deactivate(profiler=None):
    """Clear the ambient profiler (if ``profiler`` is given, only when
    it is the one currently active)."""
    global ACTIVE
    if profiler is None or ACTIVE is profiler:
        ACTIVE = None


class HostProfiler:
    """Wall-clock meter for the kernel hot path.

    Counters (``events``, ``resumes``) are exact; bucket attribution
    is paired sampling — ``perf_counter()`` at every bucket boundary.
    ``stride=k`` times only every k-th kernel event (counters stay
    exact) and extrapolates bucket seconds by k, trading attribution
    precision for lower observer overhead on very hot loops.
    """

    __slots__ = ("stride", "events", "resumes", "runs", "wall_s",
                 "timed_events", "bucket_s", "_timing", "_stack",
                 "_current", "_last", "_run_t0")

    def __init__(self, stride=1):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)
        self.events = 0
        self.resumes = 0
        self.runs = 0
        self.wall_s = 0.0
        self.timed_events = 0
        self.bucket_s = {bucket: 0.0 for bucket in BUCKETS}
        self._timing = False
        self._stack = []
        self._current = None
        self._last = 0.0
        self._run_t0 = 0.0

    # -- kernel loop hooks -------------------------------------------------

    def run_begin(self):
        """The kernel entered its run loop; wall time starts counting."""
        self.runs += 1
        self._run_t0 = perf_counter()

    def run_end(self):
        """The kernel left its run loop."""
        self.wall_s += perf_counter() - self._run_t0

    def event_begin(self):
        """One queue entry is about to execute."""
        self.events += 1
        if self.events % self.stride:
            return
        self.begin_timed()

    def begin_timed(self):
        """Start timing one event. The kernel's profiled loops inline
        the counter increment and stride check and call this only for
        the sampled events (see ``_run_profiled``); ``event_begin`` is
        the equivalent single-call form."""
        self.timed_events += 1
        self._timing = True
        self.enter("dispatch")

    def event_end(self):
        """The queue entry finished; close any buckets it left open
        (a callback exception can strand nested enters)."""
        if not self._timing:
            return
        while self._current is not None:
            self.exit()
        self._stack.clear()
        self._timing = False

    def resume_begin(self):
        """``Process._step`` is about to drive a generator."""
        self.resumes += 1
        self.enter("resume")

    # -- bucket attribution --------------------------------------------------

    def enter(self, bucket):
        """Charge elapsed time to the enclosing bucket, start ``bucket``."""
        if not self._timing:
            return
        now = perf_counter()
        current = self._current
        if current is not None:
            self.bucket_s[current] += now - self._last
        self._stack.append(current)
        self._current = bucket
        self._last = now

    def exit(self):
        """Close the innermost bucket, resuming its parent."""
        if not self._timing:
            return
        now = perf_counter()
        self.bucket_s[self._current] += now - self._last
        self._current = self._stack.pop() if self._stack else None
        self._last = now

    # -- reporting -----------------------------------------------------------

    def report(self):
        """The ``host`` section: rates, wall seconds, bucket shares.

        Bucket shares are fractions of measured wall time and sum to
        <= 1.0 (exclusive attribution; with ``stride > 1`` the
        extrapolated totals are clipped to the wall time).
        """
        wall = self.wall_s
        scale = float(self.stride)
        attributed = sum(self.bucket_s[name] for name in BUCKETS) * scale
        clip = wall / attributed if 0.0 < wall < attributed else 1.0
        buckets = {}
        for name in BUCKETS:
            seconds = self.bucket_s[name] * scale * clip
            buckets[name] = {
                "seconds": seconds,
                "share": seconds / wall if wall > 0.0 else 0.0,
            }
        return {
            "wall_s": wall,
            "runs": self.runs,
            "events": self.events,
            "resumes": self.resumes,
            "events_per_sec": self.events / wall if wall > 0.0 else 0.0,
            "resumes_per_sec": self.resumes / wall if wall > 0.0 else 0.0,
            "stride": self.stride,
            "buckets": buckets,
            "attributed_share": (min(attributed * clip, wall) / wall
                                 if wall > 0.0 else 0.0),
        }


# -- collapsed stacks ---------------------------------------------------------


def _frame_label(filename, funcname):
    return f"{os.path.basename(filename)}:{funcname}"


class StackSampler:
    """Periodic stack sampler for the calling thread.

    A daemon thread wakes every ``interval_s`` and snapshots the
    target thread's Python stack via ``sys._current_frames()``;
    :meth:`collapsed` folds the samples into flamegraph-ready
    ``frame;frame;frame count`` lines. Sampling reads frames without
    tracing hooks, so the profiled code runs at full speed.
    """

    def __init__(self, interval_s=0.002):
        self.interval_s = interval_s
        self.samples = {}
        self._stop = threading.Event()
        self._thread = None
        self._target_id = None

    def start(self):
        self._target_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="hostprof-sampler", daemon=True)
        self._thread.start()
        return self

    def _loop(self):
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:
                continue
            stack = []
            while frame is not None:
                code = frame.f_code
                stack.append(_frame_label(code.co_filename, code.co_name))
                frame = frame.f_back
            key = ";".join(reversed(stack))
            self.samples[key] = self.samples.get(key, 0) + 1

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        return self

    def collapsed(self):
        """``{stack: count}`` of every sample taken so far."""
        return dict(self.samples)


def write_collapsed(samples, path):
    """Write ``{stack: count}`` as flamegraph.pl collapsed lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for stack, count in sorted(samples.items(),
                                   key=lambda item: (-item[1], item[0])):
            handle.write(f"{stack} {count}\n")
    return path


def _pstats_collapsed(stats):
    """Approximate collapsed stacks from a pstats table.

    cProfile records caller->callee pairs, not full stacks, so the
    folded output is two frames deep: each function's self time
    (microsecond counts) split across its direct callers by call
    count. Enough for a flamegraph of where self time concentrates.
    """
    lines = {}
    for func, (_cc, _nc, tottime, _ct, callers) in stats.items():
        label = _frame_label(func[0], func[2])
        self_us = int(tottime * 1e6)
        if self_us <= 0:
            continue
        total_calls = sum(entry[0] for entry in callers.values())
        if not callers or total_calls <= 0:
            lines[label] = lines.get(label, 0) + self_us
            continue
        for caller, (call_count, _n, _t, _c) in callers.items():
            key = f"{_frame_label(caller[0], caller[2])};{label}"
            part = int(self_us * call_count / total_calls)
            if part > 0:
                lines[key] = lines.get(key, 0) + part
    return lines


# -- whole-block capture ------------------------------------------------------


class ProfileSession:
    """cProfile or sampling capture around a block of host work.

    ``mode`` is ``"cprofile"`` (deterministic per-function profile,
    written as ``<prefix>.pstats`` plus a collapsed digest) or
    ``"sample"`` (wall-clock stack sampling, written as
    ``flame.<prefix>.txt``). ``paths`` lists every artifact written,
    in write order.
    """

    MODES = ("cprofile", "sample")

    def __init__(self, mode, prefix="hostprof", out_dir="."):
        if mode not in self.MODES:
            raise ValueError(f"profile mode must be one of {self.MODES}, "
                             f"got {mode!r}")
        self.mode = mode
        self.prefix = prefix
        self.out_dir = out_dir
        self.paths = []
        self._cprofile = None
        self._sampler = None

    def _path(self, name):
        return os.path.join(self.out_dir, name)

    def start(self):
        if self.mode == "cprofile":
            import cProfile
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()
        else:
            self._sampler = StackSampler().start()
        return self

    def stop(self):
        if self._cprofile is not None:
            self._cprofile.disable()
            pstats_path = self._path(f"{self.prefix}.pstats")
            self._cprofile.dump_stats(pstats_path)
            self.paths.append(pstats_path)
            import pstats
            stats = pstats.Stats(self._cprofile).stats
            self.paths.append(write_collapsed(
                _pstats_collapsed(stats),
                self._path(f"flame.{self.prefix}.txt")))
            self._cprofile = None
        if self._sampler is not None:
            self._sampler.stop()
            self.paths.append(write_collapsed(
                self._sampler.collapsed(),
                self._path(f"flame.{self.prefix}.txt")))
            self._sampler = None
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False


def profile_session(mode, prefix="hostprof", out_dir="."):
    """Context manager: ``with profile_session("sample", "fig3"): ...``"""
    return ProfileSession(mode, prefix=prefix, out_dir=out_dir)
