"""Per-phase latency attribution from span trees.

Answers the paper's §4.3 question — *where do the microseconds go?* —
for a traced run: how much of each operation's end-to-end latency was
wire serialization/propagation, NIC verb processing, PCIe round trips,
CPU work, and queueing.

Attribution is by **self time**: each span contributes its duration
minus the duration of its direct children to its own phase, so sibling
spans that tile their parent sum exactly to the parent and the phase
totals of one operation sum exactly to its end-to-end latency. A span
may refine its own lump duration with ``parts`` (a ``{phase: µs}``
dict) when the simulator charged heterogeneous work as one timeout —
e.g. a hardware-NIC op whose cost mixes verb processing and PCIe.

Spans that overlap their siblings (parallel fan-out, e.g. a quorum
write to three replicas) make the phase sum exceed wall-clock latency;
that is intentional — the report then reads as *total work* per phase,
while sequential chains keep the sums-to-total invariant exactly.
"""

#: attribution phases, in display order
PHASES = ("cpu", "wire", "queue", "nic", "pcie", "other")


def phase_attribution(root):
    """``{phase: µs}`` for one span tree; values sum to its duration
    (exactly, for sequential operations).

    Subtrees still open when the report runs (quorum stragglers past
    the f+1 answers the operation waited for) are pruned outright —
    an open span's ``duration`` would read the *current* clock, not
    real work, and its children are work the operation never waited on.
    """
    totals = dict.fromkeys(PHASES, 0.0)
    stack = [root]
    while stack:
        span = stack.pop()
        if span.end is None:
            continue
        finished = [c for c in span.children if c.end is not None]
        stack.extend(finished)
        child_time = sum(child.duration for child in finished)
        self_time = max(0.0, span.duration - child_time)
        if span.parts:
            part_total = 0.0
            for phase, amount in span.parts.items():
                totals[phase] = totals.get(phase, 0.0) + amount
                part_total += amount
            self_time = max(0.0, self_time - part_total)
        totals[span.phase] = totals.get(span.phase, 0.0) + self_time
    return totals


def breakdown(roots):
    """Aggregate finished root spans into per-operation-type phase means.

    Returns ``{op_name: {"count", "mean_us", "phases": {phase: mean µs},
    "phase_sum_us"}}`` where ``phases`` are mean per-op attributions.
    """
    grouped = {}
    for root in roots:
        if root.end is None:
            continue
        entry = grouped.setdefault(
            root.name, {"count": 0, "total_us": 0.0,
                        "phases": dict.fromkeys(PHASES, 0.0)})
        entry["count"] += 1
        entry["total_us"] += root.duration
        for phase, amount in phase_attribution(root).items():
            entry["phases"][phase] = entry["phases"].get(phase, 0.0) + amount
    report = {}
    for name, entry in sorted(grouped.items()):
        count = entry["count"]
        phases = {phase: amount / count
                  for phase, amount in entry["phases"].items()}
        report[name] = {
            "count": count,
            "mean_us": entry["total_us"] / count,
            "phases": phases,
            "phase_sum_us": sum(phases.values()),
        }
    return report


def breakdown_rows(report):
    """(headers, rows) for :func:`repro.bench.reporting.print_table`."""
    phases = [phase for phase in PHASES
              if any(entry["phases"].get(phase, 0.0) > 1e-9
                     for entry in report.values())]
    headers = ["op", "count", "mean_us"] + [f"{p}_us" for p in phases] \
        + ["sum_us"]
    rows = []
    for name, entry in report.items():
        rows.append([name, entry["count"], round(entry["mean_us"], 3)]
                    + [round(entry["phases"].get(p, 0.0), 3)
                       for p in phases]
                    + [round(entry["phase_sum_us"], 3)])
    return headers, rows
