"""Causal flight recorder: one bounded event log across every layer.

The other collectors each watch one family of transitions (spans,
resource busy time, primitive outcomes, fault counters). The flight
recorder is the layer that ties them into *stories*: a bounded
ring buffer of structured events — operation open/close, request
send/reply/timeout/backoff, CAS misses and NAKs, chain aborts, and
every fault injection — each stamped with the id of the client
operation it belongs to, so :mod:`repro.obs.forensics` can rebuild the
causal timeline of any single slow or failed request after the run.

Install contract (same as every collector)::

    recorder = FlightRecorder(capacity=65536)
    sim.set_flight(recorder)      # BEFORE system construction
    ... build system, run ...
    recorder.dump("flight.json")  # or recorder.to_dict()

Off by default: with no recorder installed every hook on the data path
is a single ``is None`` check and the run's simulated timing is
bit-identical to an unrecorded one. The recorder itself never reads or
schedules simulator events — it only appends to a host-side deque — so
a recorded run is also bit-identical in simulated time.

Causal attribution works without threading ids through any call
signature: the kernel tells the recorder which :class:`Process` is
executing (an enter/exit stack in ``Process._step``), the driver binds
the current client operation's id to its process at ``op_open``, and a
process spawned while another runs *inherits* the spawner's operation
context. Since the fabric spawns delivery from the sender's process,
the server spawns its handler from the delivery process, and replies
are sent from the handler, the whole request/reply tree — including
fault fates on either direction — lands on the originating operation
automatically. Events recorded outside any operation (crash schedules,
background daemons) carry ``op=None`` and are reported as global.

Retransmissions are linkable because :mod:`repro.net.port` stamps every
:class:`~repro.net.port.Request` with a stable ``logical_id`` that
survives fresh-id retransmission attempts; flight events on the
request path carry both the per-attempt ``req`` id and the ``logical``
id.
"""

import json
from collections import deque
from itertools import count

DEFAULT_CAPACITY = 65536


class FlightRecorder:
    """Bounded structured event log with per-operation causal context.

    Events are plain dicts ``{"seq", "t", "op", "kind", ...fields}``;
    ``seq`` is a monotone append index (so eviction is observable),
    ``t`` the simulated time, ``op`` the owning client operation id or
    None for global events. The ring holds the most recent
    ``capacity`` events; ``evicted`` counts what fell off the front.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("FlightRecorder needs capacity >= 1")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self.recorded = 0
        self.ops_opened = 0
        self.ops_closed = 0
        self._sim = None
        self._op_ids = count(1)
        #: kernel-maintained stack of executing processes (nested only
        #: for the yield-bad-target error path); the top's context is
        #: the operation every recorded event belongs to
        self._stack = []

    def bind(self, sim):
        """Attach to the simulator (``sim.set_flight`` calls this)."""
        self._sim = sim
        return self

    # -- kernel hooks (Process._step / Process.__init__) -------------------

    def enter_process(self, process):
        self._stack.append(process)

    def exit_process(self):
        self._stack.pop()

    def current_ctx(self):
        """The operation id of the currently executing process (or None)."""
        return self._stack[-1]._flight_ctx if self._stack else None

    # -- operation lifecycle (workload driver) ------------------------------

    def op_open(self, name, client=None):
        """A client operation begins; binds its id to the current process."""
        op_id = next(self._op_ids)
        self.ops_opened += 1
        if self._stack:
            self._stack[-1]._flight_ctx = op_id
        self.record("op.open", op=op_id, name=name, client=client)
        return op_id

    def op_close(self, op_id, status="ok", **fields):
        """The operation finished; clears the process binding."""
        self.ops_closed += 1
        self.record("op.close", op=op_id, status=status, **fields)
        if self._stack and self._stack[-1]._flight_ctx == op_id:
            self._stack[-1]._flight_ctx = None

    # -- recording -----------------------------------------------------------

    def record(self, kind, op=None, **fields):
        """Append one event; ``op`` defaults to the current context."""
        if op is None:
            op = self.current_ctx()
        event = {"seq": self.recorded,
                 "t": self._sim.now if self._sim is not None else 0.0,
                 "op": op, "kind": kind}
        event.update(fields)
        self.recorded += 1
        self._events.append(event)

    # -- reading back --------------------------------------------------------

    @property
    def evicted(self):
        """Events lost to the ring bound (oldest first)."""
        return self.recorded - len(self._events)

    @property
    def events(self):
        """The surviving events, oldest first."""
        return list(self._events)

    def to_dict(self):
        """JSON-ready snapshot (the flight-dump format)."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "evicted": self.evicted,
            "ops_opened": self.ops_opened,
            "ops_closed": self.ops_closed,
            "events": self.events,
        }

    def dump(self, path):
        """Write the flight dump as JSON; returns ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, default=repr)
            handle.write("\n")
        return path


def load_dump(path):
    """Read a flight dump written by :meth:`FlightRecorder.dump`."""
    with open(path) as handle:
        return json.load(handle)
