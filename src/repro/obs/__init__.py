"""Observability: span tracing, metrics, and latency attribution.

Three pieces, all driven by the simulated clock:

* :mod:`repro.obs.trace` — a span-based tracer. Instrumented code
  holds a parent :class:`Span` and opens children around timed work;
  the default :data:`NULL_SPAN` / :data:`NULL_TRACER` singletons make
  every instrumentation point a no-op, so untraced runs pay nothing.
* :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, histograms) that server/bench snapshots are built from.
* :mod:`repro.obs.breakdown` — aggregates finished span trees into a
  per-phase (wire / nic / pcie / cpu / queue) latency attribution, and
  :mod:`repro.obs.chrome_trace` exports them as Chrome trace-event
  JSON loadable in Perfetto.
* :mod:`repro.obs.timeline` — windowed busy/idle accounting and
  queue-depth telemetry for every contended resource (install a
  :class:`UtilizationCollector` via ``sim.set_utilization``), and
  :mod:`repro.obs.bottleneck` — the analyzer that names the saturated
  resource and its headroom.
* :mod:`repro.obs.quantiles` — the one shared implementation of
  linear-interpolated percentiles and fixed-width histograms.
* :mod:`repro.obs.primitives` — semantic counters for the PRISM
  primitives themselves (CAS outcomes and contention, pointer-chase
  depth, chain lengths/aborts, allocator watermarks, key hotness);
  install a :class:`PrimitiveCollector` via ``sim.set_primitives``.
* :mod:`repro.obs.critpath` — per-request critical-path attribution
  over span trees: which phase/span actually bounded end-to-end
  latency, vs slack the request never waited on.
* :mod:`repro.obs.hostprof` — the one layer on the *wall* clock:
  host-side self-profiling of the simulator itself (events/sec,
  per-bucket host-time attribution, cProfile/collapsed-stack export);
  install a :class:`HostProfiler` via ``sim.set_hostprof``.
* :mod:`repro.obs.flight` — a bounded causal event log tying every
  layer's events (ops, retries, CAS misses, fault injections) to the
  client operation they belong to; install a :class:`FlightRecorder`
  via ``sim.set_flight``. :mod:`repro.obs.forensics` replays a flight
  log into per-request timelines and automatic diagnoses.
* :mod:`repro.obs.series` — windowed time-series telemetry on the
  simulated clock (per-window throughput/goodput/latency digests and
  retry/NAK counters) with MSER steady-state detection and
  changepoint annotation cross-referenced against injected faults;
  install a :class:`SeriesCollector` via ``sim.set_series``.
* :mod:`repro.obs.views` — *online* sliding-window telemetry views:
  per-connection/per-key CAS retry, NAK, pointer-chase, timeout, and
  service-time signals maintained in O(1) rings and queryable
  mid-run (``views.rate(...)``/``views.ewma(...)``), plus a bounded
  decision log for shadow-mode policy probes; install a
  :class:`ViewCollector` via ``sim.set_views``.
"""

from repro.obs.bottleneck import (
    SATURATION_THRESHOLD,
    analyze,
    format_analysis,
)
from repro.obs.breakdown import (
    PHASES,
    breakdown,
    breakdown_rows,
    phase_attribution,
)
from repro.obs.chrome_trace import to_chrome_events, write_chrome_trace
from repro.obs.hostprof import (
    BUCKETS as HOST_BUCKETS,
    HostProfiler,
    ProfileSession,
    StackSampler,
    profile_session,
)
from repro.obs.critpath import (
    critical_attribution,
    critical_contributors,
    critical_segments,
    critpath_profile,
    critpath_rows,
    slack_us,
)
from repro.obs.flight import DEFAULT_CAPACITY as FLIGHT_DEFAULT_CAPACITY
from repro.obs.flight import FlightRecorder, load_dump as load_flight_dump
from repro.obs.forensics import (
    crash_windows,
    diagnose,
    explain_lines,
    narrate,
    timelines,
    worst_requests,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.primitives import PrimitiveCollector, TopK
from repro.obs.series import (
    DEFAULT_WINDOW_US as SERIES_DEFAULT_WINDOW_US,
    LatencyDigest,
    SeriesCollector,
    detect_steady_state,
    merge_digests,
)
from repro.obs.views import (
    DEFAULT_WINDOW_US as VIEWS_DEFAULT_WINDOW_US,
    RfpCrossoverProbe,
    ViewCollector,
    crossover_vs_series,
)
from repro.obs.timeline import (
    ChargeMonitor,
    DepthMonitor,
    ResourceMonitor,
    UtilizationCollector,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "FLIGHT_DEFAULT_CAPACITY",
    "HOST_BUCKETS",
    "PHASES",
    "SATURATION_THRESHOLD",
    "SERIES_DEFAULT_WINDOW_US",
    "VIEWS_DEFAULT_WINDOW_US",
    "analyze",
    "crossover_vs_series",
    "breakdown",
    "breakdown_rows",
    "crash_windows",
    "diagnose",
    "explain_lines",
    "critical_attribution",
    "critical_contributors",
    "critical_segments",
    "critpath_profile",
    "critpath_rows",
    "detect_steady_state",
    "format_analysis",
    "load_flight_dump",
    "merge_digests",
    "narrate",
    "phase_attribution",
    "profile_session",
    "slack_us",
    "timelines",
    "to_chrome_events",
    "worst_requests",
    "write_chrome_trace",
    "ChargeMonitor",
    "Counter",
    "DepthMonitor",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HostProfiler",
    "LatencyDigest",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "PrimitiveCollector",
    "ProfileSession",
    "ResourceMonitor",
    "RfpCrossoverProbe",
    "SeriesCollector",
    "Span",
    "StackSampler",
    "TopK",
    "Tracer",
    "UtilizationCollector",
    "ViewCollector",
]
