"""Observability: span tracing, metrics, and latency attribution.

Three pieces, all driven by the simulated clock:

* :mod:`repro.obs.trace` — a span-based tracer. Instrumented code
  holds a parent :class:`Span` and opens children around timed work;
  the default :data:`NULL_SPAN` / :data:`NULL_TRACER` singletons make
  every instrumentation point a no-op, so untraced runs pay nothing.
* :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, histograms) that server/bench snapshots are built from.
* :mod:`repro.obs.breakdown` — aggregates finished span trees into a
  per-phase (wire / nic / pcie / cpu / queue) latency attribution, and
  :mod:`repro.obs.chrome_trace` exports them as Chrome trace-event
  JSON loadable in Perfetto.
* :mod:`repro.obs.timeline` — windowed busy/idle accounting and
  queue-depth telemetry for every contended resource (install a
  :class:`UtilizationCollector` via ``sim.set_utilization``), and
  :mod:`repro.obs.bottleneck` — the analyzer that names the saturated
  resource and its headroom.
* :mod:`repro.obs.quantiles` — the one shared implementation of
  linear-interpolated percentiles and fixed-width histograms.
"""

from repro.obs.bottleneck import (
    SATURATION_THRESHOLD,
    analyze,
    format_analysis,
)
from repro.obs.breakdown import (
    PHASES,
    breakdown,
    breakdown_rows,
    phase_attribution,
)
from repro.obs.chrome_trace import to_chrome_events, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import (
    ChargeMonitor,
    DepthMonitor,
    ResourceMonitor,
    UtilizationCollector,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "PHASES",
    "SATURATION_THRESHOLD",
    "analyze",
    "breakdown",
    "breakdown_rows",
    "format_analysis",
    "phase_attribution",
    "to_chrome_events",
    "write_chrome_trace",
    "ChargeMonitor",
    "Counter",
    "DepthMonitor",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "ResourceMonitor",
    "Span",
    "Tracer",
    "UtilizationCollector",
]
