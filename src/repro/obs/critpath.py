"""Critical-path attribution over span trees.

:mod:`repro.obs.breakdown` totals *work* per phase; for sequential
requests those sums equal end-to-end latency, but for operations with
parallel fan-out (a quorum write hitting three replicas at once) the
work exceeds the wall clock and the breakdown cannot say which replica
— which phase of which replica — actually *bounded* the request.

This module answers that question. Walking one request's span tree
backward from its completion time, it selects at every instant the
span whose completion gated progress (the latest-finishing child not
overlapped by an already-chosen later sibling) and recurses into it.
The result is a set of half-open segments ``(span, lo, hi)`` that tile
``[root.start, root.end]`` exactly — so per-request critical-path
attributions sum to measured end-to-end latency by construction — and
everything off the path is *slack*: work the request never waited on.

Open subtrees (quorum stragglers still running when the root finished,
or past it) are excluded, mirroring :func:`~repro.obs.breakdown.
phase_attribution`'s pruning.
"""

from repro.obs.breakdown import PHASES, phase_attribution


def critical_segments(root):
    """``[(span, lo, hi), ...]`` tiling ``[root.start, root.end]``.

    Segments appear in reverse time order (the walk runs backward).
    An open root yields no segments.
    """
    if root.end is None:
        return []
    segments = []
    _walk(root, root.start, root.end, segments)
    return segments


def _walk(span, lo, hi, out):
    """Attribute ``(lo, hi]`` of ``span``'s life, recursing into the
    children that gated completion; emit segments into ``out``."""
    cursor = hi
    # Candidates: finished children that ended inside the window.
    # Sorted by end time, walked latest-first; a child ending after the
    # cursor was overlapped by an already-chosen sibling — off-path.
    children = sorted(
        (child for child in span.children
         if child.end is not None and lo < child.end <= hi),
        key=lambda child: (child.end, child.start))
    for child in reversed(children):
        if cursor <= lo:
            break
        if child.end > cursor:
            continue
        if child.end < cursor:
            out.append((span, child.end, cursor))  # span self time
        child_lo = max(child.start, lo)
        _walk(child, child_lo, child.end, out)
        cursor = child_lo
    if cursor > lo:
        out.append((span, lo, cursor))


def _segment_phases(span, duration):
    """``{phase: µs}`` for ``duration`` of ``span``'s own time,
    scaling any ``parts`` refinement to the attributed share."""
    if not span.parts:
        return {span.phase: duration}
    total = span.duration
    scale = duration / total if total > 0 else 0.0
    phases = {}
    part_sum = 0.0
    for phase, amount in span.parts.items():
        scaled = amount * scale
        phases[phase] = phases.get(phase, 0.0) + scaled
        part_sum += scaled
    remainder = duration - part_sum
    if remainder > 1e-12:
        phases[span.phase] = phases.get(span.phase, 0.0) + remainder
    return phases


def critical_attribution(root):
    """``{phase: µs}`` along the critical path; sums to
    ``root.duration`` exactly (the segments tile the request)."""
    totals = {}
    for span, lo, hi in critical_segments(root):
        for phase, amount in _segment_phases(span, hi - lo).items():
            totals[phase] = totals.get(phase, 0.0) + amount
    return totals


def critical_contributors(root):
    """``{span name: µs}`` of critical-path time, per contributing span."""
    totals = {}
    for span, lo, hi in critical_segments(root):
        totals[span.name] = totals.get(span.name, 0.0) + (hi - lo)
    return totals


def slack_us(root):
    """Traced work the request never waited on (µs).

    Total per-phase work minus wall-clock latency; zero for purely
    sequential requests, positive under parallel fan-out (the losing
    quorum replicas' work).
    """
    work = sum(phase_attribution(root).values())
    return max(0.0, work - root.duration)


def critpath_profile(roots):
    """Aggregate per-operation critical-path profiles.

    Returns ``{op_name: {"count", "mean_us", "phases": {phase: mean
    µs}, "critical_sum_us", "contributors": [{"name", "mean_us"},
    ...], "slack_us"}}`` where ``phases`` attributes each operation
    type's mean latency to the phases that bounded it, ``contributors``
    ranks the spans that spent that time (heaviest first), and
    ``slack_us`` is mean off-path work.
    """
    grouped = {}
    for root in roots:
        if root.end is None:
            continue
        entry = grouped.setdefault(root.name, {
            "count": 0, "total_us": 0.0, "phases": {},
            "contributors": {}, "slack_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += root.duration
        for phase, amount in critical_attribution(root).items():
            entry["phases"][phase] = entry["phases"].get(phase, 0.0) + amount
        for name, amount in critical_contributors(root).items():
            entry["contributors"][name] = \
                entry["contributors"].get(name, 0.0) + amount
        entry["slack_us"] += slack_us(root)
    profile = {}
    for name, entry in sorted(grouped.items()):
        count = entry["count"]
        phases = {phase: amount / count
                  for phase, amount in entry["phases"].items()}
        contributors = sorted(
            ({"name": cname, "mean_us": amount / count}
             for cname, amount in entry["contributors"].items()),
            key=lambda row: (-row["mean_us"], row["name"]))
        profile[name] = {
            "count": count,
            "mean_us": entry["total_us"] / count,
            "phases": phases,
            "critical_sum_us": sum(phases.values()),
            "contributors": contributors,
            "slack_us": entry["slack_us"] / count,
        }
    return profile


def critpath_rows(profile):
    """(headers, rows) for :func:`repro.bench.reporting.print_table`."""
    phases = [phase for phase in PHASES
              if any(entry["phases"].get(phase, 0.0) > 1e-9
                     for entry in profile.values())]
    headers = (["op", "count", "mean_us"]
               + [f"{phase}_us" for phase in phases]
               + ["crit_sum_us", "slack_us"])
    rows = []
    for name, entry in profile.items():
        rows.append([name, entry["count"], round(entry["mean_us"], 3)]
                    + [round(entry["phases"].get(phase, 0.0), 3)
                       for phase in phases]
                    + [round(entry["critical_sum_us"], 3),
                       round(entry["slack_us"], 3)])
    return headers, rows


def format_contributors(profile, top=4):
    """One line per op type naming its heaviest critical-path spans."""
    lines = []
    for name, entry in profile.items():
        heavy = ", ".join(f"{row['name']} {row['mean_us']:.2f}"
                          for row in entry["contributors"][:top])
        lines.append(f"  {name}: bounded by {heavy} (µs/op)")
    return "\n".join(lines)
