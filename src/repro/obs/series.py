"""Windowed time-series telemetry with steady-state detection.

Every other collector answers "what did the run do *in aggregate*?" —
one mean, one p99, one busy fraction. This module answers "how did the
run *evolve*?": it buckets operation completions, latency samples, and
net-layer recovery events (timeouts, retransmissions, NAKs) into
fixed-width windows on the simulated clock, then post-processes the
raw series into

* an **MSER steady-state verdict** — where the warm-up transient ends,
  and whether the configured warmup actually covers it;
* **changepoint annotations** — windows deviating from the
  steady-state band, cross-referenced against the fault plan's
  injected crash/drop/starvation windows so a chaos run's dips carry
  named causes instead of reading as noise.

Install contract (same as every collector)::

    series = SeriesCollector(window_us=50.0)
    sim.set_series(series)          # BEFORE system construction
    ... build system, run ...
    series.finish(sim.now)
    report = series.report(utilization=collector, faults=faults_report)

Off by default: with no collector installed every hook on the data
path is a single ``is None`` check, so an uncollected run is
bit-identical to today's. The collector only appends to host-side
structures at transitions the run already makes — it never reads or
schedules simulator events — so a collected run is bit-identical too.

Reconciliation contract: the per-window ``measured_ops`` counts sum
*exactly* to the run's measured operation total, and merging the
per-window latency digests reproduces the end-of-run
:class:`~repro.sim.stats.LatencyRecorder` mean/p50/p99 exactly while
every window's digest stays under ``digest_cap`` samples (the common
case by orders of magnitude). A window that overflows its cap
compresses into ≤ ``sketch_k`` weighted order statistics; merged
quantiles then carry an error bounded by the value span of one
centroid run of that window — documented, observable via the
``digest_exact`` flag, and never silent.
"""

import math

from repro.obs import quantiles

#: default series window width, simulated microseconds
DEFAULT_WINDOW_US = 50.0

#: per-window sample cap before a digest compresses itself
DEFAULT_DIGEST_CAP = 4096

#: order statistics kept by a compressed digest
SKETCH_K = 64

#: deviation threshold: a steady window is anomalous when it strays
#: from the steady mean by more than max(MSER_SIGMA * std, REL_FLOOR *
#: |mean|) — the relative floor keeps near-deterministic runs (tiny
#: std) from flagging every float wiggle as a changepoint
DEVIATION_SIGMA = 3.0
DEVIATION_REL_FLOOR = 0.10

#: counter families the net/fault layers bucket into windows
COUNTERS = ("timeouts", "retransmissions", "retries_exhausted", "naks",
            "drops", "dups", "delays", "crash_drops")


class LatencyDigest:
    """Mergeable per-window latency summary: exact until ``cap``.

    Holds raw samples while ``count <= cap``; past the cap it collapses
    into ``sketch_k`` weighted order statistics (value, integer weight)
    whose expansion approximates the original multiset. ``items()``
    yields the ``(value, weight)`` pairs either way, so merging digests
    is concatenation + sort — exact whenever every contributing digest
    stayed raw.
    """

    __slots__ = ("cap", "sketch_k", "count", "_samples", "_centroids")

    def __init__(self, cap=DEFAULT_DIGEST_CAP, sketch_k=SKETCH_K):
        self.cap = cap
        self.sketch_k = sketch_k
        self.count = 0
        self._samples = []
        self._centroids = None    # compressed: [(value, weight), ...]

    @property
    def exact(self):
        return self._centroids is None

    def add(self, value):
        self.count += 1
        self._samples.append(value)
        if self._centroids is not None or len(self._samples) > self.cap:
            self._compress()

    def _compress(self):
        """Collapse everything seen so far into ≤ sketch_k centroids.

        Each centroid is an actual sample (the median of a contiguous
        run of the sorted data) weighted by the run length; the first
        and last runs pin the min and max so extremes survive. The
        quantile error of the expansion is bounded by the value span
        of one run.
        """
        # no need to expand old centroids: merge them with the fresh
        # samples as weighted points, then re-bucket by cumulative weight
        points = sorted(list(self._centroids or [])
                        + [(s, 1) for s in self._samples])
        total = sum(w for _, w in points)
        k = min(self.sketch_k, total)
        centroids = []
        target = total / k
        run_weight = 0
        run_points = []
        for value, weight in points:
            run_points.append((value, weight))
            run_weight += weight
            if run_weight >= target and len(centroids) < k - 1:
                centroids.append((_weighted_median(run_points), run_weight))
                run_weight = 0
                run_points = []
        if run_points:
            centroids.append((_weighted_median(run_points), run_weight))
        # pin extremes: carve one unit off the first/last centroid
        lo, lo_w = centroids[0]
        hi, hi_w = centroids[-1]
        first = points[0][0]
        last = points[-1][0]
        if lo != first and lo_w > 1:
            centroids[0] = (lo, lo_w - 1)
            centroids.insert(0, (first, 1))
        if hi != last and hi_w > 1:
            centroids[-1] = (hi, hi_w - 1)
            centroids.append((last, 1))
        self._centroids = centroids
        self._samples = []

    def items(self):
        """Ascending ``(value, integer weight)`` pairs."""
        if self._centroids is not None:
            return list(self._centroids)
        return [(value, 1) for value in sorted(self._samples)]

    def summary(self):
        """``{count, mean, p50, p99, max}`` (NaNs when empty)."""
        items = self.items()
        if not items:
            nan = float("nan")
            return {"count": 0, "mean": nan, "p50": nan, "p99": nan,
                    "max": nan}
        total = sum(w for _, w in items)
        mean = sum(v * w for v, w in items) / total
        return {
            "count": self.count,
            "mean": mean,
            "p50": quantiles.percentile_weighted(items, 50),
            "p99": quantiles.percentile_weighted(items, 99),
            "max": items[-1][0],
        }


def _weighted_median(points):
    """Median value of ascending weighted ``(value, weight)`` points."""
    return quantiles.percentile_weighted(points, 50)


def merge_digests(digests):
    """Merge per-window digests into ``(items, exact)``.

    ``items`` is the ascending weighted multiset union; ``exact`` is
    True when every contributing digest still held raw samples, in
    which case quantiles of ``items`` equal quantiles of the original
    sample list bit-for-bit.
    """
    items = []
    exact = True
    for digest in digests:
        items.extend(digest.items())
        exact = exact and digest.exact
    items.sort()
    return items, exact


class _Window:
    """One accounting window of the series."""

    __slots__ = ("index", "ops", "measured_ops", "good_ops", "lat_sum_us",
                 "digest", "counters")

    def __init__(self, index, digest_cap):
        self.index = index
        self.ops = 0             # every completion, warmup included
        self.measured_ops = 0    # completions inside the measurement window
        self.good_ops = 0        # measured and not aborted (goodput)
        self.lat_sum_us = 0.0    # over ALL completions (transient visible)
        self.digest = LatencyDigest(cap=digest_cap)   # measured only
        self.counters = None     # lazily created dict

    def bump(self, name, n):
        if self.counters is None:
            self.counters = {}
        self.counters[name] = self.counters.get(name, 0) + n


class SeriesCollector:
    """Event-driven windowed time series on the simulated clock.

    The workload driver reports every operation completion via
    :meth:`record_op`; the net layer and the fault injector bucket
    recovery/injection counters via :meth:`count`. Nothing here ever
    schedules simulator events, so collection is bit-identical to
    no collection.
    """

    def __init__(self, window_us=DEFAULT_WINDOW_US,
                 digest_cap=DEFAULT_DIGEST_CAP):
        if window_us <= 0:
            raise ValueError(f"window_us must be > 0, got {window_us}")
        self.window_us = float(window_us)
        self.digest_cap = digest_cap
        self._windows = {}        # index -> _Window
        self._sim = None
        self.total_ops = 0
        self.total_measured = 0
        #: measurement geometry, set by the harness before the run
        self.warmup_us = 0.0
        self.measure_us = None
        self.end_us = None        # run end, set by finish()

    def bind(self, sim):
        """Attach to the simulator (``sim.set_series`` calls this)."""
        self._sim = sim
        return self

    def configure(self, warmup_us, measure_us):
        """Record the run's measurement geometry (harness contract)."""
        self.warmup_us = float(warmup_us)
        self.measure_us = float(measure_us)
        return self

    # -- hot-path hooks ------------------------------------------------------

    def _window_at(self, t):
        index = int(t // self.window_us)
        window = self._windows.get(index)
        if window is None:
            window = _Window(index, self.digest_cap)
            self._windows[index] = window
        return window

    def record_op(self, t, latency_us, measured, ok=True):
        """One operation completed at simulated time ``t``."""
        window = self._window_at(t)
        window.ops += 1
        window.lat_sum_us += latency_us
        self.total_ops += 1
        if measured:
            window.measured_ops += 1
            self.total_measured += 1
            window.digest.add(latency_us)
            if ok:
                window.good_ops += 1

    def count(self, name, n=1, t=None):
        """Bucket a recovery/injection counter into the current window."""
        if t is None:
            t = self._sim.now if self._sim is not None else 0.0
        self._window_at(t).bump(name, n)

    # -- lifecycle -----------------------------------------------------------

    def finish(self, elapsed=None):
        """Close the series at ``elapsed`` (default: now). Idempotent."""
        if elapsed is None:
            elapsed = self._sim.now if self._sim is not None else 0.0
        if self.end_us is None or elapsed > self.end_us:
            self.end_us = elapsed
        return self

    # -- analysis ------------------------------------------------------------

    def _grid(self):
        """Dense ascending window list covering [0, end]."""
        if not self._windows:
            return []
        last = max(self._windows)
        if self.end_us is not None:
            last = max(last, int(self.end_us // self.window_us))
        return [self._windows.get(i) or _Window(i, self.digest_cap)
                for i in range(0, last + 1)]

    def merged_digest_items(self):
        """Weighted multiset union of every window's measured digest."""
        return merge_digests(w.digest for w in self._windows.values())

    def report(self, utilization=None, faults=None):
        """The full series report: windows, steady state, annotations.

        ``utilization`` (a bound
        :class:`~repro.obs.timeline.UtilizationCollector`, optional)
        contributes per-window busy fractions for the busiest
        resources, resampled from the timeline monitors onto this
        series' grid. ``faults`` (the injector's report dict, optional)
        contributes the named fault windows that the annotator
        cross-references deviations against.
        """
        grid = self._grid()
        window_us = self.window_us
        end_us = self.end_us if self.end_us is not None else (
            len(grid) * window_us)
        measure_end = (self.warmup_us + self.measure_us
                       if self.measure_us is not None else end_us)

        windows = []
        for w in grid:
            start = w.index * window_us
            stop = min((w.index + 1) * window_us, max(end_us, start))
            width = max(stop - start, 1e-12)
            row = {
                "start": start,
                "end": stop,
                "ops": w.ops,
                "measured_ops": w.measured_ops,
                "good_ops": w.good_ops,
                "tput_ops_per_sec": w.ops / width * 1e6,
                "goodput_ops_per_sec": w.good_ops / width * 1e6,
                "lat_mean_us": (w.lat_sum_us / w.ops if w.ops
                                else float("nan")),
                "latency": w.digest.summary(),
            }
            if w.counters:
                row["counters"] = dict(w.counters)
            windows.append(row)

        report = {
            "window_us": window_us,
            "n_windows": len(windows),
            "run_end_us": end_us,
            "warmup_us": self.warmup_us,
            "measure_us": self.measure_us,
            "measure_end_us": measure_end,
            "windows": windows,
        }

        # reconciliation: window sums vs the collector's own totals
        items, exact = self.merged_digest_items()
        merged_count = sum(weight for _, weight in items)
        merged = {
            "count": merged_count,
            "mean_us": (sum(v * wgt for v, wgt in items) / merged_count
                        if merged_count else float("nan")),
            "p50_us": quantiles.percentile_weighted(items, 50),
            "p99_us": quantiles.percentile_weighted(items, 99),
            "max_us": items[-1][0] if items else float("nan"),
        }
        report["reconciliation"] = {
            "measured_ops": self.total_measured,
            "window_measured_sum": sum(w["measured_ops"] for w in windows),
            "digest_exact": exact,
            "merged": merged,
        }

        report["steady_state"] = self._steady_state(windows, measure_end)
        report["annotations"] = self._annotations(
            windows, report["steady_state"], measure_end, faults)
        if utilization is not None:
            report["utilization"] = self._utilization_series(
                utilization, windows)
        return report

    # -- steady-state detection ---------------------------------------------

    def _detection_series(self, windows, measure_end):
        """Per-window mean latency (all ops), transient included.

        Empty windows carry the previous value forward (an idle window
        tells us nothing about the response-time level); leading
        empties before the first completion count as transient.
        """
        values = []
        previous = None
        for w in windows:
            if w["start"] >= measure_end:
                break
            if w["ops"] > 0:
                previous = w["lat_mean_us"]
            values.append(previous)
        # leading Nones: backfill with the first real value so MSER
        # sees a flat prefix rather than a hole
        first = next((v for v in values if v is not None), 0.0)
        return [first if v is None else v for v in values]

    def _steady_state(self, windows, measure_end):
        values = detection_values = self._detection_series(
            windows, measure_end)
        d = detect_steady_state(detection_values)
        transient_end = d * self.window_us
        steady = values[d:]
        steady_mean = (sum(steady) / len(steady)) if steady else float("nan")
        steady_var = (sum((v - steady_mean) ** 2 for v in steady)
                      / len(steady)) if steady else float("nan")
        steady_std = math.sqrt(steady_var) if steady else float("nan")

        # steady-state-only aggregates over *measured* samples, for
        # compare --series: windows fully inside
        # [max(transient, warmup), measure_end]
        steady_from = max(transient_end, self.warmup_us)
        steady_rows = [w for w in windows
                       if w["start"] >= steady_from
                       and w["end"] <= measure_end + 1e-9]
        digests = [self._windows[int(round(w["start"] / self.window_us))]
                   .digest for w in steady_rows
                   if int(round(w["start"] / self.window_us))
                   in self._windows]
        items, _exact = merge_digests(digests)
        steady_count = sum(wgt for _, wgt in items)
        duration = sum(w["end"] - w["start"] for w in steady_rows)
        steady_measured = sum(w["measured_ops"] for w in steady_rows)
        warmup_sufficient = self.warmup_us >= transient_end
        return {
            "detector": "mser",
            "transient_windows": d,
            "transient_end_us": transient_end,
            "configured_warmup_us": self.warmup_us,
            "warmup_sufficient": warmup_sufficient,
            "band": {
                "metric": "lat_mean_us",
                "mean": steady_mean,
                "std": steady_std,
                "lo": steady_mean - DEVIATION_SIGMA * steady_std,
                "hi": steady_mean + DEVIATION_SIGMA * steady_std,
            },
            "steady_from_us": steady_from,
            "steady_windows": len(steady_rows),
            "steady_measured_ops": steady_measured,
            "steady_mean_us": (sum(v * wgt for v, wgt in items)
                               / steady_count if steady_count
                               else float("nan")),
            "steady_p99_us": quantiles.percentile_weighted(items, 99),
            "steady_tput_ops_per_sec": (steady_measured / duration * 1e6
                                        if duration > 0 else float("nan")),
        }

    # -- annotations ---------------------------------------------------------

    def _annotations(self, windows, steady, measure_end, faults):
        annotations = list(_fault_annotations(windows, faults,
                                              self.end_us or measure_end))
        fault_spans = [(a["start_us"], a["end_us"], a["label"])
                       for a in annotations]
        d = steady["transient_windows"]
        mean = steady["band"]["mean"]
        std = steady["band"]["std"]
        if not (isinstance(mean, float) and math.isnan(mean)):
            threshold = max(DEVIATION_SIGMA * std,
                            DEVIATION_REL_FLOOR * abs(mean))
            # throughput band from the same steady windows
            tput = [w["tput_ops_per_sec"] for w in windows[d:]
                    if w["end"] <= measure_end + 1e-9]
            tput_mean = sum(tput) / len(tput) if tput else float("nan")
            tput_std = (math.sqrt(sum((v - tput_mean) ** 2 for v in tput)
                                  / len(tput)) if tput else float("nan"))
            tput_threshold = max(DEVIATION_SIGMA * tput_std,
                                 DEVIATION_REL_FLOOR * abs(tput_mean))
            for w in windows[d:]:
                if w["end"] > measure_end + 1e-9:
                    break
                deviations = []
                if (w["ops"] > 0
                        and abs(w["lat_mean_us"] - mean) > threshold):
                    kind = ("latency-spike" if w["lat_mean_us"] > mean
                            else "latency-dip")
                    deviations.append((kind, "lat_mean_us",
                                       w["lat_mean_us"], mean))
                if (not math.isnan(tput_mean)
                        and abs(w["tput_ops_per_sec"] - tput_mean)
                        > tput_threshold):
                    kind = ("throughput-burst"
                            if w["tput_ops_per_sec"] > tput_mean
                            else "throughput-drop")
                    deviations.append((kind, "tput_ops_per_sec",
                                       w["tput_ops_per_sec"], tput_mean))
                for kind, metric, value, expected in deviations:
                    annotations.append({
                        "kind": kind,
                        "start_us": w["start"],
                        "end_us": w["end"],
                        "metric": metric,
                        "value": value,
                        "expected": expected,
                        "label": f"{kind} at {w['start']:.0f} µs",
                        "cause": _cause_for(w, fault_spans),
                    })
        annotations.sort(key=lambda a: (a["start_us"], a["kind"]))
        return annotations

    # -- utilization resampling ----------------------------------------------

    def _utilization_series(self, collector, windows, top=4):
        """Busy fraction per series window for the busiest resources."""
        start, end = collector.window_bounds()
        ranked = []
        for monitor in collector.monitors:
            if monitor.capacity is None:
                continue
            util = monitor.utilization(start, end)
            if util is not None:
                ranked.append((util, monitor))
        ranked.sort(key=lambda pair: -pair[0])
        rows = []
        for _util, monitor in ranked[:top]:
            busy = []
            for w in windows:
                width = max(w["end"] - w["start"], 1e-12)
                busy.append(monitor.busy_between(w["start"], w["end"])
                            / (width * monitor.capacity))
            rows.append({"name": monitor.name, "kind": monitor.kind,
                         "busy": busy})
        return rows


def _cause_for(window, fault_spans):
    """Name the injected cause of a deviating window, if any."""
    counters = window.get("counters") or {}
    injected = {name: counters[name] for name in
                ("drops", "dups", "delays", "crash_drops")
                if counters.get(name)}
    for start, end, label in fault_spans:
        if window["start"] < end and window["end"] > start:
            return f"fault:{label}"
    if injected:
        detail = ", ".join(f"{name} x{count}"
                           for name, count in sorted(injected.items()))
        return f"fault:injected {detail}"
    if counters.get("timeouts") or counters.get("retransmissions"):
        return (f"retry burst (timeouts x{counters.get('timeouts', 0)}, "
                f"retransmissions x{counters.get('retransmissions', 0)})")
    return None


def _fault_annotations(windows, faults, run_end):
    """Named annotations for the fault plan's injected windows."""
    if not faults:
        return
    plan = faults.get("plan") or {}
    for crash in plan.get("crashes", ()):
        start = crash.get("at_us", 0.0)
        end = crash.get("recover_at_us")
        yield {
            "kind": "fault.crash",
            "start_us": start,
            "end_us": run_end if end is None else end,
            "label": (f"crash {crash.get('host')} "
                      f"{start:.0f}..{'end' if end is None else f'{end:.0f}'}"
                      " µs"),
            "cause": None,
        }
    if plan.get("starve"):
        start = plan.get("starve_at_us", 0.0)
        hold = plan.get("starve_hold_us", 0.0)
        yield {
            "kind": "fault.starve",
            "start_us": start,
            "end_us": (start + hold) if hold else run_end,
            "label": f"free-list starvation from {start:.0f} µs",
            "cause": None,
        }
    dropped = [w for w in windows
               if (w.get("counters") or {}).get("drops")]
    if dropped:
        total = sum(w["counters"]["drops"] for w in dropped)
        yield {
            "kind": "fault.drop",
            "start_us": dropped[0]["start"],
            "end_us": dropped[-1]["end"],
            "label": (f"message drops injected in {len(dropped)} "
                      f"window(s) (x{total})"),
            "cause": None,
        }


def detect_steady_state(values, max_truncation=0.5):
    """MSER truncation point of a per-window series.

    Returns the number of leading windows to discard as transient: the
    ``d`` minimizing the marginal standard error
    ``var(values[d:]) / (n - d)`` over ``d in [0, n * max_truncation]``
    (White's MSER rule). A flat series yields 0; a series shorter than
    4 windows is too short to judge and also yields 0. Ties break
    toward the earliest cut, so the detector never discards data
    without evidence.
    """
    n = len(values)
    if n < 4:
        return 0
    best_d = 0
    best = None
    for d in range(0, int(n * max_truncation) + 1):
        tail = values[d:]
        m = len(tail)
        if m < 2:
            break
        mean = sum(tail) / m
        var = sum((v - mean) ** 2 for v in tail) / m
        stat = var / m
        if best is None or stat < best - 1e-15:
            best = stat
            best_d = d
    return best_d
