"""Per-request forensics: turn a flight log into causal narratives.

Input is a :class:`~repro.obs.flight.FlightRecorder` (or a dump loaded
with :func:`repro.obs.flight.load_dump`); output is, per client
operation, a **timeline** — every flight event that happened on its
causal path, tiled into labeled segments that sum to the measured
latency (the same reconciliation contract as
:mod:`repro.obs.critpath`) — and a **diagnosis**: the concrete causes
(injected fault events, ack timeouts and retry storms, CAS contention
on hot addresses, crash windows) behind any operation that aborted,
timed out, or landed in the latency tail.

The usual entry points::

    lines = explain_lines(recorder.to_dict(), top=5)   # CLI 'explain'
    tls, global_events = timelines(dump["events"])
    diag = diagnose(tls[op_id], crash_windows(global_events))

Segment labels:

======== ==========================================================
client   client-side CPU between events (post, completion, compute)
inflight waiting on the wire/server for a posted request
server   server-side interval ending in a CAS miss / NAK / abort
timeout  an ack-timeout window that expired with no reply
backoff  retransmission backoff sleep
======== ==========================================================
"""

import math

from repro.obs.quantiles import percentile

#: events whose arrival closes an "inflight" gap (the op was waiting)
_INFLIGHT_ENDERS = frozenset((
    "req.reply", "req.stale", "fault.drop", "fault.dup", "fault.delay",
    "fault.crash_drop",
))
_SERVER_ENDERS = frozenset(("cas.miss", "op.nak", "chain.abort"))


def timelines(events):
    """Group flight events into per-operation timelines.

    Returns ``(by_op, global_events)``: a dict mapping operation id to
    a timeline dict, and the list of events recorded outside any
    operation (crash schedules, daemons). Timelines whose ``op.open``
    was evicted from the ring are marked ``truncated``; operations the
    run ended before closing are marked ``unfinished``.
    """
    grouped = {}
    global_events = []
    for event in events:
        op = event.get("op")
        if op is None:
            global_events.append(event)
        else:
            grouped.setdefault(op, []).append(event)
    by_op = {}
    for op, evs in grouped.items():
        evs.sort(key=lambda e: (e["t"], e["seq"]))
        open_ev = next((e for e in evs if e["kind"] == "op.open"), None)
        close_ev = next((e for e in reversed(evs)
                         if e["kind"] == "op.close"), None)
        start = open_ev["t"] if open_ev is not None else evs[0]["t"]
        end = close_ev["t"] if close_ev is not None else evs[-1]["t"]
        by_op[op] = {
            "op": op,
            "kind": open_ev.get("name") if open_ev is not None else None,
            "client": open_ev.get("client") if open_ev else None,
            "start": start,
            "end": end,
            "status": (close_ev.get("status") if close_ev is not None
                       else "unfinished"),
            "latency_us": (close_ev.get("latency_us") if close_ev is not None
                           else None),
            "aborts": close_ev.get("aborts", 0) if close_ev else 0,
            "retries": close_ev.get("retries", 0) if close_ev else 0,
            "measured": bool(close_ev.get("measured")) if close_ev else False,
            "truncated": open_ev is None,
            "unfinished": close_ev is None,
            "events": evs,
        }
    return by_op, global_events


def crash_windows(global_events):
    """Pair crash/recover events into ``(host, down_at, up_at)`` windows.

    A crash with no matching recovery yields ``up_at = inf``.
    """
    windows = []
    open_crashes = {}
    for event in global_events:
        if event["kind"] == "fault.crash":
            open_crashes[event.get("host")] = event["t"]
        elif event["kind"] == "fault.recover":
            host = event.get("host")
            down_at = open_crashes.pop(host, None)
            if down_at is not None:
                windows.append((host, down_at, event["t"]))
    for host, down_at in open_crashes.items():
        windows.append((host, down_at, math.inf))
    return sorted(windows, key=lambda w: (w[1], str(w[0])))


def _gap_label(prev_kind, end_kind):
    """Label for the interval that ``end_kind`` terminates."""
    if prev_kind == "req.backoff":
        return "backoff"
    if end_kind == "req.timeout":
        return "timeout"
    if end_kind in _INFLIGHT_ENDERS:
        return "inflight"
    if end_kind in _SERVER_ENDERS:
        return "server"
    return "client"


def segments(timeline):
    """Tile ``[start, end]`` into labeled intervals between events.

    By construction the segments cover the operation exactly, so their
    durations sum to the measured latency (to float rounding) — the
    same "sums equal measured" contract the critical-path profile
    keeps. Zero-length gaps are skipped.
    """
    start, end = timeline["start"], timeline["end"]
    segs = []
    cursor = start
    prev_kind = None
    for event in timeline["events"]:
        t = min(max(event["t"], start), end)
        if t > cursor:
            segs.append({"from": cursor, "to": t, "us": t - cursor,
                         "label": _gap_label(prev_kind, event["kind"]),
                         "until": event["kind"]})
            cursor = t
        prev_kind = event["kind"]
    if end > cursor:
        segs.append({"from": cursor, "to": end, "us": end - cursor,
                     "label": "client", "until": "op.close"})
    return segs


def segment_totals(timeline):
    """``{label: µs}`` rollup of :func:`segments`."""
    totals = {}
    for seg in segments(timeline):
        totals[seg["label"]] = totals.get(seg["label"], 0.0) + seg["us"]
    return totals


def reconcile(timeline, tolerance=1e-6):
    """Check segment sums against the measured latency; returns the sum.

    Raises :class:`AssertionError` on divergence — mirrors
    :func:`repro.bench.tracing.check_critpath`. Truncated timelines
    (their ``op.open`` — and with it the true start — was evicted) and
    operations without a recorded latency reconcile against
    ``end - start``, the only span the surviving events witness.
    """
    total = sum(seg["us"] for seg in segments(timeline))
    latency = timeline["latency_us"]
    if latency is None or timeline["truncated"]:
        latency = timeline["end"] - timeline["start"]
    if abs(total - latency) > tolerance * max(latency, 1.0):
        raise AssertionError(
            f"op #{timeline['op']}: segment sum {total:.6f} µs diverges "
            f"from measured latency {latency:.6f} µs")
    return total


def is_anomalous(timeline):
    """Aborted, timed out, exhausted, or never finished."""
    if timeline["status"] != "ok" or timeline["unfinished"]:
        return True
    kinds = {event["kind"] for event in timeline["events"]}
    return bool(kinds & {"req.timeout", "req.exhausted"})


def _overlapping_windows(timeline, windows):
    start, end = timeline["start"], timeline["end"]
    return [(host, down, up) for host, down, up in windows
            if down <= end and up >= start]


def diagnose(timeline, windows=(), storm_threshold=3):
    """Name the concrete causes behind one operation's fate.

    Returns a dict with the timeline's identity fields, its segment
    rollup, and ``causes``: a list of human-readable strings, each
    naming an injected fault event, a timeout/retry storm, CAS
    contention on a hot address, or a crash window the operation
    crossed. Healthy fast operations get an empty list.
    """
    events = timeline["events"]
    causes = []

    drops = [e for e in events if e["kind"] == "fault.drop"]
    if drops:
        msgs = ", ".join(f"#{e.get('msg')}" for e in drops[:4])
        causes.append(f"{len(drops)} injected message drop(s) "
                      f"(message {msgs})")
    crash_drops = [e for e in events if e["kind"] == "fault.crash_drop"]
    if crash_drops:
        hosts = sorted({str(e.get("host")) for e in crash_drops})
        causes.append(f"{len(crash_drops)} message(s) killed at crashed "
                      f"host {', '.join(hosts)}")
    dups = [e for e in events if e["kind"] == "fault.dup"]
    if dups:
        causes.append(f"{len(dups)} injected duplicate(s)")
    delays = [e for e in events if e["kind"] == "fault.delay"]
    if delays:
        total = sum(e.get("delay_us", 0.0) for e in delays)
        causes.append(f"{len(delays)} jitter delay(s) "
                      f"(+{total:.2f} µs injected)")

    timeouts = [e for e in events if e["kind"] == "req.timeout"]
    if timeouts:
        waited = sum(e.get("timeout_us", 0.0) for e in timeouts)
        causes.append(f"{len(timeouts)} ack timeout(s) "
                      f"({waited:.0f} µs spent waiting on lost attempts)")
    backoffs = [e for e in events if e["kind"] == "req.backoff"]
    if backoffs:
        total = sum(e.get("backoff_us", 0.0) for e in backoffs)
        causes.append(f"retransmitted {len(backoffs)} time(s), "
                      f"{total:.2f} µs in backoff")
    exhausted = [e for e in events if e["kind"] == "req.exhausted"]
    if exhausted:
        attempts = max(e.get("attempts", 0) for e in exhausted)
        causes.append(f"retries exhausted after {attempts} attempts "
                      "(request gave up)")

    misses = {}
    for event in events:
        if event["kind"] == "cas.miss":
            target = event.get("target")
            misses[target] = misses.get(target, 0) + 1
    for target, n in sorted(misses.items(), key=lambda kv: -kv[1]):
        where = f"{target:#x}" if isinstance(target, int) else str(target)
        if n >= storm_threshold:
            causes.append(f"retry storm: {n} CAS misses on hot "
                          f"address {where}")
        else:
            causes.append(f"{n} CAS miss(es) on {where} (contention)")

    naks = {}
    for event in events:
        if event["kind"] == "op.nak":
            key = (event.get("opname"), event.get("error"))
            naks[key] = naks.get(key, 0) + 1
    for (opname, error), n in sorted(naks.items(), key=lambda kv: -kv[1]):
        causes.append(f"{opname} NAK ({error}) x{n}")

    chain_aborts = [e for e in events if e["kind"] == "chain.abort"]
    if chain_aborts:
        reasons = sorted({str(e.get("reason")) for e in chain_aborts})
        causes.append(f"{len(chain_aborts)} chain abort(s) "
                      f"({', '.join(reasons)})")

    for host, down, up in _overlapping_windows(timeline, windows):
        up_text = f"{up:.0f}" if up != math.inf else "end of run"
        causes.append(f"overlapped crash window of {host} "
                      f"[{down:.0f}..{up_text} µs]")

    if timeline["unfinished"]:
        causes.append("operation never completed (run ended or client "
                      "stuck mid-request)")
    if timeline["truncated"]:
        causes.append("timeline truncated: op.open evicted from the "
                      "flight ring (raise --flight=N)")

    return {
        "op": timeline["op"],
        "kind": timeline["kind"],
        "client": timeline["client"],
        "status": timeline["status"],
        "latency_us": timeline["latency_us"],
        "anomalous": is_anomalous(timeline),
        "segments": segment_totals(timeline),
        "causes": causes,
    }


def straggler_threshold(by_op, pct=99.0):
    """The latency percentile over measured, finished operations."""
    latencies = [tl["latency_us"] for tl in by_op.values()
                 if tl["latency_us"] is not None and tl["measured"]]
    if not latencies:
        return None
    return percentile(latencies, pct)


def worst_requests(by_op, top=5, pct=99.0):
    """Pick the operations worth narrating.

    Every anomalous operation (aborted / timed out / unfinished) is
    included; the list is then padded with latency stragglers (at or
    above the ``pct`` percentile, slowest first) up to at least
    ``top`` entries. Sorted: anomalies first, then by latency
    descending.
    """
    def latency_of(tl):
        if tl["latency_us"] is not None:
            return tl["latency_us"]
        return tl["end"] - tl["start"]

    anomalies = [tl for tl in by_op.values() if is_anomalous(tl)]
    anomalies.sort(key=latency_of, reverse=True)
    picked = list(anomalies)
    seen = {tl["op"] for tl in picked}
    threshold = straggler_threshold(by_op, pct)
    if threshold is not None:
        stragglers = [tl for tl in by_op.values()
                      if tl["op"] not in seen and tl["measured"]
                      and tl["latency_us"] is not None
                      and tl["latency_us"] >= threshold]
        stragglers.sort(key=latency_of, reverse=True)
        for tl in stragglers:
            if len(picked) >= max(top, len(anomalies)):
                break
            picked.append(tl)
            seen.add(tl["op"])
    return picked


def _fmt_event(event, t0):
    """One timeline line: offset, kind, and the interesting fields."""
    skip = {"seq", "t", "op", "kind"}

    def fmt(key, value):
        if key == "target" and isinstance(value, int):
            return f"{key}={value:#x}"
        if isinstance(value, float):
            return f"{key}={value:.2f}"
        return f"{key}={value}"

    fields = " ".join(fmt(key, value) for key, value in event.items()
                      if key not in skip)
    return f"+{event['t'] - t0:9.2f}  {event['kind']:<16} {fields}".rstrip()


def narrate(timeline, windows=(), max_events=24):
    """Human-readable lines telling one operation's story."""
    diag = diagnose(timeline, windows)
    latency = timeline["latency_us"]
    if latency is None:
        latency = timeline["end"] - timeline["start"]
    header = (f"op #{timeline['op']} {timeline['kind'] or '?'} "
              f"(client {timeline['client']}): {latency:.2f} µs, "
              f"status={timeline['status']}")
    extras = []
    if timeline["retries"]:
        extras.append(f"{timeline['retries']} retries")
    if timeline["aborts"]:
        extras.append(f"{timeline['aborts']} aborts")
    if extras:
        header += " (" + ", ".join(extras) + ")"
    lines = [header]
    if diag["causes"]:
        lines.append("  causes:")
        lines.extend(f"    - {cause}" for cause in diag["causes"])
    else:
        lines.append("  causes: none recorded (healthy request)")
    totals = diag["segments"]
    if totals:
        parts = ", ".join(f"{label} {us:.2f}" for label, us
                          in sorted(totals.items(), key=lambda kv: -kv[1]))
        total = sum(totals.values())
        lines.append(f"  segments: {parts} "
                     f"(sum {total:.2f} µs = measured {latency:.2f} µs)")
    lines.append("  timeline:")
    events = timeline["events"]
    shown = events[:max_events]
    t0 = timeline["start"]
    lines.extend(f"    {_fmt_event(event, t0)}" for event in shown)
    if len(events) > max_events:
        lines.append(f"    ... {len(events) - max_events} more events")
    return lines


def explain_lines(dump, top=5, pct=99.0):
    """The ``explain`` report: summary + the K worst requests' stories.

    ``dump`` is a flight-dump dict (:meth:`FlightRecorder.to_dict` /
    :func:`repro.obs.flight.load_dump` output) or a live
    :class:`~repro.obs.flight.FlightRecorder`. Every anomalous request
    is narrated (the acceptance bar: each names at least one concrete
    cause), plus latency stragglers up to at least ``top`` stories.
    """
    if hasattr(dump, "to_dict"):
        dump = dump.to_dict()
    by_op, global_events = timelines(dump.get("events", []))
    windows = crash_windows(global_events)
    lines = []
    evicted = dump.get("evicted", 0)
    lines.append(
        f"flight: {dump.get('recorded', len(dump.get('events', [])))} "
        f"events recorded ({evicted} evicted), "
        f"{dump.get('ops_opened', 0)} ops opened / "
        f"{dump.get('ops_closed', 0)} closed")
    anomalies = [tl for tl in by_op.values() if is_anomalous(tl)]
    threshold = straggler_threshold(by_op, pct)
    if threshold is not None:
        lines.append(f"p{pct:g} latency of flighted ops: {threshold:.2f} µs")
    if windows:
        for host, down, up in windows:
            up_text = f"{up:.0f} µs" if up != math.inf else "end of run"
            lines.append(f"crash window: {host} down {down:.0f} µs -> "
                         f"{up_text}")
    lines.append(f"anomalous requests (aborted/timed-out/unfinished): "
                 f"{len(anomalies)}")
    picked = worst_requests(by_op, top=top, pct=pct)
    if not picked:
        lines.append("nothing to explain: no anomalies, no stragglers.")
        return lines
    for timeline in picked:
        lines.append("")
        lines.extend(narrate(timeline, windows))
    return lines
