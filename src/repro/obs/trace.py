"""Span tracing on the simulated clock.

A :class:`Span` is one timed interval of an operation's life — a wire
serialization, a PCIe access, a core occupancy — stamped with
``sim.now`` at open and close and labeled with a *phase* (see
:data:`repro.obs.breakdown.PHASES`). Spans form a tree: every
instrumentation point receives its parent span and opens children
around the work it times, so one PRISM request traces as

    get
    └── roundtrip
        ├── client.post            (cpu)
        ├── client0.tx.queue       (queue)
        ├── client0.tx.xmit        (wire)
        ├── net.propagate          (wire)
        ├── server.rx.xmit         (wire)
        ├── server.process         (queue)
        │   ├── admission          (cpu/queue)
        │   └── op.read            (nic, parts={nic, pcie})
        ├── server.tx.xmit         (wire)   # reply
        ├── net.propagate          (wire)
        ├── client0.rx.xmit        (wire)
        └── client.completion      (cpu)

Parents are passed *explicitly* (there is no ambient "current span"):
simulation processes interleave on one thread, so any global stack
would attach one client's children to another client's operation.

The no-op path: :data:`NULL_SPAN` is a singleton whose ``child()``
returns itself and whose context-manager hooks do nothing. Untraced
code threads it through the same call sites at the cost of a method
call per instrumentation point — no allocation, no clock reads.
"""


class Span:
    """One timed, labeled interval; node of a per-operation tree."""

    __slots__ = ("tracer", "name", "phase", "parent", "start", "end",
                 "attrs", "children", "parts")

    #: real spans record; the NULL_SPAN overrides this with False
    enabled = True

    def __init__(self, tracer, name, phase, parent, start, attrs):
        self.tracer = tracer
        self.name = name
        self.phase = phase
        self.parent = parent
        self.start = start
        self.end = None
        self.attrs = attrs
        self.children = []
        #: optional {phase: µs} refinement of this span's own duration,
        #: for work the simulator charges as one lump (e.g. a NIC op
        #: whose op_time mixes verb processing and PCIe round trips).
        self.parts = None

    # -- construction ------------------------------------------------------

    def child(self, name, phase="other", **attrs):
        """Open a child span starting now."""
        # Clock read inlined (tracer.now -> sim.now are two property
        # hops); child() runs several times per simulated operation.
        # Falls back to the ``now`` property for duck-typed clocks.
        tracer = self.tracer
        try:
            now = tracer._sim._now
        except AttributeError:
            now = tracer._sim.now
        span = Span(tracer, name, phase, self, now, attrs)
        self.children.append(span)
        return span

    # -- lifecycle ---------------------------------------------------------

    def finish(self):
        """Close the span at the current simulated time (idempotent)."""
        if self.end is None:
            sim = self.tracer._sim
            try:
                self.end = sim._now
            except AttributeError:
                self.end = sim.now

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.finish()
        return False

    # -- annotation --------------------------------------------------------

    def annotate(self, **attrs):
        self.attrs.update(attrs)
        return self

    def set_parts(self, parts):
        """Attach a {phase: µs} split of this span's own duration."""
        self.parts = parts
        return self

    # -- inspection --------------------------------------------------------

    @property
    def duration(self):
        """Length in µs; an open span measures up to the current time."""
        end = self.end if self.end is not None else self.tracer.now
        return end - self.start

    def walk(self):
        """Yield this span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        state = f"{self.duration:.3f}us" if self.end is not None else "open"
        return f"<Span {self.name} [{self.phase}] {state}>"


class _NullSpan:
    """The do-nothing span: every operation returns self or a constant."""

    __slots__ = ()

    enabled = False
    name = "null"
    phase = "other"
    parent = None
    start = 0.0
    end = 0.0
    duration = 0.0
    parts = None
    children = ()
    attrs = {}

    def child(self, name, phase="other", **attrs):
        return self

    def finish(self):
        pass

    def annotate(self, **attrs):
        return self

    def set_parts(self, parts):
        return self

    def walk(self):
        return iter(())

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "<NullSpan>"


#: shared no-op span: the default value of every ``span=`` parameter
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees for one simulation run.

    Bind it to a simulator (``Tracer(sim)`` or :meth:`bind`) so spans
    read the simulated clock; then create per-operation roots with
    :meth:`root` and thread them through the instrumented call sites.

    ``trace_processes=True`` additionally records every kernel process
    lifetime (spawn → completion) as a flat span list — the
    ``sim/kernel`` timing hook — exported on its own track.
    """

    enabled = True

    def __init__(self, sim=None, trace_processes=False):
        self._sim = sim
        self.trace_processes = trace_processes
        #: finished (or still-open) root spans, in creation order
        self.roots = []
        #: process-lifetime spans when ``trace_processes`` is on
        self.process_spans = []
        self._live_processes = {}

    def bind(self, sim):
        """Attach to the simulator whose clock stamps the spans."""
        self._sim = sim
        return self

    @property
    def now(self):
        return self._sim.now

    def root(self, name, phase="other", **attrs):
        """Open a new top-level span (one per traced operation)."""
        try:
            now = self._sim._now
        except AttributeError:
            now = self._sim.now
        span = Span(self, name, phase, None, now, attrs)
        self.roots.append(span)
        return span

    # -- kernel hooks ------------------------------------------------------

    def process_started(self, process):
        if self.trace_processes:
            span = Span(self, process.name, "process", None, self.now, {})
            self._live_processes[id(process)] = span
            self.process_spans.append(span)

    def process_finished(self, process):
        if self.trace_processes:
            span = self._live_processes.pop(id(process), None)
            if span is not None:
                span.finish()


class NullTracer:
    """Default tracer: records nothing, creates only the NULL_SPAN."""

    enabled = False
    trace_processes = False
    roots = ()
    process_spans = ()

    def bind(self, sim):
        return self

    def root(self, name, phase="other", **attrs):
        return NULL_SPAN

    def process_started(self, process):
        pass

    def process_finished(self, process):
        pass


#: shared no-op tracer: the default value of ``Simulator.tracer``
NULL_TRACER = NullTracer()
