"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Each traced operation becomes one *thread track* (``tid``) holding its
whole span tree as nested complete ("X") events; process-lifetime
spans (``Tracer(trace_processes=True)``) land on a separate track.
Timestamps are the simulator's microseconds, which is exactly the unit
the trace-event format expects — load the file in https://ui.perfetto.dev
and the clock reads in simulated µs.
"""

import json

#: pid for operation tracks / kernel-process tracks
OPS_PID = 1
PROCESS_PID = 2


def _event(span, pid, tid):
    event = {
        "name": span.name,
        "cat": span.phase,
        "ph": "X",
        "ts": span.start,
        "dur": span.duration,
        "pid": pid,
        "tid": tid,
    }
    args = {}
    if span.attrs:
        args.update({k: _jsonable(v) for k, v in span.attrs.items()})
    if span.parts:
        args["parts_us"] = {k: round(v, 4) for k, v in span.parts.items()}
    if args:
        event["args"] = args
    return event


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def to_chrome_events(roots, process_spans=()):
    """Flatten span trees into a ts-sorted trace-event list."""
    events = []
    for tid, root in enumerate(roots, start=1):
        if root.end is None:
            continue
        events.append({
            "name": "thread_name", "ph": "M", "pid": OPS_PID, "tid": tid,
            "args": {"name": f"op {tid}: {root.name}"},
        })
        for span in root.walk():
            if span.end is None:
                continue
            events.append(_event(span, OPS_PID, tid))
    for span in process_spans:
        if span.end is None:
            continue
        events.append(_event(span, PROCESS_PID, 1))
    metadata = [e for e in events if e["ph"] == "M"]
    timed = sorted((e for e in events if e["ph"] != "M"),
                   key=lambda e: (e["ts"], -e["dur"]))
    return metadata + timed


def write_chrome_trace(roots, path, process_spans=()):
    """Write a ``{"traceEvents": [...]}`` JSON file; returns the path."""
    payload = {
        "traceEvents": to_chrome_events(roots, process_spans),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated microseconds"},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return path
