"""Ablation: redirect scratch in on-NIC SRAM vs host memory (§4.2).

"Applications using output redirection should redirect to this on-NIC
memory when possible" — because a host-memory temporary costs the
hardware NIC extra PCIe round trips on every chained access. We measure
the PRISM-KV install chain on the projected hardware NIC with its
temporary in (a) the connection's SRAM slot and (b) a host-memory
scratch buffer.

(The software backend is indifferent — both are one load/store away —
which we also verify; the SRAM advantage is a *hardware* argument.)
"""

from repro.bench.reporting import print_table
from repro.core.ops import AllocateOp, CasMode, CasOp, WriteOp
from repro.hw.layout import pack_uint
from repro.net.topology import RACK, make_fabric
from repro.prism import (
    HardwarePrismBackend,
    PrismClient,
    PrismServer,
    SoftwarePrismBackend,
)
from repro.sim import Simulator

REPEATS = 20
VALUE = b"r" * 512


def _measure(backend_cls, scratch_in_sram):
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["client", "server"])
    server = PrismServer(sim, fabric, "server", backend_cls)
    slot, rkey = server.add_region(4096)
    host_scratch, _scratch_rkey = server.add_region(64)
    freelist, buf_rkey = server.create_freelist(len(VALUE) + 16, 1024)
    client = PrismClient(sim, fabric, "client", server)
    samples = []

    def run():
        tmp = client.sram_slot if scratch_in_sram else host_scratch
        tmp_rkey = server.sram_rkey if scratch_in_sram else _scratch_rkey
        for version in range(1, REPEATS + 1):
            start = sim.now
            result = yield from client.execute(
                WriteOp(addr=tmp, data=pack_uint(version, 8), rkey=tmp_rkey),
                AllocateOp(freelist=freelist,
                           data=pack_uint(version, 8) + VALUE,
                           rkey=buf_rkey, redirect_to=tmp + 8,
                           conditional=True),
                CasOp(target=slot, data=pack_uint(tmp, 8), rkey=rkey,
                      mode=CasMode.GT, compare_mask=(1 << 64) - 1,
                      data_indirect=True, operand_width=16,
                      conditional=True),
            )
            result.raise_on_nak()
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e6)
    return sum(samples) / len(samples)


def test_ablation_redirect_target(benchmark):
    results = benchmark.pedantic(
        lambda: {
            ("hw", True): _measure(HardwarePrismBackend, True),
            ("hw", False): _measure(HardwarePrismBackend, False),
            ("sw", True): _measure(SoftwarePrismBackend, True),
            ("sw", False): _measure(SoftwarePrismBackend, False),
        }, rounds=1, iterations=1)
    print_table(
        "Ablation: chain scratch placement (install chain latency, µs)",
        ["backend", "sram_scratch", "host_scratch", "penalty_us"],
        [["prism-hw", results[("hw", True)], results[("hw", False)],
          results[("hw", False)] - results[("hw", True)]],
         ["prism-sw", results[("sw", True)], results[("sw", False)],
          results[("sw", False)] - results[("sw", True)]]])
    # On the hardware NIC, host-memory scratch pays several extra PCIe
    # round trips (write, read-back for the CAS operand, ...).
    hw_penalty = results[("hw", False)] - results[("hw", True)]
    assert hw_penalty > 1.0
    # The software stack barely cares where the scratch lives.
    sw_penalty = abs(results[("sw", False)] - results[("sw", True)])
    assert sw_penalty < 0.5


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ablation_redirect_target(NullBenchmark()),
                             "ablation: redirect target placement", prefix="ablation-redirect-sram"))
