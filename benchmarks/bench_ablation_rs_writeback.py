"""Ablation: PRISM-RS GET write-back phase.

ABD's read protocol performs a second (write-back) phase so a read's
observed value reaches a majority before the read returns (§7.1). An
often-cited optimization skips the write-back when all f+1 read-phase
replies carry the *same* tag — safe, because the value is already at a
majority. The paper implements the unconditional protocol; this
ablation quantifies what the optimization would save on a read-mostly
workload (and is exactly the kind of design-space point the PRISM
primitives make cheap to explore).
"""

from repro.bench.reporting import print_table
from repro.apps.blockstore import PrismRsClient, PrismRsReplica
from repro.net.topology import RACK, make_fabric
from repro.prism import SoftwarePrismBackend
from repro.sim import Simulator

N_BLOCKS = 256
REPEATS = 30


class OptimizedRsClient(PrismRsClient):
    """PRISM-RS with the unanimous-tag read optimization."""

    def get(self, block_id):
        read_len = 8 + self.layout.block_size
        from repro.apps.blockstore.quorum import quorum
        from repro.apps.blockstore.layout import RsLayout
        generators = [
            client.read(self.layout.addr_field(block_id), read_len,
                        rkey=replica.meta_rkey, indirect=True)
            for client, replica in zip(self.clients, self.replicas)
        ]
        replies = yield from quorum(self.sim, generators, self.f + 1,
                                    name=f"rs-read[{block_id}]")
        parsed = [RsLayout.unpack_buffer(data) for _i, data in replies]
        tags = {tag for tag, _value in parsed}
        best_tag, best_value = max(parsed, key=lambda pair: pair[0])
        if len(tags) > 1:
            # Disagreement: fall back to the full write-back phase.
            yield from self._write_phase(block_id, best_tag, best_value)
        self.gets += 1
        return best_value


def _measure(client_cls):
    sim = Simulator()
    fabric = make_fabric(sim, RACK,
                         [f"r{i}" for i in range(3)] + ["c0"])
    replicas = [PrismRsReplica(sim, fabric, f"r{i}", SoftwarePrismBackend,
                               n_blocks=N_BLOCKS, block_size=512)
                for i in range(3)]
    for block in range(N_BLOCKS):
        value = bytes([block % 256]) * 512
        for rep in replicas:
            rep.load(block, value)
    client = client_cls(sim, fabric, "c0", replicas, client_id=1)
    samples = []

    def run():
        for i in range(REPEATS):
            start = sim.now
            yield from client.get(i % N_BLOCKS)
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e7)
    return sum(samples) / len(samples)


def test_ablation_rs_read_writeback(benchmark):
    baseline, optimized = benchmark.pedantic(
        lambda: (_measure(PrismRsClient), _measure(OptimizedRsClient)),
        rounds=1, iterations=1)
    print_table(
        "Ablation: PRISM-RS GET write-back (quiescent reads, µs)",
        ["variant", "mean_us"],
        [["unconditional write-back (paper)", baseline],
         ["skip when tags unanimous", optimized]])
    # Skipping the write phase saves a full quorum round trip (~half
    # the read latency) when replicas agree.
    assert optimized < baseline
    assert baseline / optimized > 1.6


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ablation_rs_read_writeback(NullBenchmark()),
                             "ablation: RS read writeback", prefix="ablation-rs-writeback"))
