"""Figure 1: primitive microbenchmarks on a direct link (512 B).

Paper: baseline hardware RDMA ops ≈ 2.5 µs; the PRISM software
prototype adds 2.5-2.8 µs; the projected hardware PRISM NIC adds only
PCIe round trips; the BlueField smart NIC is the slowest option.
"""

from repro.bench.microbench import (
    BACKENDS,
    CLASSIC_PRIMITIVES,
    PRIMITIVES,
    measure_primitive,
)
from repro.bench.reporting import print_table
from repro.net.topology import DIRECT

ORDER = ["read", "write", "indirect-read", "allocate", "enhanced-cas"]
COLUMNS = ["rdma", "prism-sw", "prism-bluefield", "prism-hw"]


def _run():
    table = {}
    for primitive in ORDER:
        for backend in COLUMNS:
            if backend == "rdma" and primitive not in CLASSIC_PRIMITIVES:
                table[(primitive, backend)] = None
                continue
            table[(primitive, backend)] = measure_primitive(
                backend, primitive, profile=DIRECT)
    return table


def test_fig1_primitive_latencies(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for primitive in ORDER:
        rows.append([primitive] + [
            table[(primitive, backend)] if table[(primitive, backend)]
            is not None else "-"
            for backend in COLUMNS])
    print_table("Fig. 1: primitive latency, direct link (µs)",
                ["primitive"] + COLUMNS, rows)

    read_rdma = table[("read", "rdma")]
    # Baseline RDMA ops land at the paper's ~2.5 µs.
    assert 2.1 <= read_rdma <= 2.9
    assert 2.1 <= table[("write", "rdma")] <= 2.9
    # The software prototype adds ~2.5-2.8 µs over hardware RDMA.
    delta = table[("read", "prism-sw")] - read_rdma
    assert 1.8 <= delta <= 3.5, delta
    for primitive in ORDER:
        sw = table[(primitive, "prism-sw")]
        bf = table[(primitive, "prism-bluefield")]
        hw = table[(primitive, "prism-hw")]
        # BlueField is the slowest deployment option for every primitive.
        assert bf > sw, primitive
        # The projected ASIC beats the software stack everywhere.
        assert hw < sw, primitive
    # Projected-hardware plain ops match today's RDMA NIC.
    assert abs(table[("read", "prism-hw")] - read_rdma) < 0.3
    # Indirection costs the hardware NIC one extra PCIe round trip.
    extra = table[("indirect-read", "prism-hw")] - table[("read", "prism-hw")]
    assert 0.4 <= extra <= 1.6, extra


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_fig1_primitive_latencies(NullBenchmark()),
                             "fig1: primitive latency microbench", prefix="fig1"))
