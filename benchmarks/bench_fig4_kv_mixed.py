"""Figure 4: PRISM-KV vs Pilaf, YCSB-A (50% reads / 50% writes).

Paper: Pilaf serves a PUT with one RPC (~6 µs) while PRISM-KV uses two
round trips (probe + chained install, ~12 µs) — so Pilaf has the lower
mixed-workload latency — but PRISM-KV matches Pilaf's peak throughput
while using no server CPU on the data path.
"""

from repro.bench.harness import sweep_clients
from repro.bench.reporting import (
    CURVE_HEADERS,
    curve_rows,
    low_load_latency,
    maybe_export,
    peak_throughput,
    print_table,
)
from repro.workload import YCSB_A

N_KEYS = 8_000
CLIENTS = [1, 8, 32, 96, 176]
SYSTEMS = ["prism-sw", "pilaf-hw", "pilaf-sw"]


def _workload(index):
    return YCSB_A(N_KEYS, seed=13, client_id=index)


def _run():
    return {flavor: sweep_clients("kv", flavor, _workload, CLIENTS,
                                  n_keys=N_KEYS)
            for flavor in SYSTEMS}


def test_fig4_kv_mixed(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    maybe_export("fig4", curves)
    for flavor in SYSTEMS:
        print_table(f"Fig. 4: {flavor}, YCSB-A uniform",
                    CURVE_HEADERS, curve_rows(curves[flavor]))
    prism = curves["prism-sw"]
    pilaf_hw = curves["pilaf-hw"]

    lat_prism = low_load_latency(prism)
    lat_hw = low_load_latency(pilaf_hw)
    print_table("Fig. 4 summary: low-load 50/50 mean latency (µs)",
                ["system", "paper_us", "measured_us"],
                [["PRISM-KV (sw)", 9.0, lat_prism],
                 ["Pilaf (hw RDMA)", 7.25, lat_hw]])
    # Pilaf's RPC PUT path gives it the lower mixed latency...
    assert lat_hw < lat_prism
    # ...with the paper's per-op costs: PRISM PUT ~2x Pilaf PUT.
    assert 7.5 <= lat_prism <= 11.0
    assert 6.0 <= lat_hw <= 8.5

    # Throughput: PRISM-KV stays within ~20% of hardware-RDMA Pilaf
    # (§6.2: "matches it for 50/50 mixed workloads"; in this model the
    # chained PUT request's extended-atomics masks and probe round trip
    # make the server-RX byte stream the binding constraint, costing
    # PRISM-KV ~19% — see EXPERIMENTS.md).
    peak_prism = peak_throughput(prism)
    peak_hw = peak_throughput(pilaf_hw)
    assert peak_prism > 0.75 * peak_hw


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import bench_main

    sys.exit(bench_main(
        "kv", "prism-sw",
        lambda keys: (lambda i: YCSB_A(keys, seed=13, client_id=i)),
        "Fig. 4 point: PRISM-KV (sw), YCSB-A uniform",
        seed=13, benchmark="fig4"))
