"""Figure 10: peak transaction throughput under contention (Zipf).

Paper: both optimistic protocols lose throughput as skew (and thus
conflict aborts) grows, but PRISM-TX maintains its advantage over FaRM
at every contention level.
"""

from repro.bench.harness import run_point
from repro.bench.reporting import print_table
from repro.workload import YcsbTransactionalWorkload

N_KEYS = 4_000
CLIENTS = [24, 96, 176]  # peak = max over the client sweep, as the paper
ZIPFS = [0.0, 0.6, 0.9, 1.2]


def _workload_factory(zipf):
    def make(index):
        return YcsbTransactionalWorkload(N_KEYS, keys_per_txn=1, zipf=zipf,
                                         seed=29, client_id=index)
    return make


def _run():
    results = {}
    for zipf in ZIPFS:
        for flavor in ("prism-sw", "farm-hw"):
            points = [run_point("tx", flavor, _workload_factory(zipf), n,
                                n_keys=N_KEYS, warmup_us=300.0,
                                measure_us=1200.0)
                      for n in CLIENTS]
            best = max(points, key=lambda r: r.throughput_ops_per_sec)
            results[(zipf, flavor)] = best
    return results


def test_fig10_tx_contention(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[zipf,
             results[(zipf, "prism-sw")].throughput_ops_per_sec / 1e6,
             results[(zipf, "farm-hw")].throughput_ops_per_sec / 1e6,
             results[(zipf, "prism-sw")].aborts,
             results[(zipf, "farm-hw")].aborts]
            for zipf in ZIPFS]
    print_table("Fig. 10: peak throughput vs Zipf (Mtxn/s)",
                ["zipf", "prism-tx", "farm", "prism_aborts", "farm_aborts"],
                rows)

    prism = [results[(z, "prism-sw")].throughput_ops_per_sec for z in ZIPFS]
    farm = [results[(z, "farm-hw")].throughput_ops_per_sec for z in ZIPFS]
    # PRISM-TX maintains its performance benefit under contention: a
    # clear win at low/moderate skew, at worst parity (within 5%) deep
    # in the collapse regime where both protocols are abort-bound.
    for p, f, zipf in zip(prism, farm, ZIPFS):
        if zipf <= 0.9:
            assert p > f, f"PRISM-TX lost its advantage at zipf={zipf}"
        else:
            assert p > 0.95 * f, f"PRISM-TX fell behind at zipf={zipf}"
    # Contention does hurt both optimistic protocols.
    assert prism[-1] < prism[0]
    assert farm[-1] < farm[0]
    # Conflicts (aborts) actually occurred at high skew.
    assert results[(ZIPFS[-1], "prism-sw")].aborts > 0
    assert results[(ZIPFS[-1], "farm-hw")].aborts > 0


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_fig10_tx_contention(NullBenchmark()),
                             "fig10: transaction contention", prefix="fig10"))
