"""Figure 9: PRISM-TX vs FaRM, YCSB-T (read-modify-write), uniform keys.

Paper: PRISM-TX commits with two one-sided round trips (prepare,
commit) plus one-round-trip execution reads, against FaRM's two-READ
accesses and three-phase commit with two RPCs — 5.5 µs lower latency
and ~1 M more transactions per second at saturation.
"""

from repro.bench.harness import sweep_clients
from repro.bench.reporting import (
    CURVE_HEADERS,
    curve_rows,
    low_load_latency,
    maybe_export,
    peak_throughput,
    print_table,
)
from repro.workload import YcsbTransactionalWorkload

N_KEYS = 8_000
CLIENTS = [1, 8, 32, 96, 176, 288]
SYSTEMS = ["prism-sw", "farm-hw", "farm-sw"]


def _workload(index):
    return YcsbTransactionalWorkload(N_KEYS, keys_per_txn=1, zipf=0.0,
                                     seed=23, client_id=index)


def _run():
    return {flavor: sweep_clients("tx", flavor, _workload, CLIENTS,
                                  n_keys=N_KEYS)
            for flavor in SYSTEMS}


def test_fig9_tx_uniform(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    maybe_export("fig9", curves)
    for flavor in SYSTEMS:
        print_table(f"Fig. 9: {flavor}, YCSB-T uniform",
                    CURVE_HEADERS, curve_rows(curves[flavor]))
    prism = curves["prism-sw"]
    farm_hw = curves["farm-hw"]

    lat_prism = low_load_latency(prism)
    lat_farm = low_load_latency(farm_hw)
    print_table("Fig. 9 summary: low-load transaction latency (µs)",
                ["system", "measured_us"],
                [["PRISM-TX (sw)", lat_prism],
                 ["FaRM (hw RDMA)", lat_farm]])
    # PRISM-TX is meaningfully faster per transaction (paper: 5.5 µs,
    # an 18% reduction).
    assert lat_prism < lat_farm
    assert 2.0 <= lat_farm - lat_prism <= 9.0
    # And reaches higher peak throughput (paper: ~1 M txn/s more).
    assert peak_throughput(prism) > 1.05 * peak_throughput(farm_hw)
    assert peak_throughput(prism) > 1.05 * peak_throughput(curves["farm-sw"])


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import bench_main

    sys.exit(bench_main(
        "tx", "prism-sw",
        lambda keys: (lambda i: YcsbTransactionalWorkload(
            keys, keys_per_txn=1, zipf=0.0, seed=23, client_id=i)),
        "Fig. 9 point: PRISM-TX (sw), YCSB-T uniform",
        seed=23, benchmark="fig9"))
