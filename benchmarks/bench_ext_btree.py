"""Extension: remote B-tree lookups (the Cell scenario, paper §9).

"Cell implements a B-tree, which requires even more round trips to
perform a read (though caching can be effective)... PRISM's indirection
primitives can help many of these systems."

We measure a lookup against a 4-level remote B-tree in three modes —
cold RDMA walk (h+2 round trips), cached index over RDMA (2 round
trips, Pilaf-shaped), cached index over PRISM (1 bounded indirect
READ) — at rack and datacenter network latency.
"""

from repro.apps.btree import BTreeClient, BTreeServer
from repro.bench.reporting import print_table
from repro.net.topology import DATACENTER, RACK, make_fabric
from repro.prism import HardwarePrismBackend
from repro.sim import Simulator

N_KEYS = 1000
PROBES = [7, 331, 1999, 2755]


def _measure(profile):
    sim = Simulator()
    fabric = make_fabric(sim, profile, ["client", "server"])
    server = BTreeServer(sim, fabric, "server", HardwarePrismBackend,
                         fanout=8, max_value_bytes=128)
    server.build([(key * 3 + 1, f"v{key}".encode()) for key in range(N_KEYS)])
    client = BTreeClient(sim, fabric, "client", server)
    results = {}

    def run():
        # Warm the cache once (a real deployment amortizes this).
        yield from client.get(PROBES[0], mode="rdma-cache")
        for key in PROBES:
            yield from client.get(key, mode="rdma-cache")
        for mode in BTreeClient.MODES:
            samples = []
            for key in PROBES:
                start = sim.now
                value = yield from client.get(key, mode=mode)
                assert value is not None
                samples.append(sim.now - start)
            results[mode] = sum(samples) / len(samples)

    sim.run_until_complete(sim.spawn(run()), limit=1e7)
    return results, server.height


def test_ext_btree_lookup_modes(benchmark):
    (rack, height), (datacenter, _h) = benchmark.pedantic(
        lambda: (_measure(RACK), _measure(DATACENTER)),
        rounds=1, iterations=1)
    print_table(
        f"Extension: remote B-tree lookup (height {height}) latency (µs)",
        ["mode", "round_trips", "rack", "datacenter"],
        [["rdma (cold walk)", height + 2, rack["rdma"],
          datacenter["rdma"]],
         ["rdma + index cache", 2, rack["rdma-cache"],
          datacenter["rdma-cache"]],
         ["prism + index cache", 1, rack["prism-cache"],
          datacenter["prism-cache"]]])

    for tier in (rack, datacenter):
        assert tier["prism-cache"] < tier["rdma-cache"] < tier["rdma"]
    # PRISM halves the cached-index lookup (one RT instead of two).
    assert rack["rdma-cache"] / rack["prism-cache"] > 1.5
    # The cold walk pays one RTT per level: brutal at datacenter scale.
    assert datacenter["rdma"] > (height + 1) * 20.0
    # The saved round trip is worth a full datacenter RTT.
    assert (datacenter["rdma-cache"] - datacenter["prism-cache"]) > 15.0


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ext_btree_lookup_modes(NullBenchmark()),
                             "extension: B-tree lookup modes", prefix="ext-btree"))
