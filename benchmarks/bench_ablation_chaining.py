"""Ablation: operation chaining (§3.4).

What does chaining buy? Run PRISM-KV's PUT install both ways:

* chained — WRITE/WRITE/ALLOCATE/CAS in ONE request (the real design);
* unchained — the same four operations as four dependent round trips
  (what the plain extended interface without chaining would force).

The chained form must cost ~1 network round trip; the unchained form
~4. This isolates the chaining contribution from indirection/allocation.
"""

from repro.bench.reporting import print_table
from repro.core.ops import AllocateOp, CasMode, CasOp, WriteOp
from repro.hw.layout import pack_uint
from repro.net.topology import RACK, make_fabric
from repro.prism import PrismClient, PrismServer, SoftwarePrismBackend
from repro.sim import Simulator

REPEATS = 20
VALUE = b"v" * 512


def _build():
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["client", "server"])
    server = PrismServer(sim, fabric, "server", SoftwarePrismBackend)
    slot, rkey = server.add_region(4096)
    freelist, buf_rkey = server.create_freelist(len(VALUE) + 16, 4096)
    client = PrismClient(sim, fabric, "client", server)
    server.space.write(slot, pack_uint(0, 8) + pack_uint(0, 8))
    return sim, server, client, slot, rkey, freelist, buf_rkey


def _ops(version, tmp, slot, rkey, freelist, buf_rkey, sram_rkey,
         conditional):
    return [
        WriteOp(addr=tmp, data=pack_uint(version, 8), rkey=sram_rkey),
        AllocateOp(freelist=freelist, data=pack_uint(version, 8) + VALUE,
                   rkey=buf_rkey, redirect_to=tmp + 8,
                   conditional=conditional),
        CasOp(target=slot, data=pack_uint(tmp, 8), rkey=rkey,
              mode=CasMode.GT, compare_mask=(1 << 64) - 1,
              data_indirect=True, operand_width=16,
              conditional=conditional),
    ]


def _measure(chained):
    sim, server, client, slot, rkey, freelist, buf_rkey = _build()
    samples = []

    def run():
        for i in range(1, REPEATS + 1):
            ops = _ops(i, client.sram_slot, slot, rkey, freelist, buf_rkey,
                       server.sram_rkey, conditional=chained)
            start = sim.now
            if chained:
                result = yield from client.execute(*ops)
                result.raise_on_nak()
            else:
                for op in ops:
                    result = yield from client.execute(op)
                    result.raise_on_nak()
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e6)
    return sum(samples) / len(samples)


def test_ablation_chaining(benchmark):
    chained, unchained = benchmark.pedantic(
        lambda: (_measure(True), _measure(False)), rounds=1, iterations=1)
    print_table("Ablation: chained vs unchained out-of-place install (µs)",
                ["variant", "latency_us", "round_trips"],
                [["chained (one request)", chained, 1],
                 ["unchained (per-op round trips)", unchained, 3]])
    # Chaining collapses three dependent round trips into one.
    assert chained < unchained / 2
    assert unchained - chained > 2 * 5.0  # ≥ two RTTs saved


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ablation_chaining(NullBenchmark()),
                             "ablation: operation chaining", prefix="ablation-chaining"))
