"""Figure 3: PRISM-KV vs Pilaf, YCSB-C (100% reads), uniform keys.

Paper: PRISM-KV reads in ~6 µs vs ~14 µs for Pilaf over software RDMA
(two round trips + CRCs) and ~8 µs for Pilaf over hardware RDMA; all
saturate the 40 GbE link, with PRISM-KV's single smaller reply giving
it ~22% higher read throughput.
"""

from repro.bench.harness import run_point, sweep_clients
from repro.bench.reporting import (
    CURVE_HEADERS,
    curve_rows,
    low_load_latency,
    maybe_export,
    peak_throughput,
    print_table,
)
from repro.workload import YCSB_C

N_KEYS = 8_000
CLIENTS = [1, 8, 32, 96, 176]
SYSTEMS = ["prism-sw", "pilaf-hw", "pilaf-sw"]


def _workload(index):
    return YCSB_C(N_KEYS, seed=11, client_id=index)


def _run():
    return {flavor: sweep_clients("kv", flavor, _workload, CLIENTS,
                                  n_keys=N_KEYS)
            for flavor in SYSTEMS}


def test_fig3_kv_read_only(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    maybe_export("fig3", curves)
    for flavor in SYSTEMS:
        print_table(f"Fig. 3: {flavor}, YCSB-C uniform",
                    CURVE_HEADERS, curve_rows(curves[flavor]))
    prism = curves["prism-sw"]
    pilaf_hw = curves["pilaf-hw"]
    pilaf_sw = curves["pilaf-sw"]

    # Low-load latency ordering and magnitudes (paper: 6 / 8 / 14 µs).
    lat_prism = low_load_latency(prism)
    lat_hw = low_load_latency(pilaf_hw)
    lat_sw = low_load_latency(pilaf_sw)
    print_table("Fig. 3 summary: low-load GET latency (µs)",
                ["system", "paper_us", "measured_us"],
                [["PRISM-KV (sw)", 6.0, lat_prism],
                 ["Pilaf (hw RDMA)", 8.0, lat_hw],
                 ["Pilaf (sw RDMA)", 14.0, lat_sw]])
    assert lat_prism < lat_hw < lat_sw
    assert 4.5 <= lat_prism <= 7.5
    assert 6.5 <= lat_hw <= 9.5
    assert 11.0 <= lat_sw <= 17.0
    # Indirect reads halve Pilaf-software's two round trips (~2x).
    assert 1.7 <= lat_sw / lat_prism <= 2.6

    # PRISM-KV sustains meaningfully higher read throughput (paper 22%).
    peak_prism = peak_throughput(prism)
    peak_hw = peak_throughput(pilaf_hw)
    assert peak_prism > 1.10 * peak_hw
    assert peak_prism > 1.10 * peak_throughput(pilaf_sw)


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import bench_main

    sys.exit(bench_main(
        "kv", "prism-sw",
        lambda keys: (lambda i: YCSB_C(keys, seed=11, client_id=i)),
        "Fig. 3 point: PRISM-KV (sw), YCSB-C uniform",
        seed=11, benchmark="fig3"))
