"""Extension: PRISM-TX across shards (§8's full distributed setting).

The paper's testbed limited PRISM-TX's evaluation to one shard; the
protocol is defined for partitioned data. With the client as
coordinator and timestamps fixing one serialization point, commit
stays two round trips no matter how many shards a transaction touches
— so throughput should scale with shard count while cross-shard
transaction latency stays flat.
"""

from repro.apps.tx import PrismTxServer
from repro.apps.tx.sharded import ShardedPrismTxClient, load_sharded
from repro.bench.reporting import print_table
from repro.net.topology import RACK, make_fabric
from repro.prism import SoftwarePrismBackend
from repro.sim import SeededRng, Simulator
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import TxnOp

KEYS_PER_SHARD = 2000
N_CLIENTS = 176
SHARD_COUNTS = [1, 2, 4]


class _CrossShardWorkload:
    """Single-key RMW transactions spread uniformly over all shards."""

    def __init__(self, n_keys, seed, client_id):
        import random
        self._rng = random.Random(seed * 7919 + client_id)
        self.n_keys = n_keys
        self._payload = bytes((client_id + i) % 256 for i in range(512))

    def next_op(self):
        key = self._rng.randrange(self.n_keys)
        return TxnOp("txn", (key,), (key,), self._payload)


def _run(n_shards):
    sim = Simulator()
    n_keys = KEYS_PER_SHARD * n_shards
    hosts = ([f"shard{i}" for i in range(n_shards)]
             + [f"client{i}" for i in range(11)])
    fabric = make_fabric(sim, RACK, hosts)
    servers = [PrismTxServer(sim, fabric, f"shard{i}", SoftwarePrismBackend,
                             n_keys=KEYS_PER_SHARD + 1, value_size=512,
                             spare_buffers=4096 + 48 * N_CLIENTS)
               for i in range(n_shards)]
    for key in range(n_keys):
        load_sharded(servers, key, bytes([key % 256]) * 512)
    driver = ClosedLoopDriver(sim, warmup_us=300.0, measure_us=1200.0)
    for index in range(N_CLIENTS):
        client = ShardedPrismTxClient(sim, fabric, f"client{index % 11}",
                                      servers, client_id=index + 1)
        driver.add_client(client.execute,
                          _CrossShardWorkload(n_keys, 41, index))
    return driver.run()


def test_ext_sharded_tx_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {n: _run(n) for n in SHARD_COUNTS}, rounds=1, iterations=1)
    rows = [[n, results[n].throughput_ops_per_sec / 1e6,
             results[n].mean_latency_us, results[n].aborts]
            for n in SHARD_COUNTS]
    print_table("Extension: PRISM-TX shard scaling "
                f"({N_CLIENTS} clients, uniform single-key RMW)",
                ["shards", "Mtxn/s", "mean_us", "aborts"], rows)
    # Adding shards adds servers: throughput scales up...
    assert (results[4].throughput_ops_per_sec
            > 1.6 * results[1].throughput_ops_per_sec)
    assert (results[2].throughput_ops_per_sec
            > 1.3 * results[1].throughput_ops_per_sec)
    # ...while per-transaction latency does not degrade (same 3
    # one-round-trip phases regardless of the shard count).
    assert results[4].mean_latency_us < 1.3 * results[1].mean_latency_us


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ext_sharded_tx_scaling(NullBenchmark()),
                             "extension: sharded TX scaling", prefix="ext-sharded-tx"))
