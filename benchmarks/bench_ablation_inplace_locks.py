"""Ablation: out-of-place CAS_GT installs vs lock-based in-place writes.

DESIGN.md calls out the paper's core update pattern (§2.2/§3.5):
write-out-of-place + atomically swing a versioned pointer, instead of
lock / write in place / unlock. This bench isolates that choice on a
single server under increasing key contention, with everything else
identical (same backend, same payload, same key distribution):

* ``cas-install`` — PRISM-KV style chained ALLOCATE/CAS_GT, 1 RT;
* ``lock-inplace`` — classic CAS lock, WRITE, CAS unlock, 3 RTs, plus
  backoff on lock failure.
"""

from repro.bench.reporting import print_table
from repro.core.ops import AllocateOp, CasMode, CasOp, WriteOp
from repro.hw.layout import pack_uint
from repro.net.topology import RACK, make_fabric
from repro.prism import PrismClient, PrismServer, SoftwarePrismBackend
from repro.sim import SeededRng, Simulator
from repro.sim.stats import LatencyRecorder
from repro.workload.keydist import ZipfKeys

N_KEYS = 64
N_CLIENTS = 24
VALUE = b"u" * 256
DURATION_US = 1500.0
ZIPFS = [0.0, 1.2]


def _build(sim):
    fabric = make_fabric(sim, RACK,
                         ["server"] + [f"c{i}" for i in range(N_CLIENTS)])
    server = PrismServer(sim, fabric, "server", SoftwarePrismBackend,
                         memory_bytes=64 << 20)
    # slot layout per key: [lock u64 | ver u64 | ptr u64 | inline value]
    stride = 24 + len(VALUE)
    base, rkey = server.add_region(N_KEYS * stride)
    # Enough buffers for the whole run (no recycler in this ablation:
    # retired buffers are simply not reused, isolating the update-path
    # comparison from recycling costs).
    freelist, buf_rkey = server.create_freelist(8 + len(VALUE), 24_000)
    for key in range(N_KEYS):
        addr = server.space.sbrk(0)  # no-op; values start zeroed
    return fabric, server, base, stride, rkey, freelist, buf_rkey


def _run(variant, zipf):
    sim = Simulator()
    fabric, server, base, stride, rkey, freelist, buf_rkey = _build(sim)
    recorder = LatencyRecorder(warmup_until=200.0)

    def client_loop(index):
        client = PrismClient(sim, fabric, f"c{index}", server)
        keys = ZipfKeys(N_KEYS, zipf, seed=index, permutation_seed=1)
        rng = SeededRng(index).stream("backoff")
        version = 0
        while sim.now < 200.0 + DURATION_US:
            key = keys.sample()
            slot = base + key * stride
            start = sim.now
            version += 1
            if variant == "cas-install":
                tmp = client.sram_slot
                result = yield from client.execute(
                    WriteOp(addr=tmp, data=pack_uint(version, 8),
                            rkey=server.sram_rkey),
                    AllocateOp(freelist=freelist,
                               data=pack_uint(version, 8) + VALUE,
                               rkey=buf_rkey, redirect_to=tmp + 8,
                               conditional=True),
                    CasOp(target=slot + 8, data=pack_uint(tmp, 8),
                          rkey=rkey, mode=CasMode.GT,
                          compare_mask=(1 << 64) - 1, data_indirect=True,
                          operand_width=16, conditional=True),
                )
                result.raise_on_nak()
            else:
                attempt = 0
                while True:
                    attempt += 1
                    locked, _ = yield from client.cas(
                        slot, data=pack_uint(index + 1, 8),
                        compare_data=pack_uint(0, 8), rkey=rkey)
                    if locked:
                        break
                    yield sim.timeout(rng.uniform(1.0, 4.0 * attempt))
                yield from client.write(slot + 24, VALUE, rkey=rkey)
                yield from client.cas(slot, data=pack_uint(0, 8),
                                      compare_data=pack_uint(index + 1, 8),
                                      rkey=rkey)
            recorder.record(sim.now, sim.now - start)

    processes = [sim.spawn(client_loop(i)) for i in range(N_CLIENTS)]
    waiter = sim.spawn((lambda d: (yield d))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e7)
    return recorder.mean(), recorder.count / DURATION_US * 1e6


def test_ablation_out_of_place_vs_locks(benchmark):
    results = benchmark.pedantic(
        lambda: {(variant, zipf): _run(variant, zipf)
                 for variant in ("cas-install", "lock-inplace")
                 for zipf in ZIPFS},
        rounds=1, iterations=1)
    rows = [[variant, zipf, results[(variant, zipf)][0],
             results[(variant, zipf)][1] / 1e6]
            for variant in ("cas-install", "lock-inplace")
            for zipf in ZIPFS]
    print_table("Ablation: out-of-place CAS install vs lock-based in-place",
                ["variant", "zipf", "mean_us", "Mops/s"], rows)
    for zipf in ZIPFS:
        cas_lat, cas_tput = results[("cas-install", zipf)]
        lock_lat, lock_tput = results[("lock-inplace", zipf)]
        # One round trip beats three at any contention level...
        assert cas_lat < lock_lat, zipf
        assert cas_tput > lock_tput, zipf
    # ...and the gap explodes under contention (lock convoys).
    gap_uniform = (results[("lock-inplace", 0.0)][0]
                   / results[("cas-install", 0.0)][0])
    gap_contended = (results[("lock-inplace", 1.2)][0]
                     / results[("cas-install", 1.2)][0])
    assert gap_contended > gap_uniform


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ablation_out_of_place_vs_locks(NullBenchmark()),
                             "ablation: out-of-place vs locks", prefix="ablation-inplace-locks"))
