"""Ablation: request batching (doorbell batching).

PRISM-TX issues each phase as ONE request carrying every key's
operations (§8.2's one-round-trip phases); the alternative is one
request per operation. Batching pays the network round trip and the
software stack's per-request cost once, so per-op latency collapses as
batch size grows — the effect that makes multi-key transaction phases
affordable.
"""

from repro.bench.reporting import print_table
from repro.core.ops import ReadOp
from repro.net.topology import RACK, make_fabric
from repro.prism import PrismClient, PrismServer, SoftwarePrismBackend
from repro.sim import Simulator

BATCH_SIZES = [1, 2, 4, 8]
REPEATS = 10


def _measure(batch, batched):
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["client", "server"])
    server = PrismServer(sim, fabric, "server", SoftwarePrismBackend)
    addr, rkey = server.add_region(64 * batch)
    client = PrismClient(sim, fabric, "client", server)
    samples = []

    def run():
        for _ in range(REPEATS):
            ops = [ReadOp(addr=addr + 64 * i, length=64, rkey=rkey)
                   for i in range(batch)]
            start = sim.now
            if batched:
                result = yield from client.execute(*ops)
                result.raise_on_nak()
            else:
                for op in ops:
                    result = yield from client.execute(op)
                    result.raise_on_nak()
            samples.append(sim.now - start)

    sim.run_until_complete(sim.spawn(run()), limit=1e6)
    return sum(samples) / len(samples)


def test_ablation_batching(benchmark):
    results = benchmark.pedantic(
        lambda: {(batch, mode): _measure(batch, mode == "batched")
                 for batch in BATCH_SIZES
                 for mode in ("batched", "sequential")},
        rounds=1, iterations=1)
    rows = [[batch, results[(batch, "batched")],
             results[(batch, "sequential")],
             results[(batch, "batched")] / batch]
            for batch in BATCH_SIZES]
    print_table("Ablation: batched vs sequential reads (prism-sw, µs)",
                ["ops", "batched", "sequential", "batched_per_op"], rows)

    for batch in BATCH_SIZES[1:]:
        # Sequential pays a round trip per op; batched pays ~one.
        assert results[(batch, "batched")] < results[(batch, "sequential")]
    # Per-op cost collapses with batch size.
    per_op_1 = results[(1, "batched")]
    per_op_8 = results[(8, "batched")] / 8
    assert per_op_8 < per_op_1 / 3
    # Sequential scales linearly with ops (within 20%).
    ratio = results[(8, "sequential")] / results[(1, "sequential")]
    assert 6.0 < ratio < 9.5


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_ablation_batching(NullBenchmark()),
                             "ablation: request batching", prefix="ablation-batching"))
