"""Figure 2: indirect read vs two RDMA READs across network tiers.

Paper: with a single ToR switch (0.6 µs), a three-tier cluster (3 µs),
or reported datacenter RDMA latency (24 µs), PRISM's software
implementation beats the two-round-trip RDMA baseline in every setting
— the gap growing with network latency because PRISM eliminates a
round trip.
"""

from repro.bench.microbench import measure_primitive, measure_two_rdma_reads
from repro.bench.reporting import print_table
from repro.net.topology import CLUSTER, DATACENTER, RACK

TIERS = [("rack", RACK), ("cluster", CLUSTER), ("datacenter", DATACENTER)]


def _run():
    results = {}
    for name, profile in TIERS:
        results[(name, "2x-rdma")] = measure_two_rdma_reads(profile=profile)
        for backend in ("prism-sw", "prism-bluefield", "prism-hw"):
            results[(name, backend)] = measure_primitive(
                backend, "indirect-read", profile=profile)
    return results


def test_fig2_indirect_read_vs_network(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    columns = ["2x-rdma", "prism-sw", "prism-bluefield", "prism-hw"]
    rows = [[name] + [results[(name, c)] for c in columns]
            for name, _ in TIERS]
    print_table("Fig. 2: indirect read latency by deployment (µs)",
                ["tier"] + columns, rows)

    gaps = []
    for name, _profile in TIERS:
        two_rdma = results[(name, "2x-rdma")]
        sw = results[(name, "prism-sw")]
        hw = results[(name, "prism-hw")]
        # PRISM software beats two RDMA round trips at every tier
        # despite executing on the CPU (§4.3, Fig. 2).
        assert sw < two_rdma, name
        assert hw < sw, name
        gaps.append(two_rdma - sw)
    # The benefit grows with network latency (a whole RTT is saved).
    assert gaps[0] < gaps[1] < gaps[2]
    # At datacenter latency the saved round trip dominates: the gap is
    # roughly one datacenter RTT (~24 µs).
    assert gaps[2] > 12.0
    # BlueField only pays off once the network is slow enough.
    assert (results[("datacenter", "prism-bluefield")]
            < results[("datacenter", "2x-rdma")])


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_fig2_indirect_read_vs_network(NullBenchmark()),
                             "fig2: indirect read vs network tier", prefix="fig2"))
