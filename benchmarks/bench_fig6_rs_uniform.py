"""Figure 6: PRISM-RS vs lock-based ABD, 3 replicas, 50% writes, uniform.

Paper: PRISM-RS needs 2 quorum round trips per operation vs 4 for
ABDLOCK (lock, read, write, unlock), making it ~2 µs faster at low load
and ~4 Mops/s higher at saturation — even against ABDLOCK on hardware
RDMA.
"""

from repro.bench.harness import sweep_clients
from repro.bench.reporting import (
    CURVE_HEADERS,
    curve_rows,
    low_load_latency,
    maybe_export,
    peak_throughput,
    print_table,
)
from repro.workload import YCSB_A

N_KEYS = 8_000
CLIENTS = [1, 8, 32, 96, 176]
SYSTEMS = ["prism-sw", "abdlock-hw", "abdlock-sw"]


def _workload(index):
    return YCSB_A(N_KEYS, seed=17, client_id=index)


def _run():
    return {flavor: sweep_clients("rs", flavor, _workload, CLIENTS,
                                  n_keys=N_KEYS)
            for flavor in SYSTEMS}


def test_fig6_rs_uniform(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    maybe_export("fig6", curves)
    for flavor in SYSTEMS:
        print_table(f"Fig. 6: {flavor}, 50% writes uniform",
                    CURVE_HEADERS, curve_rows(curves[flavor]))
    prism = curves["prism-sw"]
    abd_hw = curves["abdlock-hw"]
    abd_sw = curves["abdlock-sw"]

    lat_prism = low_load_latency(prism)
    lat_hw = low_load_latency(abd_hw)
    lat_sw = low_load_latency(abd_sw)
    print_table("Fig. 6 summary: low-load latency (µs)",
                ["system", "measured_us"],
                [["PRISM-RS (sw)", lat_prism],
                 ["ABDLOCK (hw RDMA)", lat_hw],
                 ["ABDLOCK (sw RDMA)", lat_sw]])
    # PRISM-RS beats even hardware-RDMA ABDLOCK on latency (paper ~2 µs).
    assert lat_prism < lat_hw < lat_sw
    assert 0.8 <= lat_hw - lat_prism <= 4.5

    # And saturates clearly higher (paper: ~4 Mops/s more).
    peak_prism = peak_throughput(prism)
    peak_hw = peak_throughput(abd_hw)
    assert peak_prism > 1.15 * peak_hw
    assert peak_prism > 1.15 * peak_throughput(abd_sw)


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import bench_main

    sys.exit(bench_main(
        "rs", "prism-sw",
        lambda keys: (lambda i: YCSB_A(keys, seed=17, client_id=i)),
        "Fig. 6 point: PRISM-RS (sw), 50% writes uniform",
        strict_sum=False, seed=17, benchmark="fig6"))
