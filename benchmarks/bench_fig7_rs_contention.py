"""Figure 7: PRISM-RS vs ABDLOCK latency under contention (Zipf).

Paper: with 100 closed-loop clients and increasingly skewed key choice,
ABDLOCK's latency degrades sharply (lock contention, backoff, retries)
while PRISM-RS stays flat at any contention level — its CAS_GT install
never blocks.
"""

from repro.bench.harness import run_point
from repro.bench.reporting import print_table
from repro.workload import YcsbWorkload

N_KEYS = 4_000
N_CLIENTS = 100
ZIPFS = [0.0, 0.5, 0.9, 1.2]


def _workload_factory(zipf):
    def make(index):
        return YcsbWorkload(N_KEYS, read_fraction=0.5, zipf=zipf,
                            seed=19, client_id=index)
    return make


def _run():
    results = {}
    for zipf in ZIPFS:
        for flavor in ("prism-sw", "abdlock-hw"):
            # A longer window so lock-convoy victims complete inside the
            # measurement period (their latency belongs in the mean).
            results[(zipf, flavor)] = run_point(
                "rs", flavor, _workload_factory(zipf), N_CLIENTS,
                n_keys=N_KEYS, warmup_us=300.0, measure_us=2500.0)
    return results


def test_fig7_rs_contention(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[zipf,
             results[(zipf, "prism-sw")].mean_latency_us,
             results[(zipf, "abdlock-hw")].mean_latency_us,
             results[(zipf, "abdlock-hw")].retries]
            for zipf in ZIPFS]
    print_table("Fig. 7: mean latency vs Zipf coefficient, 100 clients (µs)",
                ["zipf", "prism-rs", "abdlock", "abd_lock_retries"], rows)

    prism_flat = [results[(z, "prism-sw")].mean_latency_us for z in ZIPFS]
    abd = [results[(z, "abdlock-hw")].mean_latency_us for z in ZIPFS]
    # PRISM-RS remains responsive at any contention level (±35%).
    assert max(prism_flat) <= 1.35 * min(prism_flat)
    # ABDLOCK degrades heavily with skew (lock contention).
    assert abd[-1] > 1.8 * abd[0]
    # At high skew, PRISM-RS is far faster than the lock-based design.
    assert abd[-1] > 1.8 * prism_flat[-1]
    # Lock retries actually happened (the degradation is real).
    assert results[(ZIPFS[-1], "abdlock-hw")].retries > 0


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_fig7_rs_contention(NullBenchmark()),
                             "fig7: replicated-store contention", prefix="fig7"))
