"""§2.1 motivation numbers: one-sided READ vs two-sided RPC.

Paper (512 B value, 40 GbE through one switch):
  one-sided READ ≈ 3.2 µs, eRPC ≈ 5.6 µs (READ 43% faster);
  two dependent READs ≈ 0.8 µs *slower* than a single RPC.
"""

from repro.bench.microbench import (
    measure_one_sided_read,
    measure_rpc_read,
    measure_two_rdma_reads,
)
from repro.bench.reporting import print_table
from repro.net.topology import RACK


def _run():
    read = measure_one_sided_read(profile=RACK)
    rpc = measure_rpc_read(profile=RACK)
    two_reads = measure_two_rdma_reads(profile=RACK)
    return read, rpc, two_reads


def test_motivation_numbers(benchmark):
    read, rpc, two_reads = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(
        "§2.1: RPCs vs memory accesses (512 B, one ToR switch)",
        ["operation", "paper_us", "measured_us"],
        [
            ["one-sided READ", 3.2, read],
            ["two-sided eRPC", 5.6, rpc],
            ["two dependent READs", 6.4, two_reads],
        ])
    # One-sided is substantially faster than an RPC...
    assert read < rpc
    assert 2.4 <= read <= 4.0
    assert 4.6 <= rpc <= 6.6
    # ...but chasing a pointer with two READs loses to a single RPC.
    assert two_reads > rpc
    assert 0.2 <= two_reads - rpc <= 2.5


if __name__ == "__main__":
    import sys

    from repro.bench.tracing import NullBenchmark, standalone_main

    sys.exit(standalone_main(lambda: test_motivation_numbers(NullBenchmark()),
                             "motivation: RPCs vs memory accesses", prefix="motivation"))
