"""Operation descriptor validation and introspection."""

import pytest

from repro.core import (
    AllocateOp,
    CasMode,
    CasOp,
    InvalidOperation,
    ReadOp,
    WriteOp,
)

RKEY = 0x1000


class TestReadOp:
    def test_basic(self):
        op = ReadOp(addr=64, length=512, rkey=RKEY)
        assert not op.uses_extensions()
        assert op.opname == "READ"

    def test_negative_length_rejected(self):
        with pytest.raises(InvalidOperation):
            ReadOp(addr=64, length=-1, rkey=RKEY)

    def test_bounded_requires_indirect(self):
        with pytest.raises(InvalidOperation, match="bounded requires"):
            ReadOp(addr=64, length=8, rkey=RKEY, bounded=True)

    def test_extension_flags_detected(self):
        assert ReadOp(addr=0x40, length=8, rkey=RKEY,
                      indirect=True).uses_extensions()
        assert ReadOp(addr=0x40, length=8, rkey=RKEY,
                      conditional=True).uses_extensions()
        assert ReadOp(addr=0x40, length=8, rkey=RKEY,
                      redirect_to=128).uses_extensions()

    def test_redirect_shrinks_response(self):
        plain = ReadOp(addr=64, length=512, rkey=RKEY)
        redirected = ReadOp(addr=64, length=512, rkey=RKEY, redirect_to=128)
        assert redirected.response_bytes(512) < plain.response_bytes(512)

    def test_request_bytes_include_redirect_pointer(self):
        plain = ReadOp(addr=64, length=512, rkey=RKEY)
        redirected = ReadOp(addr=64, length=512, rkey=RKEY, redirect_to=128)
        assert redirected.request_bytes() == plain.request_bytes() + 8


class TestWriteOp:
    def test_length_defaults_to_data(self):
        op = WriteOp(addr=64, data=b"abc", rkey=RKEY)
        assert op.length == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidOperation):
            WriteOp(addr=64, data=b"abc", length=5, rkey=RKEY)

    def test_data_indirect_needs_pointer_and_length(self):
        with pytest.raises(InvalidOperation, match="length required"):
            WriteOp(addr=64, data=b"\0" * 8, rkey=RKEY, data_indirect=True)
        with pytest.raises(InvalidOperation, match="8-byte"):
            WriteOp(addr=64, data=b"abc", length=3, rkey=RKEY,
                    data_indirect=True)
        op = WriteOp(addr=64, data=(128).to_bytes(8, "little"), length=32,
                     rkey=RKEY, data_indirect=True)
        assert op.uses_extensions()

    def test_bounded_requires_indirect(self):
        with pytest.raises(InvalidOperation):
            WriteOp(addr=64, data=b"x", rkey=RKEY, addr_bounded=True)

    def test_classic_write_is_not_extension(self):
        assert not WriteOp(addr=64, data=b"x" * 16, rkey=RKEY).uses_extensions()

    def test_request_bytes_data_indirect_sends_pointer_only(self):
        inline = WriteOp(addr=64, data=b"x" * 512, rkey=RKEY)
        indirect = WriteOp(addr=64, data=(128).to_bytes(8, "little"),
                           length=512, rkey=RKEY, data_indirect=True)
        assert indirect.request_bytes() < inline.request_bytes()

    def test_ack_response(self):
        assert WriteOp(addr=64, data=b"x", rkey=RKEY).response_bytes() < 30


class TestAllocateOp:
    def test_always_extension(self):
        op = AllocateOp(freelist=1, data=b"x" * 16, rkey=RKEY)
        assert op.uses_extensions()
        assert op.length == 16

    def test_bad_freelist(self):
        with pytest.raises(InvalidOperation):
            AllocateOp(freelist=-1, data=b"", rkey=RKEY)

    def test_response_is_pointer_unless_redirected(self):
        plain = AllocateOp(freelist=1, data=b"x", rkey=RKEY)
        redirected = AllocateOp(freelist=1, data=b"x", rkey=RKEY,
                                redirect_to=64)
        assert plain.response_bytes() > redirected.response_bytes()


class TestCasOp:
    def test_classic_64bit_cas_is_not_extension(self):
        op = CasOp(target=64, data=b"\x01" * 8, rkey=RKEY,
                   compare_data=b"\x00" * 8)
        assert not op.uses_extensions()
        assert not op.uses_extended_atomics()

    def test_masks_default_to_full_width(self):
        op = CasOp(target=64, data=b"\x01" * 16, rkey=RKEY)
        assert op.compare_mask == (1 << 128) - 1
        assert op.swap_mask == (1 << 128) - 1

    def test_width_limit_32_bytes(self):
        CasOp(target=64, data=b"\x01" * 32, rkey=RKEY)
        with pytest.raises(InvalidOperation):
            CasOp(target=64, data=b"\x01" * 33, rkey=RKEY)

    def test_mask_exceeding_width_rejected(self):
        with pytest.raises(InvalidOperation):
            CasOp(target=64, data=b"\x01" * 8, rkey=RKEY,
                  compare_mask=1 << 64)

    def test_data_indirect_requires_width(self):
        with pytest.raises(InvalidOperation, match="operand_width"):
            CasOp(target=64, data=(128).to_bytes(8, "little"), rkey=RKEY,
                  data_indirect=True)

    def test_compare_data_width_checked(self):
        with pytest.raises(InvalidOperation, match="compare_data"):
            CasOp(target=64, data=b"\x01" * 8, rkey=RKEY,
                  compare_data=b"\x00" * 4)

    def test_data_size_must_match_width(self):
        with pytest.raises(InvalidOperation):
            CasOp(target=64, data=b"\x01" * 8, rkey=RKEY, operand_width=16)

    def test_prism_only_features(self):
        gt = CasOp(target=64, data=b"\x01" * 8, rkey=RKEY, mode=CasMode.GT)
        assert gt.uses_prism_only_features()
        assert gt.uses_extensions()
        masked = CasOp(target=64, data=b"\x01" * 16, rkey=RKEY,
                       compare_mask=0xFF)
        assert masked.uses_extended_atomics()
        assert not masked.uses_prism_only_features()

    def test_response_carries_old_value(self):
        op = CasOp(target=64, data=b"\x01" * 16, rkey=RKEY)
        assert op.response_bytes() >= 16


class TestCasModes:
    @pytest.mark.parametrize("mode,lhs,rhs,expected", [
        (CasMode.EQ, 5, 5, True), (CasMode.EQ, 5, 6, False),
        (CasMode.NE, 5, 6, True), (CasMode.NE, 5, 5, False),
        (CasMode.GT, 6, 5, True), (CasMode.GT, 5, 5, False),
        (CasMode.GE, 5, 5, True), (CasMode.GE, 4, 5, False),
        (CasMode.LT, 4, 5, True), (CasMode.LT, 5, 5, False),
        (CasMode.LE, 5, 5, True), (CasMode.LE, 6, 5, False),
    ])
    def test_compare(self, mode, lhs, rhs, expected):
        assert mode.compare(lhs, rhs) is expected


def test_rkey_required():
    with pytest.raises(InvalidOperation):
        ReadOp(addr=64, length=8, rkey=None)
