"""Chain composition rules."""

import pytest

from repro.core import (
    AllocateOp,
    CasOp,
    Chain,
    InvalidOperation,
    ReadOp,
    WriteOp,
    chain,
)

RKEY = 0x1000


def _read(**kw):
    return ReadOp(addr=64, length=8, rkey=RKEY, **kw)


def test_empty_chain_rejected():
    with pytest.raises(InvalidOperation):
        Chain([])


def test_first_op_cannot_be_conditional():
    with pytest.raises(InvalidOperation, match="first operation"):
        chain(_read(conditional=True))


def test_non_op_rejected():
    with pytest.raises(InvalidOperation):
        Chain(["not an op"])


def test_iteration_and_indexing():
    ops = [_read(), _read(conditional=True)]
    c = Chain(ops)
    assert len(c) == 2
    assert list(c) == ops
    assert c[1] is ops[1]


def test_single_classic_op_is_not_extension():
    assert not chain(_read()).uses_extensions()


def test_multi_op_chain_requires_extensions():
    assert chain(_read(), _read()).uses_extensions()


def test_request_bytes_sum():
    a, b = _read(), WriteOp(addr=64, data=b"x" * 32, rkey=RKEY)
    assert chain(a, b).request_bytes() == a.request_bytes() + b.request_bytes()


def test_response_bytes_uses_result_lengths():
    c = chain(_read(), WriteOp(addr=64, data=b"x", rkey=RKEY))
    total = c.response_bytes([b"y" * 8, None])
    assert total == (c[0].response_bytes(8) + c[1].response_bytes(0))


def test_canonical_out_of_place_update_chain():
    """The §3.5 pattern: ALLOCATE -> redirect -> conditional CAS."""
    c = chain(
        AllocateOp(freelist=1, data=b"v" * 64, rkey=RKEY, redirect_to=9000),
        CasOp(target=128, data=(9000).to_bytes(8, "little"), rkey=RKEY,
              data_indirect=True, operand_width=8, conditional=True),
    )
    assert c.uses_extensions()
    assert len(c) == 2
