"""Wire-format round trips and robustness (§4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import AllocateOp, CasMode, CasOp, InvalidOperation, ReadOp, WriteOp
from repro.core.wire import (
    FLAG_ADDR_INDIRECT,
    FLAG_BOUNDED,
    FLAG_CONDITIONAL,
    FLAG_DATA_INDIRECT,
    FLAG_REDIRECT,
    decode_chain,
    decode_op,
    encode_chain,
    encode_op,
)

RKEY = 0x1234


def roundtrip(op):
    decoded, offset = decode_op(encode_op(op))
    assert offset == len(encode_op(op))
    assert decoded == op
    return decoded


class TestRoundTrips:
    def test_plain_read(self):
        roundtrip(ReadOp(addr=0xABC, length=512, rkey=RKEY))

    def test_indirect_bounded_read(self):
        roundtrip(ReadOp(addr=0xABC, length=512, rkey=RKEY,
                         indirect=True, bounded=True))

    def test_redirected_conditional_read(self):
        roundtrip(ReadOp(addr=0xABC, length=64, rkey=RKEY,
                         conditional=True, redirect_to=0x9999))

    def test_plain_write(self):
        roundtrip(WriteOp(addr=0x10, data=b"hello", rkey=RKEY))

    def test_indirect_write(self):
        roundtrip(WriteOp(addr=0x10, data=b"hello!!!", rkey=RKEY,
                          addr_indirect=True, addr_bounded=True))

    def test_data_indirect_write(self):
        roundtrip(WriteOp(addr=0x10, data=(64).to_bytes(8, "little"),
                          length=256, rkey=RKEY, data_indirect=True))

    def test_allocate(self):
        roundtrip(AllocateOp(freelist=3, data=b"x" * 100, rkey=RKEY))

    def test_allocate_redirect_conditional(self):
        roundtrip(AllocateOp(freelist=3, data=b"x" * 10, rkey=RKEY,
                             conditional=True, redirect_to=0x8000))

    def test_classic_cas(self):
        roundtrip(CasOp(target=0x40, data=b"\x07" * 8, rkey=RKEY,
                        compare_data=b"\x00" * 8))

    def test_enhanced_cas_full(self):
        roundtrip(CasOp(target=0x40, data=b"\x07" * 24, rkey=RKEY,
                        mode=CasMode.GT, compare_mask=(1 << 64) - 1,
                        swap_mask=((1 << 128) - 1) << 64,
                        target_indirect=True, conditional=True))

    def test_cas_data_indirect(self):
        roundtrip(CasOp(target=0x40, data=(0x900).to_bytes(8, "little"),
                        rkey=RKEY, data_indirect=True, operand_width=16,
                        mode=CasMode.LE))

    def test_chain_roundtrip(self):
        ops = [
            WriteOp(addr=0x9000, data=b"\x01" * 8, rkey=RKEY),
            AllocateOp(freelist=1, data=b"v" * 520, rkey=RKEY,
                       redirect_to=0x9008, conditional=True),
            CasOp(target=0x40, data=(0x9000).to_bytes(8, "little"),
                  rkey=RKEY, mode=CasMode.GT, compare_mask=(1 << 64) - 1,
                  data_indirect=True, operand_width=16, conditional=True),
        ]
        assert decode_chain(encode_chain(ops)) == ops


class TestRobustness:
    def test_truncated_header(self):
        blob = encode_op(ReadOp(addr=1 << 12, length=8, rkey=RKEY))
        with pytest.raises(InvalidOperation, match="truncated"):
            decode_op(blob[:10])

    def test_truncated_payload(self):
        blob = encode_op(WriteOp(addr=1 << 12, data=b"x" * 64, rkey=RKEY))
        with pytest.raises(InvalidOperation, match="truncated"):
            decode_op(blob[:-1])

    def test_unknown_opcode(self):
        blob = bytearray(encode_op(ReadOp(addr=8, length=8, rkey=RKEY)))
        blob[0] = 0x7F
        with pytest.raises(InvalidOperation, match="unknown opcode"):
            decode_op(bytes(blob))

    def test_five_prism_flags_are_distinct_bits(self):
        flags = [FLAG_ADDR_INDIRECT, FLAG_DATA_INDIRECT, FLAG_BOUNDED,
                 FLAG_CONDITIONAL, FLAG_REDIRECT]
        assert len({f for f in flags}) == 5
        for flag in flags:
            assert bin(flag).count("1") == 1
        # All five fit in one spare byte of the BTH (§4.2).
        assert sum(flags) < 256


@given(addr=st.integers(min_value=8, max_value=2**48),
       length=st.integers(min_value=0, max_value=2**20),
       indirect=st.booleans(), conditional=st.booleans())
def test_read_roundtrip_property(addr, length, indirect, conditional):
    op = ReadOp(addr=addr, length=length, rkey=RKEY, indirect=indirect,
                conditional=conditional)
    assert decode_op(encode_op(op))[0] == op


@given(data=st.binary(min_size=1, max_size=32),
       mode=st.sampled_from(list(CasMode)))
def test_cas_roundtrip_property(data, mode):
    op = CasOp(target=0x40, data=data, rkey=RKEY, mode=mode)
    assert decode_op(encode_op(op))[0] == op


@given(payload=st.binary(max_size=600))
def test_allocate_roundtrip_property(payload):
    op = AllocateOp(freelist=2, data=payload, rkey=RKEY)
    assert decode_op(encode_op(op))[0] == op


@given(ops_count=st.integers(min_value=1, max_value=6),
       data=st.binary(min_size=8, max_size=8))
def test_chain_roundtrip_property(ops_count, data):
    ops = []
    for i in range(ops_count):
        if i % 2 == 0:
            ops.append(ReadOp(addr=64 + i, length=16, rkey=RKEY))
        else:
            ops.append(WriteOp(addr=64 + i, data=data, rkey=RKEY,
                               conditional=True))
    assert decode_chain(encode_chain(ops)) == ops


def test_request_bytes_close_to_encoded_size():
    """The analytic wire-size model tracks the real encoding."""
    ops = [
        ReadOp(addr=64, length=512, rkey=RKEY, indirect=True),
        WriteOp(addr=64, data=b"x" * 512, rkey=RKEY),
        CasOp(target=64, data=b"y" * 16, rkey=RKEY, mode=CasMode.GT),
        AllocateOp(freelist=1, data=b"z" * 512, rkey=RKEY, redirect_to=99),
    ]
    for op in ops:
        encoded = len(encode_op(op))
        claimed = op.request_bytes()
        assert abs(encoded - claimed) <= 24, (op.opname, encoded, claimed)
