"""Error taxonomy: hierarchy and chain-abort payloads."""

import pytest

from repro.core.errors import (
    AccessViolation,
    AllocationFailure,
    CasFailure,
    ChainAborted,
    InvalidOperation,
    PrismError,
    RemoteNak,
)


def test_hierarchy():
    for exc_type in (InvalidOperation, AccessViolation, RemoteNak,
                     AllocationFailure, CasFailure, ChainAborted):
        assert issubclass(exc_type, PrismError)
    # AllocationFailure is a flavour of Receiver-Not-Ready.
    assert issubclass(AllocationFailure, RemoteNak)


def test_chain_aborted_carries_index():
    error = ChainAborted(3, cause="cas miss")
    assert error.first_skipped_index == 3
    assert error.cause == "cas miss"
    assert "op 3" in str(error)


def test_catching_base_catches_all():
    with pytest.raises(PrismError):
        raise AllocationFailure("empty")
