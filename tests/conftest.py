"""Shared fixtures for the test suite."""

import pytest

from repro.net.topology import RACK, make_fabric
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fabric(sim):
    """A rack fabric with one client and one server host."""
    return make_fabric(sim, RACK, ["client", "server"])


def run(sim, generator, limit=1e7):
    """Drive a generator to completion; returns its value."""
    return sim.run_until_complete(sim.spawn(generator), limit=limit)


@pytest.fixture
def drive():
    return run
