"""Two-sided RPC layer: dispatch, service costs, core contention."""

import pytest

from repro.rpc.erpc import RpcClient, RpcConfig, RpcServer


@pytest.fixture
def rpc(sim, fabric):
    server = RpcServer(sim, fabric, "server")
    client = RpcClient(sim, fabric, "client")
    return server, client


def test_basic_call(sim, fabric, rpc, drive):
    server, client = rpc
    server.register("add", lambda args: (args[0] + args[1], 8))
    def main():
        result = yield from client.call("server", "add", (2, 3),
                                        request_payload_bytes=16)
        return result
    assert drive(sim, main()) == 5


def test_duplicate_method_rejected(sim, fabric, rpc):
    server, _ = rpc
    server.register("m", lambda args: (None, 0))
    with pytest.raises(ValueError):
        server.register("m", lambda args: (None, 0))


def test_handler_side_effects_happen_at_service_end(sim, fabric, rpc, drive):
    server, client = rpc
    stamps = []
    server.register("mark", lambda args: (stamps.append(sim.now), 0),
                    service_us=5.0)
    def main():
        yield from client.call("server", "mark", None, 8)
        return stamps[0]
    executed_at = drive(sim, main())
    assert executed_at >= 5.0  # dispatch + service before the handler runs


def test_callable_service_time(sim, fabric, rpc, drive):
    server, client = rpc
    server.register("scan", lambda args: (len(args), 8),
                    service_us=lambda args: 1.0 * len(args))
    def timed(n):
        start = sim.now
        yield from client.call("server", "scan", list(range(n)), 8 * n)
        return sim.now - start
    small = drive(sim, timed(1))
    large = drive(sim, timed(10))
    assert large > small + 8.0  # 9 extra µs of handler time


def test_core_pool_limits_throughput(sim, fabric):
    config = RpcConfig(cores=1, default_service_us=10.0, dispatch_us=0.0)
    server = RpcServer(sim, fabric, "server", config=config)
    server.register("slow", lambda args: (None, 0))
    client = RpcClient(sim, fabric, "client", config=config)
    finishes = []
    def caller():
        yield from client.call("server", "slow", None, 8)
        finishes.append(sim.now)
    sim.spawn(caller())
    sim.spawn(caller())
    sim.run()
    # Second call serialized behind the first on the single core.
    assert finishes[1] - finishes[0] == pytest.approx(10.0, abs=0.5)


def test_calls_served_counter(sim, fabric, rpc, drive):
    server, client = rpc
    server.register("noop", lambda args: (None, 0))
    def main():
        for _ in range(3):
            yield from client.call("server", "noop", None, 8)
    drive(sim, main())
    assert server.calls_served == 3
    assert client.calls_made == 3


def test_rpc_latency_matches_paper_target(sim, fabric, drive):
    """A 512 B read RPC lands near the paper's 5.6 µs (§2.1)."""
    server = RpcServer(sim, fabric, "server")
    server.register("read", lambda args: (b"v" * 512, 512))
    client = RpcClient(sim, fabric, "client")
    def main():
        start = sim.now
        yield from client.call("server", "read", None, 16)
        return sim.now - start
    latency = drive(sim, main())
    assert 4.6 <= latency <= 6.6


def test_handler_exception_returned_to_caller(sim, fabric, rpc, drive):
    server, client = rpc
    def bad_handler(args):
        raise ValueError("handler bug")
    server.register("bad", bad_handler)
    def main():
        with pytest.raises(ValueError, match="handler bug"):
            yield from client.call("server", "bad", None, 8)
        return "survived"
    assert drive(sim, main()) == "survived"
    # The server keeps serving after a handler failure.
    server.register("good", lambda args: ("fine", 8))
    def again():
        return (yield from client.call("server", "good", None, 8))
    assert drive(sim, again()) == "fine"


def test_unknown_method_rejected_remotely(sim, fabric, rpc, drive):
    _server, client = rpc
    def main():
        with pytest.raises(Exception, match="no RPC method"):
            yield from client.call("server", "missing", None, 8)
        return True
    assert drive(sim, main())
