"""Chrome trace-event export: valid JSON, ordering, track metadata."""

import json

from repro.obs.chrome_trace import (
    OPS_PID,
    PROCESS_PID,
    to_chrome_events,
    write_chrome_trace,
)
from repro.obs.trace import Tracer
from repro.sim import Simulator


def _traced_run():
    sim = Simulator()
    tracer = sim.set_tracer(Tracer(trace_processes=True))

    def op(name):
        with tracer.root(name) as root:
            yield sim.timeout(1.0)
            with root.child(f"{name}.leaf", phase="wire", bytes=512) as leaf:
                leaf.set_parts({"wire": 0.5, "queue": 0.5})
                yield sim.timeout(1.0)

    sim.spawn(op("get"), name="client0")
    sim.spawn(op("put"), name="client1")
    sim.run(until=100)
    return tracer


class TestToChromeEvents:
    def test_event_shapes(self):
        events = to_chrome_events(_traced_run().roots)
        timed = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 2          # one thread_name per operation
        assert len(timed) == 4         # two roots, two leaves
        for event in timed:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid"}
            assert event["pid"] == OPS_PID

    def test_timestamps_sorted_and_nested(self):
        events = to_chrome_events(_traced_run().roots)
        timed = [e for e in events if e["ph"] == "X"]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        # each leaf is contained in its root's interval
        by_tid = {}
        for event in timed:
            by_tid.setdefault(event["tid"], []).append(event)
        for track in by_tid.values():
            root = max(track, key=lambda e: e["dur"])
            for event in track:
                assert event["ts"] >= root["ts"]
                assert event["ts"] + event["dur"] <= root["ts"] + root["dur"]

    def test_parts_and_attrs_exported(self):
        events = to_chrome_events(_traced_run().roots)
        leaf = next(e for e in events if e["name"] == "get.leaf")
        assert leaf["args"]["bytes"] == 512
        assert leaf["args"]["parts_us"] == {"wire": 0.5, "queue": 0.5}

    def test_process_spans_get_their_own_pid(self):
        tracer = _traced_run()
        events = to_chrome_events(tracer.roots, tracer.process_spans)
        process_events = [e for e in events
                          if e["ph"] == "X" and e["pid"] == PROCESS_PID]
        assert {e["name"] for e in process_events} == {"client0", "client1"}

    def test_unfinished_spans_skipped(self):
        sim = Simulator()
        tracer = sim.set_tracer(Tracer())
        tracer.root("never-finished")
        assert to_chrome_events(tracer.roots) == []


class TestWriteChromeTrace:
    def test_round_trip(self, tmp_path):
        tracer = _traced_run()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(tracer.roots, str(path),
                                     process_spans=tracer.process_spans)
        assert written == str(path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"], "trace must not be empty"
        ts = [e["ts"] for e in data["traceEvents"] if e["ph"] == "X"]
        assert ts == sorted(ts)
