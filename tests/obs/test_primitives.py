"""Unit and end-to-end coverage for :mod:`repro.obs.primitives`."""

import pytest

from repro.bench.harness import run_point
from repro.core import CasMode
from repro.obs import PrimitiveCollector, TopK
from repro.workload import YCSB_A, YCSB_C


class TestTopK:
    def test_exact_when_stream_fits(self):
        sketch = TopK(4)
        for key, times in [("a", 5), ("b", 3), ("c", 1)]:
            for _ in range(times):
                sketch.note(key)
        assert sketch.total == 9
        assert sketch.count("a") == 5
        top = sketch.top()
        assert [entry["key"] for entry in top] == ["a", "b", "c"]
        assert all(entry["max_overestimate"] == 0 for entry in top)

    def test_eviction_inherits_min_count(self):
        sketch = TopK(2)
        sketch.note("a")
        sketch.note("a")
        sketch.note("b")
        sketch.note("c")  # evicts b (count 1); c inherits its floor
        assert "b" not in sketch
        assert sketch.count("c") == 2
        entry = next(e for e in sketch.top() if e["key"] == "c")
        assert entry["max_overestimate"] == 1

    def test_deterministic_ranking(self):
        sketch = TopK(8)
        for key in ["x", "y", "x", "z", "y", "x"]:
            sketch.note(key)
        assert [e["key"] for e in sketch.top(2)] == ["x", "y"]
        # Equal counts rank by key repr — stable across runs.
        tie = TopK(4)
        tie.note("b")
        tie.note("a")
        assert [e["key"] for e in tie.top()] == ["a", "b"]

    def test_top_n_and_len(self):
        sketch = TopK(16)
        for i in range(10):
            sketch.note(i)
        assert len(sketch) == 10
        assert len(sketch.top(3)) == 3

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopK(0)


class TestCollectorUnits:
    def test_cas_streaks_close_on_success(self):
        collector = PrimitiveCollector()
        # Connection 1 misses twice on 0x100, then wins.
        collector.note_cas(1, 0x100, CasMode.EQ, swapped=False)
        collector.note_cas(1, 0x100, CasMode.EQ, swapped=False)
        collector.note_cas(1, 0x100, CasMode.EQ, swapped=True)
        # Connection 2 misses once on the same address, never wins.
        collector.note_cas(2, 0x100, CasMode.GT, swapped=False)
        report = collector.report()["cas"]
        assert report["attempts"] == 4
        assert report["misses"] == 3
        assert report["miss_rate"] == pytest.approx(0.75)
        assert report["retry_chains"] == [[2, 1]]
        assert report["open_retry_chains"] == 1
        assert report["by_mode"]["eq"] == {"ok": 1, "miss": 2}
        assert report["by_mode"]["gt"] == {"ok": 0, "miss": 1}
        contended = report["contended_topk"]
        assert contended[0]["key"] == 0x100
        assert contended[0]["count"] == 3

    def test_streaks_are_per_connection_and_target(self):
        collector = PrimitiveCollector()
        collector.note_cas(1, 0x100, CasMode.EQ, swapped=False)
        collector.note_cas(1, 0x200, CasMode.EQ, swapped=False)
        collector.note_cas(1, 0x100, CasMode.EQ, swapped=True)
        report = collector.report()["cas"]
        # Only the 0x100 streak closed (length 1); 0x200 still open.
        assert report["retry_chains"] == [[1, 1]]
        assert report["open_retry_chains"] == 1

    def test_chain_classification(self):
        class _Status:
            def __init__(self, value):
                self.value = value

        class _Result:
            def __init__(self, value, error=None):
                self.status = _Status(value)
                self.error = error

        class _Op:
            indirect = False

        collector = PrimitiveCollector()
        ops = [_Op(), _Op(), _Op()]
        # Committed chain: all ok.
        collector.note_chain(ops, [_Result("ok")] * 3)
        # Aborted on a CAS miss: trailing ops skipped.
        collector.note_chain(ops, [_Result("cas_miss"), _Result("skipped"),
                                   _Result("skipped")])
        # Aborted on a NAK with a typed error.
        collector.note_chain(ops, [_Result("ok"),
                                   _Result("nak", error=KeyError("k")),
                                   _Result("skipped")])
        report = collector.report()["chains"]
        assert report["requests"] == 3
        assert report["committed"] == 1
        assert report["aborted"] == 2
        assert report["lengths"] == [[3, 3]]
        assert report["abort_reasons"] == {"KeyError": 1, "cas_miss": 1}
        # Executed = everything that reached the engine (ok, the
        # missing CAS, the NAK'd op); only post-abort ops are skipped.
        assert report["ops_executed"] == 6
        assert report["ops_skipped"] == 3

    def test_deref_and_nak(self):
        collector = PrimitiveCollector()
        collector.note_deref("READ", 0)
        collector.note_deref("READ", 1, bounded=True)
        collector.note_deref("WRITE", 2)
        collector.note_nak("READ", ValueError("bad"))
        report = collector.report()
        assert report["pointer_chase"]["depth_by_op"]["READ"] == [[0, 1],
                                                                  [1, 1]]
        assert report["pointer_chase"]["bounded_reads"] == 1
        assert report["chains"]["nak_reasons"] == {"READ": {"ValueError": 1}}

    def test_key_hotness_per_app(self):
        collector = PrimitiveCollector(top_k=4)
        for _ in range(3):
            collector.note_key("kv", "get", 7)
        collector.note_key("kv", "put", 9)
        collector.note_key("tx", "read", 7)
        report = collector.report()["keys"]
        assert report["kv"]["ops"] == {"get": 3, "put": 1}
        assert report["kv"]["topk"][0] == {"key": 7, "count": 3,
                                           "max_overestimate": 0}
        assert report["kv"]["total"] == 4
        assert report["tx"]["total"] == 1


class TestEndToEnd:
    def _point(self, flavor, workload, **kwargs):
        primitives = PrimitiveCollector()
        run_point("kv", flavor, workload, 4, n_keys=400,
                  warmup_us=100.0, measure_us=500.0,
                  primitives=primitives, **kwargs)
        return primitives.report()

    def test_read_only_run_reports_reads_and_keys(self):
        report = self._point(
            "prism-sw",
            lambda i: YCSB_C(400, zipf=0.9, seed=3, client_id=i))
        chains = report["chains"]
        assert chains["requests"] > 0
        assert chains["committed"] == chains["requests"]
        # PRISM-KV GETs are single indirect READs: every chain has
        # length 1 and exactly one dereference.
        assert chains["lengths"] == [[1, chains["requests"]]]
        assert report["pointer_chase"]["depth_by_op"]["READ"] == \
            [[1, chains["requests"]]]
        keys = report["keys"]["prism-kv"]
        assert set(keys["ops"]) == {"get"}
        assert keys["ops"]["get"] == chains["requests"]
        assert keys["topk"][0]["count"] >= keys["topk"][-1]["count"]
        # Free lists registered at creation show up even if never popped.
        assert report["allocator"]
        assert all(row["capacity"] > 0 for row in report["allocator"])

    def test_update_run_reports_cas_and_allocations(self):
        report = self._point(
            "prism-sw",
            lambda i: YCSB_A(400, zipf=0.9, seed=3, client_id=i))
        cas = report["cas"]
        assert cas["attempts"] > 0
        assert "gt" in cas["by_mode"]
        assert cas["hot_targets_topk"][0]["count"] > 0
        # PUTs run ALLOCATE -> WRITE -> CAS chains (length 4 with the
        # redirect prefix); pops and watermark movement must register.
        rows = [row for row in report["allocator"] if row["pops"]]
        assert rows
        assert all(row["lifetime_low_watermark"] < row["capacity"]
                   for row in rows)
        lengths = dict((bucket, count) for bucket, count
                       in report["chains"]["lengths"])
        assert any(bucket > 1 for bucket in lengths)
        keys = report["keys"]["prism-kv"]
        assert set(keys["ops"]) == {"get", "put"}

    def test_exhaustion_is_counted(self):
        from repro.core.errors import FreeListExhausted
        from repro.rdma.qp import QueuePair
        collector = PrimitiveCollector()
        qp = QueuePair(64, name="tiny")
        qp.post(0x1000)
        collector.register_freelist(99, qp)
        qp.pop()
        collector.note_allocate(99, qp)
        with pytest.raises(FreeListExhausted):
            qp.pop()
        collector.note_exhaustion(99, qp)
        row = next(r for r in collector.report()["allocator"]
                   if r["freelist"] == 99)
        assert row["exhaustions"] == 1
        assert row["low_watermark"] == 0
        assert row["pops"] == 1
