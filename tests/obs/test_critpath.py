"""Critical-path attribution: synthetic span trees + end-to-end runs.

The invariant under test everywhere: the critical segments tile
``[root.start, root.end]`` exactly, so per-request attributions sum to
end-to-end latency by construction — for sequential requests *and*
for quorum fan-out, where the phase breakdown over-counts.
"""

import pytest

from repro.bench.tracing import (
    check_critpath,
    measured_roots,
    run_traced_point,
)
from repro.obs import (
    Tracer,
    critical_attribution,
    critical_contributors,
    critical_segments,
    critpath_profile,
    critpath_rows,
    slack_us,
)
from repro.obs.critpath import format_contributors
from repro.workload import YCSB_A, YCSB_C


class _Clock:
    """A settable stand-in for the simulator clock."""

    def __init__(self):
        self.now = 0.0


def _tree():
    clock = _Clock()
    tracer = Tracer(clock)
    return clock, tracer


def _sum(attribution):
    return sum(attribution.values())


class TestSynthetic:
    def test_sequential_children_tile_exactly(self):
        clock, tracer = _tree()
        root = tracer.root("op")
        clock.now = 1.0
        with root.child("a", phase="cpu"):
            clock.now = 4.0
        with root.child("b", phase="wire"):
            clock.now = 9.0
        clock.now = 10.0
        root.finish()
        attribution = critical_attribution(root)
        assert attribution["cpu"] == pytest.approx(3.0)
        assert attribution["wire"] == pytest.approx(5.0)
        assert attribution["other"] == pytest.approx(2.0)  # root self time
        assert _sum(attribution) == pytest.approx(root.duration)
        assert slack_us(root) == pytest.approx(0.0)
        contributors = critical_contributors(root)
        assert contributors == pytest.approx({"a": 3.0, "b": 5.0,
                                              "op": 2.0})

    def test_parallel_fanout_picks_the_later_sibling(self):
        clock, tracer = _tree()
        root = tracer.root("op")
        clock.now = 1.0
        a = root.child("fast-replica", phase="cpu")
        b = root.child("slow-replica", phase="wire")
        clock.now = 6.0
        a.finish()
        clock.now = 9.0
        b.finish()
        clock.now = 10.0
        root.finish()
        attribution = critical_attribution(root)
        # The slow replica bounds the request; the fast one is slack.
        assert attribution["wire"] == pytest.approx(8.0)
        assert "cpu" not in attribution
        assert _sum(attribution) == pytest.approx(root.duration)
        # Slack = traced work minus wall clock. The breakdown charges
        # the root max(0, 10 - 13) = 0 self time, so work is 13 µs.
        assert slack_us(root) == pytest.approx(3.0)
        assert "fast-replica" not in critical_contributors(root)

    def test_straggler_past_root_end_is_excluded(self):
        clock, tracer = _tree()
        root = tracer.root("op")
        clock.now = 1.0
        straggler = root.child("straggler", phase="nic")
        clock.now = 10.0
        root.finish()
        clock.now = 12.0
        straggler.finish()
        attribution = critical_attribution(root)
        assert attribution == pytest.approx({"other": 10.0})
        assert _sum(attribution) == pytest.approx(root.duration)

    def test_open_child_is_excluded(self):
        clock, tracer = _tree()
        root = tracer.root("op")
        clock.now = 2.0
        root.child("never-finished", phase="nic")
        clock.now = 10.0
        root.finish()
        assert critical_attribution(root) == pytest.approx({"other": 10.0})

    def test_open_root_yields_no_segments(self):
        _clock, tracer = _tree()
        root = tracer.root("op")
        assert critical_segments(root) == []
        assert critical_attribution(root) == {}

    def test_parts_scale_to_the_attributed_share(self):
        clock, tracer = _tree()
        root = tracer.root("op")
        # s covers [0, 2]; t covers [1, 10] and wins the walk, so its
        # child u (opened "before" t's clipped window) is attributed
        # only [1, 8] of its [0, 8] life — parts scale by 7/8.
        s = root.child("s", phase="queue")
        clock.now = 1.0
        t = root.child("t", phase="cpu")
        clock.now = 0.0
        u = t.child("u", phase="nic")
        clock.now = 2.0
        s.finish()
        clock.now = 8.0
        u.set_parts({"nic": 4.0, "pcie": 4.0})
        u.finish()
        clock.now = 10.0
        t.finish()
        root.finish()
        attribution = critical_attribution(root)
        assert attribution["nic"] == pytest.approx(3.5)
        assert attribution["pcie"] == pytest.approx(3.5)
        assert attribution["cpu"] == pytest.approx(2.0)   # t self (8, 10]
        assert attribution["other"] == pytest.approx(1.0)  # root (0, 1]
        assert _sum(attribution) == pytest.approx(root.duration)

    def test_profile_aggregates_and_formats(self):
        clock, tracer = _tree()
        for latency in (4.0, 6.0):
            clock.now = 0.0
            root = tracer.root("get")
            with root.child("work", phase="nic"):
                clock.now = latency
            root.finish()
        profile = critpath_profile(tracer.roots)
        entry = profile["get"]
        assert entry["count"] == 2
        assert entry["mean_us"] == pytest.approx(5.0)
        assert entry["critical_sum_us"] == pytest.approx(entry["mean_us"])
        assert entry["contributors"][0]["name"] == "work"
        headers, rows = critpath_rows(profile)
        assert headers[0] == "op"
        assert "nic_us" in headers
        assert rows[0][0] == "get"
        assert "bounded by" in format_contributors(profile)


class TestEndToEnd:
    def _roots(self, kind, flavor, workload, **kwargs):
        result, _report, tracer = run_traced_point(
            kind, flavor, workload, 4, n_keys=400,
            warmup_us=100.0, measure_us=500.0, **kwargs)
        roots = measured_roots(tracer)
        assert roots
        return result, roots

    def test_kv_attributions_sum_to_latency(self):
        result, roots = self._roots(
            "kv", "prism-sw",
            lambda i: YCSB_C(400, zipf=0.9, seed=11, client_id=i))
        for root in roots:
            total = _sum(critical_attribution(root))
            assert abs(total - root.duration) < 1e-6
        profile = critpath_profile(roots)
        check_critpath(result, profile)

    def test_rs_quorum_has_slack_but_exact_critical_sums(self):
        result, roots = self._roots(
            "rs", "prism-sw",
            lambda i: YCSB_A(400, zipf=0.9, seed=17, client_id=i))
        for root in roots:
            total = _sum(critical_attribution(root))
            assert abs(total - root.duration) < 1e-6
        profile = critpath_profile(roots)
        check_critpath(result, profile)
        # Quorum fan-out: replicas the request never waited on show up
        # as slack, which the phase breakdown cannot separate.
        assert any(entry["slack_us"] > 0 for entry in profile.values())

    def test_check_critpath_rejects_divergence(self):
        result, roots = self._roots(
            "kv", "prism-sw",
            lambda i: YCSB_C(400, zipf=0.9, seed=11, client_id=i))
        profile = critpath_profile(roots)
        broken = {name: dict(entry, critical_sum_us=entry["critical_sum_us"]
                             + 1.0)
                  for name, entry in profile.items()}
        with pytest.raises(AssertionError):
            check_critpath(result, broken)
