"""Host-side self-profiling: off by default, bit-identical when on.

The contract under test mirrors every other observability layer: no
profiler installed means bare ``is None`` hooks and the uninstrumented
kernel loop; a profiler installed meters the *wall* clock only, so
simulated results are byte-for-byte the same either way.
"""

import os
import time

import pytest

from repro.bench.harness import run_point
from repro.obs import HostProfiler, UtilizationCollector
from repro.obs.hostprof import (
    BUCKETS,
    ProfileSession,
    StackSampler,
    activate,
    deactivate,
    profile_session,
)
from repro.obs import hostprof
from repro.sim import Simulator
from repro.workload import YCSB_A

_POINT = dict(n_clients=4, n_keys=300, warmup_us=100, measure_us=500)


def _kv_point(**kwargs):
    result = run_point(
        "kv", "prism-sw",
        lambda i: YCSB_A(300, seed=5, client_id=i), **_POINT, **kwargs)
    return result


def _metrics(result):
    return (result.ops, result.throughput_ops_per_sec,
            result.mean_latency_us, result.median_latency_us,
            result.p99_latency_us, result.aborts, result.retries)


class TestOffByDefault:
    def test_simulator_has_no_profiler(self):
        assert Simulator().hostprof is None

    def test_ambient_default_is_off(self):
        assert hostprof.ACTIVE is None

    def test_run_point_leaves_ambient_clear(self):
        _kv_point(hostprof=HostProfiler())
        assert hostprof.ACTIVE is None

    def test_simulator_adopts_ambient(self):
        profiler = activate(HostProfiler())
        try:
            assert Simulator().hostprof is profiler
        finally:
            deactivate(profiler)
        assert Simulator().hostprof is None

    def test_deactivate_is_conditional(self):
        first = activate(HostProfiler())
        second = activate(HostProfiler())
        deactivate(first)  # stale handle: must not clear the newer one
        assert hostprof.ACTIVE is second
        deactivate(second)
        assert hostprof.ACTIVE is None


class TestBitIdentity:
    def test_profiled_point_matches_unprofiled(self):
        assert (_metrics(_kv_point(hostprof=HostProfiler()))
                == _metrics(_kv_point()))

    def test_stride_sampling_matches_too(self):
        assert (_metrics(_kv_point(hostprof=HostProfiler(stride=7)))
                == _metrics(_kv_point()))


class TestMeter:
    @pytest.fixture(scope="class")
    def profiled(self):
        profiler = HostProfiler()
        result = _kv_point(hostprof=profiler, utilization=None)
        return profiler, result

    def test_counters_exact(self, profiled):
        profiler, result = profiled
        assert profiler.events == result.extra["events_executed"]
        assert 0 < profiler.resumes <= profiler.events

    def test_report_rates(self, profiled):
        profiler, _ = profiled
        report = profiler.report()
        assert report["wall_s"] > 0
        assert report["events_per_sec"] == pytest.approx(
            report["events"] / report["wall_s"])
        assert report["resumes_per_sec"] > 0

    def test_shares_are_exclusive_and_bounded(self, profiled):
        profiler, _ = profiled
        report = profiler.report()
        shares = [report["buckets"][name]["share"] for name in BUCKETS]
        assert all(share >= 0.0 for share in shares)
        assert sum(shares) <= 1.0 + 1e-9
        assert report["attributed_share"] == pytest.approx(sum(shares))

    def test_hot_buckets_nonzero(self, profiled):
        profiler, _ = profiled
        buckets = profiler.report()["buckets"]
        # A KV point dispatches events, resumes processes, queues on
        # resources, and packs/unpacks key-value structs.
        for name in ("dispatch", "resume", "resource", "codec"):
            assert buckets[name]["seconds"] > 0, name

    def test_obs_hook_overhead_is_reported(self):
        profiler = HostProfiler()
        _kv_point(hostprof=profiler, utilization=UtilizationCollector())
        report = profiler.report()
        assert report["buckets"]["hooks.obs"]["seconds"] > 0
        assert report["buckets"]["hooks.obs"]["share"] < 1.0

    def test_no_obs_hooks_without_collector(self, profiled):
        profiler, _ = profiled
        assert profiler.report()["buckets"]["hooks.obs"]["seconds"] == 0.0

    def test_stride_keeps_counters_exact(self):
        exact = HostProfiler()
        strided = HostProfiler(stride=5)
        first = _kv_point(hostprof=exact)
        second = _kv_point(hostprof=strided)
        assert exact.events == first.extra["events_executed"]
        assert strided.events == second.extra["events_executed"]
        assert exact.events == strided.events
        assert 0 < strided.timed_events <= exact.events // 5 + 1
        assert strided.report()["attributed_share"] <= 1.0 + 1e-9

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            HostProfiler(stride=0)


class TestBucketStack:
    def test_nested_bucket_suspends_parent(self):
        profiler = HostProfiler()
        profiler.run_begin()
        profiler.event_begin()            # opens "dispatch"
        profiler.enter("resource")
        profiler.enter("hooks.obs")
        profiler.exit()
        profiler.exit()
        profiler.event_end()
        profiler.run_end()
        seconds = profiler.bucket_s
        assert seconds["dispatch"] >= 0
        assert seconds["resource"] >= 0
        assert seconds["hooks.obs"] >= 0
        total = sum(seconds.values())
        assert total <= profiler.wall_s + 1e-9

    def test_event_end_unwinds_stranded_buckets(self):
        profiler = HostProfiler()
        profiler.run_begin()
        profiler.event_begin()
        profiler.enter("resource")        # never exited: simulated
        profiler.event_end()              # exception in a callback
        profiler.run_end()
        assert profiler._current is None
        assert profiler._stack == []

    def test_enter_exit_noop_when_not_timing(self):
        profiler = HostProfiler()
        profiler.enter("codec")
        profiler.exit()
        assert all(value == 0.0 for value in profiler.bucket_s.values())


class TestStackSampler:
    def test_samples_busy_loop(self):
        sampler = StackSampler(interval_s=0.001).start()
        deadline = time.perf_counter() + 0.05
        while time.perf_counter() < deadline:
            sum(range(100))
        sampler.stop()
        collapsed = sampler.collapsed()
        assert collapsed
        assert all(count > 0 for count in collapsed.values())
        # Frames are basename:function joined by semicolons.
        stack = next(iter(collapsed))
        assert ":" in stack

    def test_stop_is_idempotent(self):
        sampler = StackSampler(interval_s=0.001).start()
        sampler.stop()
        sampler.stop()


class TestProfileSession:
    def test_sample_mode_writes_flame_file(self, tmp_path):
        with profile_session("sample", prefix="t", out_dir=str(tmp_path)) \
                as session:
            deadline = time.perf_counter() + 0.02
            while time.perf_counter() < deadline:
                sum(range(100))
        assert session.paths == [str(tmp_path / "flame.t.txt")]
        assert os.path.exists(session.paths[0])

    def test_cprofile_mode_writes_pstats_and_flame(self, tmp_path):
        with profile_session("cprofile", prefix="t",
                             out_dir=str(tmp_path)) as session:
            sum(range(10000))
        assert session.paths == [str(tmp_path / "t.pstats"),
                                 str(tmp_path / "flame.t.txt")]
        for path in session.paths:
            assert os.path.getsize(path) > 0
        import pstats
        stats = pstats.Stats(session.paths[0])
        assert stats.total_calls > 0

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ProfileSession("perf")
