"""Online telemetry views: windows, eviction, probes, identity.

Three families of guarantees:

* **Mechanics** — the O(1) ring windows evict on time, the per-key map
  stays bounded, EWMAs and the chase-depth sketch compute the documented
  values, and the decision log is a bounded ring.
* **Reconciliation** — the views' lifetime totals equal the post-hoc
  collectors' aggregates on the same deterministic run (primitives for
  CAS/chase/NAK, series window counters for timeouts/backoffs).
* **Identity** — ``--views`` off is byte-identical: in-process
  ``RunResult`` equality and a subprocess ``--json`` record diff, both
  with and without a fault plan.
"""

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.harness import run_point
from repro.obs import (
    PrimitiveCollector,
    RfpCrossoverProbe,
    SeriesCollector,
    ViewCollector,
    crossover_vs_series,
)
from repro.obs.views import EWMA_ALPHA
from repro.sim import Simulator
from repro.sim.events import SimulationError
from repro.workload import YCSB_C, YcsbWorkload

REPO = Path(__file__).resolve().parents[2]

CLIENTS = 4
KEYS = 400


def _workloads(index):
    return YCSB_C(KEYS, zipf=0.9, seed=11, client_id=index)


def _run(**collectors):
    return run_point("kv", "prism-sw", _workloads, CLIENTS,
                     n_keys=KEYS, warmup_us=100.0, measure_us=500.0,
                     **collectors)


class _FakeSim:
    """Just enough simulator for unit-testing the collector: a clock."""

    def __init__(self):
        self._now = 0.0
        self.hostprof = None


def _bound_views(**kwargs):
    sim = _FakeSim()
    views = ViewCollector(**kwargs).bind(sim)
    return sim, views


# -- window mechanics --------------------------------------------------------


class TestWindows:
    def test_rate_is_windowed_sum_over_window(self):
        sim, views = _bound_views(window_us=50.0, n_buckets=8)
        for _ in range(10):
            views.note_cas(1, 0x100, swapped=False)
        # 10 retries in a 50 µs window = 200k events/s.
        assert views.rate("cas_retry", 1) == pytest.approx(200_000.0)
        assert views.rate("cas_attempt", 1) == pytest.approx(200_000.0)

    def test_events_age_out_after_the_window(self):
        sim, views = _bound_views(window_us=50.0, n_buckets=8)
        views.note_cas(1, 0x100, swapped=False)
        assert views.rate("cas_retry", 1) > 0
        sim._now = 49.0
        assert views.rate("cas_retry", 1) > 0
        sim._now = 50.0 + 50.0 / 8  # fully past the last live sub-bucket
        assert views.rate("cas_retry", 1) == 0.0
        assert views.rate("cas_retry", key=0x100) == 0.0
        # Lifetime totals survive eviction (the reconciliation channel).
        assert views._global_rings["cas_retry"].lifetime == 1.0

    def test_partial_eviction_keeps_recent_buckets(self):
        sim, views = _bound_views(window_us=80.0, n_buckets=8)
        views.note_timeout("c0")          # t=0, sub-bucket 0
        sim._now = 70.0                    # sub-bucket 7: 0 still live
        views.note_timeout("c0")
        assert views.rate("timeout", "c0") == pytest.approx(2 / 80e-6)
        sim._now = 85.0                    # sub-bucket 10 > 8: bucket 0 gone
        assert views.rate("timeout", "c0") == pytest.approx(1 / 80e-6)

    def test_untracked_conn_and_key_read_zero(self):
        _sim, views = _bound_views()
        assert views.rate("nak", "nobody") == 0.0
        assert views.rate("cas_retry", key=0xdead) == 0.0
        assert math.isnan(views.ewma("chase_depth", "nobody"))
        assert math.isnan(views.quantile("chase_depth", 0.99))

    def test_unknown_signals_raise(self):
        _sim, views = _bound_views()
        with pytest.raises(ValueError, match="unknown rate signal"):
            views.rate("bogus")
        with pytest.raises(ValueError, match="unknown ewma signal"):
            views.ewma("bogus")
        with pytest.raises(ValueError, match="cas_retry"):
            views.rate("nak", key=1)
        with pytest.raises(ValueError, match="chase_depth"):
            views.quantile("service_time_us", 0.5)


class TestKeyEviction:
    def test_key_map_is_bounded_with_stalest_evicted(self):
        sim, views = _bound_views(window_us=50.0, max_keys=16)
        for i in range(64):
            sim._now = float(i)
            views.note_cas(1, 0x1000 + i, swapped=False)
        assert len(views._key_rings) <= 16
        assert views.evicted_keys == 64 - 16
        # The freshest keys survive; the stalest were evicted.
        assert views.rate("cas_retry", key=0x1000 + 63) > 0
        assert views.rate("cas_retry", key=0x1000) == 0.0
        report = views.report()
        assert report["tracked_keys"] <= 16
        assert report["evicted_keys"] == 48


class TestEwmaAndSketch:
    def test_ewma_matches_the_recurrence(self):
        sim, views = _bound_views()
        samples = [4.0, 8.0, 2.0, 6.0]
        expected = samples[0]
        for sample in samples[1:]:
            expected = EWMA_ALPHA * sample + (1 - EWMA_ALPHA) * expected
        for sample in samples:
            views.note_service_time(7, sample)
        assert views.ewma("service_time_us", 7) == pytest.approx(expected)
        # conn=None is the global view, fed by every connection.
        assert views.ewma("service_time_us") == pytest.approx(expected)

    def test_chase_depth_quantile_over_exact_histogram(self):
        sim, views = _bound_views()
        for hops in [0] * 90 + [1] * 9 + [2]:
            views.note_chase(3, "READ", hops)
        assert views.quantile("chase_depth", 0.5, 3) <= 1.0
        assert views.quantile("chase_depth", 0.99, 3) >= 1.0
        assert 0.0 <= views.ewma("chase_depth", 3) <= 2.0
        # The global sketch merges per-conn histograms.
        assert views.quantile("chase_depth", 0.99) == \
            views.quantile("chase_depth", 0.99, 3)


class TestDecisionLog:
    def test_log_is_a_bounded_ring_in_record_order(self):
        sim, views = _bound_views(decision_capacity=8)
        for i in range(20):
            sim._now = float(i)
            views.probe("p", {"i": i}, "go")
        assert len(views.decisions) == 8
        assert views.decisions_recorded == 20
        assert views.decisions_evicted == 12
        log = views.decision_log()
        assert [entry["inputs"]["i"] for entry in log] == list(range(12, 20))
        assert [entry["seq"] for entry in log] == list(range(12, 20))
        assert log[0]["t_us"] == 12.0

    def test_report_embeds_the_log(self):
        sim, views = _bound_views()
        views.probe("p", {"x": 1.0}, "stay")
        report = views.report()
        assert report["decisions"]["recorded"] == 1
        assert report["decisions"]["log"][0]["verdict"] == "stay"


class TestProbes:
    def test_probe_fires_once_per_window_per_conn(self):
        sim, views = _bound_views(window_us=50.0)
        seen = []

        class Spy:
            name = "spy"

            def evaluate(self, v, conn, window_start_us):
                seen.append((conn, window_start_us))

        views.add_probe(Spy())
        views.note_timeout("a")
        views.note_timeout("a")          # same window: no re-evaluation
        sim._now = 75.0
        views.note_timeout("a")          # window 1
        views.note_timeout("b")          # other conn, same window
        assert seen == [("a", 0.0), ("a", 50.0), ("b", 50.0)]

    def test_rfp_probe_logs_first_eval_and_transitions_only(self):
        sim, views = _bound_views(window_us=50.0)
        probe = views.add_probe(RfpCrossoverProbe(cas_retry_per_s=50_000.0))
        views.note_cas(1, 0x10, swapped=True)   # quiet: one-sided verdict
        assert [d["verdict"] for d in views.decision_log()] == ["one-sided"]
        # Storm of misses in window 1; probes evaluate on the *first*
        # event of a window, so the verdict flips at the next window
        # boundary while the storm is still inside the sliding window.
        sim._now = 60.0
        for _ in range(20):
            views.note_cas(1, 0x10, swapped=False)
        sim._now = 101.0
        views.note_cas(1, 0x10, swapped=False)
        log = views.decision_log()
        assert [d["verdict"] for d in log] == ["one-sided", "rpc"]
        assert log[-1]["name"] == probe.name
        assert log[-1]["inputs"]["cas_retry_per_s"] >= 50_000.0
        # Staying contended across the next window logs nothing new.
        sim._now = 110.0
        for _ in range(20):
            views.note_cas(1, 0x10, swapped=False)
        sim._now = 151.0
        views.note_cas(1, 0x10, swapped=False)
        assert len(views.decision_log()) == 2


# -- install contract --------------------------------------------------------


class TestInstallContract:
    @pytest.mark.parametrize("setter,collector", [
        ("set_views", ViewCollector()),
        ("set_primitives", PrimitiveCollector()),
        ("set_series", SeriesCollector()),
    ])
    def test_late_install_raises(self, setter, collector):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        sim.spawn(proc())
        sim.run()
        assert sim.events_executed > 0
        with pytest.raises(SimulationError, match="before the"):
            getattr(sim, setter)(collector)

    def test_late_flight_and_faults_install_raise(self):
        from repro.faults import parse_faults
        from repro.obs import FlightRecorder
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        sim.spawn(proc())
        sim.run()
        with pytest.raises(SimulationError, match="set_flight"):
            sim.set_flight(FlightRecorder())
        with pytest.raises(SimulationError, match="set_faults"):
            sim.set_faults(parse_faults("seed=1,drop=0.01"))

    def test_install_before_run_still_works(self):
        sim = Simulator()
        views = sim.set_views(ViewCollector())
        assert sim.views is views


# -- identity ----------------------------------------------------------------


class TestOffByDefaultIdentity:
    def test_views_do_not_perturb_simulated_time(self):
        bare = _run()
        monitored = _run(views=ViewCollector())
        assert monitored == bare

    def test_views_do_not_perturb_faulty_runs(self):
        spec = "seed=3,drop=0.01"
        bare = _run(faults=spec)
        monitored = _run(faults=spec, views=ViewCollector())
        assert monitored == bare

    def test_views_saw_the_run(self):
        views = ViewCollector()
        _run(views=views)
        report = views.report()
        # YCSB-C is read-only: no CAS, but every round trip feeds the
        # service-time EWMA and every READ feeds the chase sketch.
        assert report["connections"]
        row = next(iter(report["connections"].values()))
        assert row["service_time_ewma_us"] > 0
        assert row["chase_ops"] > 0
        assert report["end_us"] is not None


def _strip_views(record_text):
    record = json.loads(record_text)
    for point in record["points"]:
        point.pop("views", None)
        assert point["config"].get("views") is None
    return json.dumps(record, indent=2, sort_keys=True)


def _cli_point(tmp_path, name, *extra, kind="kv"):
    out = tmp_path / name
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    subprocess.run(
        [sys.executable, "-m", "repro.bench.cli", "point",
         "--kind", kind, "--flavor", "prism-sw",
         "--clients", "2", "--keys", "200", "--json", str(out), *extra],
        check=True, env=env, cwd=tmp_path, capture_output=True, timeout=300)
    return out.read_text()


class TestSubprocessRecordIdentity:
    def test_views_leave_the_json_record_byte_identical(self, tmp_path):
        bare = _cli_point(tmp_path, "bare.json")
        again = _cli_point(tmp_path, "again.json")
        assert bare == again  # determinism floor for the comparison
        with_views = _cli_point(tmp_path, "views.json", "--views")
        assert json.loads(with_views)["points"][0]["views"]
        assert _strip_views(with_views) == _strip_views(bare)

    def test_views_leave_faulty_records_byte_identical(self, tmp_path):
        # rs chains are retry-safe by protocol design, so a lossy run
        # completes (the same spec the --flight identity test uses).
        spec = "seed=3,drop=0.02"
        bare = _cli_point(tmp_path, "bare.json", "--faults", spec,
                          kind="rs")
        with_views = _cli_point(tmp_path, "views.json", "--faults", spec,
                                "--views", kind="rs")
        assert _strip_views(with_views) == _strip_views(bare)


# -- reconciliation ----------------------------------------------------------


def _merged_hist(per_op):
    merged = {}
    for hist in per_op.values():
        for bucket, count in hist:
            merged[bucket] = merged.get(bucket, 0) + count
    return merged


class TestReconciliation:
    @pytest.fixture(scope="class")
    def collected(self):
        views = ViewCollector()
        primitives = PrimitiveCollector()
        series = SeriesCollector()
        result = run_point(
            "rs", "prism-sw",
            lambda i: YcsbWorkload(50, read_fraction=0.5, zipf=1.2,
                                   seed=19, client_id=i),
            8, n_keys=50, warmup_us=100.0, measure_us=500.0,
            views=views, primitives=primitives, series=series,
            faults="seed=5,drop=0.05")
        return views, primitives.report(), series.report(), result

    def test_cas_totals_match_primitives(self, collected):
        views, prim, _series, _result = collected
        report = views.report()
        assert report["signals"]["cas_attempt"]["total"] == \
            prim["cas"]["attempts"]
        assert report["signals"]["cas_retry"]["total"] == \
            prim["cas"]["misses"]

    def test_chase_histograms_match_primitives(self, collected):
        views, prim, _series, _result = collected
        merged = {}
        for hist in views._chase_hist.values():
            for hops, count in hist.items():
                merged[hops] = merged.get(hops, 0) + count
        assert merged == _merged_hist(prim["pointer_chase"]["depth_by_op"])

    def test_nak_totals_match_primitives(self, collected):
        views, prim, _series, _result = collected
        nak_total = sum(
            count for classes in prim["chains"]["nak_reasons"].values()
            for count in classes.values())
        assert views.report()["signals"]["nak"]["total"] == nak_total

    def test_timeout_and_backoff_totals_match_series_counters(
            self, collected):
        views, _prim, series, _result = collected
        report = views.report()

        def counter_sum(name):
            return sum((w.get("counters") or {}).get(name, 0)
                       for w in series["windows"])

        assert counter_sum("timeouts") > 0  # the drop plan actually bit
        assert report["signals"]["timeout"]["total"] == \
            counter_sum("timeouts")
        assert report["signals"]["backoff"]["total"] == \
            counter_sum("retransmissions")


# -- the demonstration probe -------------------------------------------------


class TestShadowProbeAcceptance:
    def test_contended_run_logs_decisions_that_agree_with_series(self):
        # A fig7-style contended point: hot-key CAS on PRISM-RS.
        views = ViewCollector()
        views.add_probe(RfpCrossoverProbe())
        series = SeriesCollector()
        run_point("rs", "prism-sw",
                  lambda i: YcsbWorkload(50, read_fraction=0.5, zipf=1.2,
                                         seed=19, client_id=i),
                  8, n_keys=50, warmup_us=100.0, measure_us=500.0,
                  views=views, series=series)
        decisions = views.decision_log()
        assert decisions, "contended run must log at least one decision"
        check = crossover_vs_series(decisions, series.report())
        assert check["decisions"] == len(decisions)
        assert check["agree"], check["conflicts"]

    def test_quiet_run_stays_one_sided(self):
        views = ViewCollector()
        views.add_probe(RfpCrossoverProbe())
        _run(views=views)
        verdicts = {d["verdict"] for d in views.decision_log()}
        assert verdicts == {"one-sided"}
