"""The shared quantile arithmetic and its two call sites."""

import math

import pytest

from repro.obs import quantiles
from repro.obs.metrics import Histogram
from repro.sim.stats import LatencyRecorder


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(quantiles.percentile([], 50))
        assert math.isnan(quantiles.percentile_sorted([], 99))

    def test_single_sample(self):
        assert quantiles.percentile([7.0], 0) == 7.0
        assert quantiles.percentile([7.0], 50) == 7.0
        assert quantiles.percentile([7.0], 100) == 7.0

    def test_endpoints(self):
        samples = [5.0, 1.0, 3.0]
        assert quantiles.percentile(samples, 0) == 1.0
        assert quantiles.percentile(samples, 100) == 5.0

    def test_linear_interpolation(self):
        # rank = 0.25 * (len-1): p25 of [10, 20] sits a quarter between.
        assert quantiles.percentile([20.0, 10.0], 25) == pytest.approx(12.5)
        # p50 of four samples interpolates between the middle two.
        assert quantiles.percentile([1.0, 2.0, 3.0, 4.0],
                                    50) == pytest.approx(2.5)

    def test_unsorted_input(self):
        assert quantiles.percentile([9.0, 1.0, 5.0],
                                    50) == quantiles.percentile(
                                        [1.0, 5.0, 9.0], 50)


class TestMean:
    def test_empty_is_nan(self):
        assert math.isnan(quantiles.mean([]))

    def test_mean(self):
        assert quantiles.mean([1.0, 2.0, 6.0]) == pytest.approx(3.0)


class TestHistogramBuckets:
    def test_empty(self):
        assert quantiles.fixed_width_histogram([]) == []

    def test_counts_cover_all_samples(self):
        samples = [0.1 * i for i in range(100)]
        buckets = quantiles.fixed_width_histogram(samples, max_buckets=8)
        assert sum(count for _, count in buckets) == len(samples)
        # the max is the closed upper edge of the last bucket, never a
        # bucket of its own — the cap is honored exactly
        assert len(buckets) <= 8

    def test_max_lands_in_last_bucket(self):
        buckets = quantiles.fixed_width_histogram([0.0, 4.0],
                                                  bucket_width=1.0)
        assert buckets == [(0.0, 1), (3.0, 1)]

    def test_single_sample(self):
        assert quantiles.fixed_width_histogram([7.0]) == [(7.0, 1)]

    def test_two_samples(self):
        buckets = quantiles.fixed_width_histogram([1.0, 2.0], max_buckets=4)
        assert sum(count for _, count in buckets) == 2
        assert len(buckets) <= 4

    def test_all_equal_samples(self):
        buckets = quantiles.fixed_width_histogram([3.0] * 5)
        assert buckets == [(3.0, 5)]

    def test_explicit_width(self):
        buckets = quantiles.fixed_width_histogram([0.0, 0.5, 1.5],
                                                  bucket_width=1.0)
        assert buckets == [(0.0, 2), (1.0, 1)]


class TestPercentileWeighted:
    def test_zero_weight_is_nan(self):
        assert math.isnan(quantiles.percentile_weighted([], 50))
        assert math.isnan(quantiles.percentile_weighted([(5.0, 0)], 50))

    def test_single_unit_weight(self):
        assert quantiles.percentile_weighted([(7.0, 1)], 0) == 7.0
        assert quantiles.percentile_weighted([(7.0, 1)], 100) == 7.0

    def test_matches_expanded_multiset(self):
        items = [(1.0, 3), (2.5, 1), (4.0, 5), (9.0, 2)]
        expanded = sorted(value for value, weight in items
                          for _ in range(weight))
        for p in (0, 10, 25, 50, 75, 90, 99, 100):
            assert quantiles.percentile_weighted(items, p) == \
                pytest.approx(quantiles.percentile_sorted(expanded, p))

    def test_p100_is_last_value(self):
        assert quantiles.percentile_weighted([(1.0, 4), (8.0, 2)],
                                             100) == 8.0

    def test_all_equal_values(self):
        assert quantiles.percentile_weighted([(5.0, 9)], 50) == 5.0

    def test_skips_zero_weight_entries(self):
        items = [(1.0, 2), (3.0, 0), (5.0, 2)]
        expanded = [1.0, 1.0, 5.0, 5.0]
        assert quantiles.percentile_weighted(items, 50) == \
            quantiles.percentile_sorted(expanded, 50)


class TestDistributionSummary:
    def test_empty(self):
        summary = quantiles.distribution_summary([])
        assert summary["count"] == 0
        assert math.isnan(summary["mean"])
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["p99"])
        assert math.isnan(summary["max"])

    def test_values(self):
        summary = quantiles.distribution_summary([4.0, 2.0])
        assert summary == {"count": 2, "mean": 3.0, "p50": 3.0,
                           "p99": pytest.approx(3.98), "max": 4.0}


class TestCallSiteParity:
    """Both collectors must delegate to the same arithmetic."""

    def test_empty_percentiles_are_nan(self):
        recorder = LatencyRecorder()
        histogram = Histogram("h", ())
        assert math.isnan(recorder.percentile(99))
        assert math.isnan(recorder.mean())
        assert math.isnan(histogram.percentile(99))
        assert math.isnan(histogram.mean())

    def test_identical_quantiles(self):
        samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        recorder = LatencyRecorder()
        histogram = Histogram("h", ())
        for sample in samples:
            recorder.record(0.0, sample)
            histogram.observe(sample)
        for p in (0, 25, 50, 90, 99, 100):
            assert recorder.percentile(p) == histogram.percentile(p)
        assert recorder.mean() == pytest.approx(histogram.mean())

    def test_recorder_histogram_uses_shared_buckets(self):
        recorder = LatencyRecorder()
        for sample in (0.0, 0.5, 1.5):
            recorder.record(0.0, sample)
        assert recorder.histogram(bucket_width_us=1.0) == \
            quantiles.fixed_width_histogram([0.0, 0.5, 1.5], bucket_width=1.0)
