"""Windowed time-series telemetry: digests, MSER, annotations."""

import json
import math

import pytest

from repro.bench.cli import main
from repro.bench.harness import run_point
from repro.obs import quantiles
from repro.obs.series import (
    LatencyDigest,
    SeriesCollector,
    detect_steady_state,
    merge_digests,
)
from repro.sim import Simulator
from repro.workload import YCSB_C


class TestLatencyDigest:
    def test_exact_below_cap(self):
        digest = LatencyDigest(cap=16)
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        for sample in samples:
            digest.add(sample)
        assert digest.exact
        assert digest.items() == [(v, 1) for v in sorted(samples)]
        summary = digest.summary()
        ordered = sorted(samples)
        assert summary["count"] == len(samples)
        assert summary["p50"] == quantiles.percentile_sorted(ordered, 50)
        assert summary["p99"] == quantiles.percentile_sorted(ordered, 99)
        assert summary["max"] == 9.0

    def test_empty_summary_is_nan(self):
        summary = LatencyDigest().summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["max"])

    def test_compression_bounds_memory(self):
        digest = LatencyDigest(cap=16, sketch_k=8)
        samples = [float((i * 37) % 100) for i in range(200)]
        for sample in samples:
            digest.add(sample)
        assert not digest.exact
        assert digest.count == len(samples)
        items = digest.items()
        # extreme pinning may add one centroid at each end
        assert len(items) <= 8 + 2
        assert sum(weight for _, weight in items) == len(samples)

    def test_compression_preserves_extremes(self):
        digest = LatencyDigest(cap=8, sketch_k=4)
        samples = [50.0] * 30 + [1.0, 999.0]
        for sample in samples:
            digest.add(sample)
        values = [value for value, _ in digest.items()]
        assert min(values) == 1.0
        assert max(values) == 999.0
        assert digest.summary()["max"] == 999.0

    def test_merge_exact_digests_reproduces_quantiles(self):
        everything = [float(i % 13) + 0.25 for i in range(60)]
        digests = [LatencyDigest(), LatencyDigest(), LatencyDigest()]
        for i, sample in enumerate(everything):
            digests[i % 3].add(sample)
        items, exact = merge_digests(digests)
        assert exact
        ordered = sorted(everything)
        for p in (0, 50, 99, 100):
            assert quantiles.percentile_weighted(items, p) == \
                quantiles.percentile_sorted(ordered, p)

    def test_merge_flags_compressed_contributor(self):
        compressed = LatencyDigest(cap=4, sketch_k=4)
        for sample in range(20):
            compressed.add(float(sample))
        _items, exact = merge_digests([LatencyDigest(), compressed])
        assert not exact


class TestCollectorAccounting:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window_us"):
            SeriesCollector(window_us=0.0)

    def test_window_sums_reconcile_with_totals(self):
        series = SeriesCollector(window_us=10.0)
        measured_samples = []
        for i in range(57):
            t = i * 3.5
            measured = t >= 30.0
            latency = 5.0 + (i % 7)
            series.record_op(t, latency, measured, ok=(i % 9 != 0))
            if measured:
                measured_samples.append(latency)
        series.finish(200.0)
        report = series.report()
        reconciliation = report["reconciliation"]
        assert reconciliation["measured_ops"] == len(measured_samples)
        assert reconciliation["window_measured_sum"] == len(measured_samples)
        assert reconciliation["digest_exact"]
        ordered = sorted(measured_samples)
        merged = reconciliation["merged"]
        assert merged["p50_us"] == quantiles.percentile_sorted(ordered, 50)
        assert merged["p99_us"] == quantiles.percentile_sorted(ordered, 99)
        assert merged["max_us"] == ordered[-1]
        assert sum(w["ops"] for w in report["windows"]) == 57

    def test_grid_is_dense_and_clipped_to_end(self):
        series = SeriesCollector(window_us=10.0)
        series.record_op(5.0, 1.0, False)
        series.record_op(95.0, 1.0, True)
        series.finish(95.0)
        report = series.report()
        windows = report["windows"]
        # every window between first and last exists, even idle ones
        assert [w["start"] for w in windows] == \
            [10.0 * i for i in range(10)]
        assert windows[-1]["end"] == 95.0  # final window clips to run end
        assert all(w["ops"] == 0 for w in windows[1:-1])

    def test_count_buckets_into_explicit_window(self):
        series = SeriesCollector(window_us=10.0)
        series.record_op(5.0, 1.0, True)
        series.count("timeouts", t=25.0)
        series.count("timeouts", n=2, t=27.0)
        series.finish(30.0)
        windows = series.report()["windows"]
        assert "counters" not in windows[0]
        assert windows[2]["counters"] == {"timeouts": 3}

    def test_off_by_default(self):
        assert Simulator().series is None

    def test_set_series_binds(self):
        sim = Simulator()
        series = sim.set_series(SeriesCollector())
        assert sim.series is series


class TestDetectSteadyState:
    def test_short_series_yields_zero(self):
        assert detect_steady_state([]) == 0
        assert detect_steady_state([9.0, 1.0, 1.0]) == 0

    def test_flat_series_yields_zero(self):
        assert detect_steady_state([5.0] * 20) == 0

    def test_decaying_transient_is_cut(self):
        values = [100.0, 50.0, 25.0] + [10.0] * 9
        assert detect_steady_state(values) == 3

    def test_truncation_is_bounded(self):
        # even a series that never settles truncates at most half
        values = [float(i) for i in range(20)]
        assert detect_steady_state(values) <= 10


@pytest.fixture(scope="module")
def collected_run():
    series = SeriesCollector(window_us=50.0)
    result = run_point("kv", "prism-sw",
                       lambda i: YCSB_C(200, seed=11, client_id=i), 2,
                       n_keys=200, series=series)
    return series, result


class TestHarnessReconciliation:
    """Merged window digests must equal the end-of-run recorder."""

    def test_measured_ops_reconcile(self, collected_run):
        series, result = collected_run
        reconciliation = series.report()["reconciliation"]
        assert reconciliation["measured_ops"] == result.ops
        assert reconciliation["window_measured_sum"] == result.ops
        assert reconciliation["digest_exact"]

    def test_quantiles_reconcile_exactly(self, collected_run):
        series, result = collected_run
        merged = series.report()["reconciliation"]["merged"]
        assert merged["p50_us"] == result.median_latency_us
        assert merged["p99_us"] == result.p99_latency_us
        # mean is summed per window, then across windows: identical up
        # to float summation order (last couple of ulps), never more
        assert merged["mean_us"] == \
            pytest.approx(result.mean_latency_us, rel=1e-12)

    def test_default_warmup_covers_transient(self, collected_run):
        series, _result = collected_run
        steady = series.report()["steady_state"]
        assert steady["detector"] == "mser"
        assert steady["configured_warmup_us"] == 300.0
        assert steady["transient_end_us"] <= 300.0
        assert steady["warmup_sufficient"]
        assert steady["steady_measured_ops"] > 0
        assert steady["steady_tput_ops_per_sec"] > 0

    def test_report_embeds_geometry(self, collected_run):
        series, _result = collected_run
        report = series.report()
        assert report["window_us"] == 50.0
        assert report["warmup_us"] == 300.0
        assert report["measure_end_us"] == 1800.0
        assert report["n_windows"] >= 36


def test_too_short_warmup_is_flagged():
    # The acceptance case: 16 staggered closed-loop clients take a few
    # windows to fill the server queues, so a 10 µs warmup cannot cover
    # the ramp-up transient — and the detector says so.
    series = SeriesCollector(window_us=50.0)
    run_point("kv", "prism-sw",
              lambda i: YCSB_C(2000, seed=11, client_id=i), 16,
              n_keys=2000, warmup_us=10.0, measure_us=1500.0, series=series)
    steady = series.report()["steady_state"]
    assert steady["transient_end_us"] > 10.0
    assert steady["warmup_sufficient"] is False


@pytest.fixture(scope="module")
def chaos_point(tmp_path_factory):
    path = tmp_path_factory.mktemp("series") / "chaos.json"
    assert main(["point", "--kind", "rs", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--faults", "seed=3,drop=0.01,crash=replica1@600+300",
                 "--series", "--json", str(path)]) == 0
    return json.loads(path.read_text())["points"][0]


class TestChaosAnnotations:
    """Injected fault windows surface as named annotations."""

    def test_crash_window_is_annotated(self, chaos_point):
        annotations = chaos_point["series"]["annotations"]
        crashes = [a for a in annotations if a["kind"] == "fault.crash"]
        assert len(crashes) == 1
        crash = crashes[0]
        assert crash["start_us"] == 600.0
        assert crash["end_us"] == 900.0
        assert "replica1" in crash["label"]

    def test_drop_windows_are_annotated(self, chaos_point):
        annotations = chaos_point["series"]["annotations"]
        drops = [a for a in annotations if a["kind"] == "fault.drop"]
        assert len(drops) == 1
        assert "drops injected" in drops[0]["label"]

    def test_deviations_carry_injected_causes(self, chaos_point):
        deviations = [a for a in chaos_point["series"]["annotations"]
                      if not a["kind"].startswith("fault.")]
        assert deviations, "crash should disturb at least one window"
        assert any(a["cause"] and a["cause"].startswith("fault:")
                   for a in deviations)

    def test_injected_counters_reconcile_with_injector(self, chaos_point):
        counters = {}
        for window in chaos_point["series"]["windows"]:
            for name, n in (window.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + n
        faults = chaos_point["faults"]
        assert counters.get("drops", 0) == faults["messages_dropped"] > 0
        assert counters.get("crash_drops", 0) == faults["crash_drops"]
        assert counters.get("retransmissions", 0) == \
            faults["retransmissions"]

    def test_utilization_rows_cover_grid(self, chaos_point):
        rows = chaos_point["series"]["utilization"]
        assert rows
        n_windows = chaos_point["series"]["n_windows"]
        for row in rows:
            assert len(row["busy"]) == n_windows
            assert all(0.0 <= b <= 1.0 + 1e-9 for b in row["busy"])
