"""The bottleneck analyzer: synthetic reports and real workloads."""

import pytest

from repro.bench.harness import run_point
from repro.net.topology import RACK, make_fabric
from repro.obs import (
    SATURATION_THRESHOLD,
    UtilizationCollector,
    analyze,
    format_analysis,
)
from repro.rpc.erpc import RpcClient, RpcConfig, RpcServer
from repro.workload import YCSB_C


def _row(name, kind, utilization, mean_depth=0.0, p99=0.0):
    return {"name": name, "kind": kind, "capacity": 1,
            "utilization": utilization,
            "queue": {"mean_depth": mean_depth, "max_depth": 0,
                      "delay_us": {"count": 0, "p99": p99}},
            "events": 0, "units": 0}


class TestAnalyzeSynthetic:
    def test_empty_report_is_unknown(self):
        analysis = analyze([])
        assert analysis["verdict"] == "unknown"
        assert analysis["resource"] is None

    def test_below_threshold_is_load_bound(self):
        report = [_row("cores", "cpu", 0.40), _row("tx.port", "wire", 0.55)]
        analysis = analyze(report)
        assert analysis["verdict"] == "load-bound"
        # Still names the most utilized resource for headroom guidance.
        assert analysis["resource"] == "tx.port"
        assert analysis["headroom"] == pytest.approx(1 / 0.55 - 1)
        assert analysis["saturated"] == []

    def test_saturated_resource_names_verdict(self):
        report = [_row("cores", "cpu", 0.97), _row("tx.port", "wire", 0.60)]
        analysis = analyze(report)
        assert analysis["verdict"] == "cpu-bound"
        assert analysis["resource"] == "cores"
        assert analysis["utilization"] == pytest.approx(0.97)
        assert analysis["saturated"] == ["cores"]

    def test_threshold_is_inclusive_boundary(self):
        at_threshold = analyze([_row("pu", "nic", SATURATION_THRESHOLD)])
        assert at_threshold["verdict"] == "nic-bound"
        below = analyze([_row("pu", "nic", SATURATION_THRESHOLD - 1e-6)])
        assert below["verdict"] == "load-bound"

    def test_non_capacity_kinds_never_win(self):
        # Occupancy counters (None utilization) and non-contended kinds
        # (engine op counts) must not be named as the bottleneck.
        report = [_row("fabric.inflight", "net", None),
                  _row("engine", "engine", 0.99),
                  _row("cores", "cpu", 0.50)]
        analysis = analyze(report)
        assert analysis["resource"] == "cores"
        assert analysis["verdict"] == "load-bound"

    def test_ranked_is_sorted_and_bounded(self):
        report = [_row(f"r{i}", "wire", i / 10.0) for i in range(10)]
        analysis = analyze(report, top=3)
        ranked = analysis["ranked"]
        assert len(ranked) == 3
        assert [r["name"] for r in ranked] == ["r9", "r8", "r7"]

    def test_format_mentions_verdict_and_resource(self):
        text = format_analysis(analyze([_row("cores", "cpu", 0.95)]))
        assert "cpu-bound" in text
        assert "cores" in text


class TestAnalyzeWorkloads:
    def test_cpu_bound_rpc_workload(self, sim):
        """Closed-loop RPCs against a single-core server saturate CPU."""
        collector = sim.set_utilization(UtilizationCollector())
        fabric = make_fabric(sim, RACK, ["client", "server"])
        server = RpcServer(sim, fabric, "server",
                           config=RpcConfig(cores=1))
        server.register("work", lambda args: (None, 16), service_us=3.0)
        clients = [RpcClient(sim, fabric, "client") for _ in range(8)]

        def loop(client):
            for _ in range(30):
                yield from client.call("server", "work", None, 32)

        def parent():
            procs = [sim.spawn(loop(client)) for client in clients]
            for proc in procs:
                yield proc

        sim.run_until_complete(sim.spawn(parent()))
        collector.finish(sim.now)
        analysis = analyze(collector.report())
        assert analysis["verdict"] == "cpu-bound"
        assert analysis["resource"] == "rpc@server"
        assert analysis["utilization"] >= SATURATION_THRESHOLD

    def test_nic_bound_one_sided_reads(self):
        """Pilaf-HW one-sided reads at high load saturate the NIC PUs,
        with the server TX wire right behind — the paper's fig. 3
        client-scaling regime."""
        collector = UtilizationCollector()
        run_point("kv", "pilaf-hw",
                  lambda i: YCSB_C(400, seed=11, client_id=i), 72,
                  n_keys=400, warmup_us=200.0, measure_us=800.0,
                  utilization=collector)
        analysis = analyze(collector.report())
        assert analysis["verdict"] in ("nic-bound", "wire-bound")
        ranked_kinds = [r["kind"] for r in analysis["ranked"][:2]]
        assert set(ranked_kinds) == {"nic", "wire"}
        assert analysis["utilization"] >= SATURATION_THRESHOLD
