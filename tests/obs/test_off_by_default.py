"""Observability must be free when off and invisible when on.

The collectors (tracer, utilization, primitives) only read state at
transitions the run already makes, so a fully monitored run must be
*bit-identical* in simulated time to a bare one — same ops, same mean,
same p99, same abort count. This is the regression test that keeps
that guarantee honest.
"""

from repro.bench.harness import run_point
from repro.obs import PrimitiveCollector, Tracer, UtilizationCollector
from repro.workload import YCSB_C

CLIENTS = 4
KEYS = 400


def _workloads(index):
    return YCSB_C(KEYS, zipf=0.9, seed=11, client_id=index)


def _run(**collectors):
    return run_point("kv", "prism-sw", _workloads, CLIENTS,
                     n_keys=KEYS, warmup_us=100.0, measure_us=500.0,
                     **collectors)


def test_all_collectors_do_not_perturb_simulated_time():
    bare = _run()
    monitored = _run(tracer=Tracer(),
                     utilization=UtilizationCollector(),
                     primitives=PrimitiveCollector())
    # RunResult is a dataclass: equality compares every measured field
    # (ops, throughput, mean/p50/p99 latency, aborts) exactly.
    assert monitored == bare


def test_primitives_alone_do_not_perturb_simulated_time():
    bare = _run()
    monitored = _run(primitives=PrimitiveCollector())
    assert monitored == bare


def test_collectors_saw_the_run():
    """The identical-timing run must still have *collected*."""
    primitives = PrimitiveCollector()
    tracer = Tracer()
    _run(tracer=tracer, primitives=primitives)
    report = primitives.report()
    assert report["chains"]["requests"] > 0
    assert report["keys"]["prism-kv"]["total"] > 0
    assert any(root.end is not None for root in tracer.roots)
