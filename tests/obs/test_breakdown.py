"""Phase attribution: self-time math, parts, aggregation, invariants."""

import pytest

from repro.obs.breakdown import (
    PHASES,
    breakdown,
    breakdown_rows,
    phase_attribution,
)
from repro.obs.trace import Tracer
from repro.prism.backend import BackendConfig
from repro.prism.bluefield import BlueFieldPrismBackend
from repro.prism.engine import Access
from repro.prism.hardware import HardwarePrismBackend, HardwareRdmaBackend
from repro.prism.software import SoftwarePrismBackend, SoftwareRdmaBackend
from repro.sim import Simulator


def _tree(sim):
    """root(10) = a(cpu, 0..4) + b(wire, 4..9) + self 1."""
    tracer = Tracer(sim)
    root = tracer.root("op")
    a = root.child("a", phase="cpu")
    sim._now = 4.0
    a.finish()
    b = root.child("b", phase="wire")
    sim._now = 9.0
    b.finish()
    sim._now = 10.0
    root.finish()
    return root


@pytest.fixture
def clock_sim():
    sim = Simulator()
    assert sim.now == 0.0
    return sim


class TestPhaseAttribution:
    def test_self_time_tiles_exactly(self, clock_sim):
        root = _tree(clock_sim)
        totals = phase_attribution(root)
        assert totals["cpu"] == pytest.approx(4.0)
        assert totals["wire"] == pytest.approx(5.0)
        assert totals["other"] == pytest.approx(1.0)  # root's own gap
        assert sum(totals.values()) == pytest.approx(root.duration)

    def test_parts_refine_a_lump_span(self, clock_sim):
        sim = clock_sim
        tracer = Tracer(sim)
        root = tracer.root("op")
        lump = root.child("nic-op", phase="nic")
        lump.set_parts({"nic": 1.0, "pcie": 2.0})
        sim._now = 3.0
        lump.finish()
        root.finish()
        totals = phase_attribution(root)
        assert totals["nic"] == pytest.approx(1.0)
        assert totals["pcie"] == pytest.approx(2.0)
        assert sum(totals.values()) == pytest.approx(3.0)

    def test_open_subtrees_are_pruned(self, clock_sim):
        """A quorum straggler still running at report time contributes
        nothing (its duration would read the current clock)."""
        sim = clock_sim
        tracer = Tracer(sim)
        root = tracer.root("op")
        straggler = root.child("slow-replica", phase="wire")
        done = straggler.child("finished-grandchild", phase="cpu")
        sim._now = 2.0
        done.finish()
        sim._now = 5.0
        root.finish()  # straggler never finished
        sim._now = 1000.0
        totals = phase_attribution(root)
        assert totals["wire"] == 0.0
        assert totals["cpu"] == 0.0
        assert totals["other"] == pytest.approx(5.0)


class TestBreakdownAggregation:
    def test_groups_by_op_name(self, clock_sim):
        roots = [_tree(clock_sim)]
        report = breakdown(roots)
        assert set(report) == {"op"}
        entry = report["op"]
        assert entry["count"] == 1
        assert entry["mean_us"] == pytest.approx(10.0)
        assert entry["phase_sum_us"] == pytest.approx(10.0)

    def test_unfinished_roots_skipped(self, clock_sim):
        tracer = Tracer(clock_sim)
        tracer.root("open-op")  # never finished
        assert breakdown(tracer.roots) == {}

    def test_rows_omit_empty_phases(self, clock_sim):
        headers, rows = breakdown_rows(breakdown([_tree(clock_sim)]))
        assert "nic_us" not in headers  # no NIC time in this tree
        assert headers[:3] == ["op", "count", "mean_us"]
        assert headers[-1] == "sum_us"
        assert rows[0][0] == "op"


class TestOpTimePartsMirrorsOpTime:
    """op_time keeps the seed's exact arithmetic; op_time_parts must
    split the same total across phases, not re-derive a different one."""

    ACCESSES = [
        Access("r", "host", 512),
        Access("w", "sram", 8),
        Access("r", "host", 8, atomic=True),
        Access("w", "host", 64),
    ]

    @pytest.mark.parametrize("backend_cls", [
        HardwareRdmaBackend, HardwarePrismBackend, SoftwarePrismBackend,
        SoftwareRdmaBackend, BlueFieldPrismBackend,
    ])
    @pytest.mark.parametrize("op_index", [0, 1])
    def test_parts_sum_to_op_time(self, backend_cls, op_index):
        engine = type("EngineStub", (), {})()  # backends set flags on it
        backend = backend_cls(Simulator(), engine, BackendConfig())
        total = backend.op_time(None, self.ACCESSES, op_index=op_index)
        parts = backend.op_time_parts(None, self.ACCESSES,
                                      op_index=op_index)
        assert sum(parts.values()) == pytest.approx(total, rel=1e-12)
        assert set(parts) <= set(PHASES)
        assert backend.execution_phase in PHASES
        assert backend.admission_phase in PHASES
