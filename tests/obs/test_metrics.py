"""Metrics registry: counters, gauges, histograms, label keying."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", host="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("ops")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_absorb_is_idempotent_but_monotone(self):
        counter = MetricsRegistry().counter("bytes")
        counter.absorb(100)
        counter.absorb(100)
        counter.absorb(150)
        assert counter.value == 150
        with pytest.raises(ValueError):
            counter.absorb(10)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == pytest.approx(2.0)


class TestHistogram:
    def test_mean_and_percentile(self):
        hist = MetricsRegistry().histogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean() == pytest.approx(2.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0
        assert hist.percentile(50) == pytest.approx(2.5)

    def test_empty_is_nan(self):
        hist = MetricsRegistry().histogram("lat")
        assert math.isnan(hist.mean())
        assert math.isnan(hist.percentile(99))

    def test_value_summary(self):
        hist = MetricsRegistry().histogram("lat")
        hist.observe(2.0)
        assert hist.value == {"count": 1, "sum": 2.0, "mean": 2.0}


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", host="x")
        b = registry.counter("ops", host="x")
        c = registry.counter("ops", host="y")
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", host="x", service="kv")
        b = registry.counter("ops", service="kv", host="x")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("ops")
        with pytest.raises(ValueError):
            registry.gauge("ops")

    def test_value_shorthand(self):
        registry = MetricsRegistry()
        registry.counter("ops", host="x").inc(7)
        assert registry.value("ops", host="x") == 7
        with pytest.raises(KeyError):
            registry.value("ops", host="missing")

    def test_collect_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc(1)
        registry.gauge("a_gauge", host="x").set(0.5)
        collected = registry.collect()
        assert [name for name, *_rest in collected] == ["a_gauge", "b_total"]
        assert collected[0][1] == {"host": "x"}
        assert collected[0][2] == "gauge"

    def test_format_renders_labels(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", host="s", service="kv").inc(3)
        text = registry.format()
        assert text == 'ops_total{host=s,service=kv} 3'
