"""Span tracer: simulated-clock stamping, nesting, no-op path."""

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from repro.sim import Simulator


class TestSpanNesting:
    def test_spans_stamp_simulated_time(self, sim, drive):
        tracer = sim.set_tracer(Tracer())

        def work():
            with tracer.root("op") as root:
                yield sim.timeout(2.0)
                with root.child("inner", phase="cpu") as inner:
                    yield sim.timeout(3.0)
                yield sim.timeout(1.0)

        drive(sim, work())
        (root,) = tracer.roots
        assert root.start == 0.0
        assert root.end == pytest.approx(6.0)
        assert root.duration == pytest.approx(6.0)
        (inner,) = root.children
        assert inner.parent is root
        assert inner.start == pytest.approx(2.0)
        assert inner.duration == pytest.approx(3.0)
        assert inner.phase == "cpu"

    def test_interleaved_processes_keep_separate_trees(self, sim):
        """Two concurrent operations never share children — the reason
        parents are passed explicitly instead of via a global stack."""
        tracer = sim.set_tracer(Tracer())

        def op(name, delay):
            with tracer.root(name) as root:
                yield sim.timeout(delay)
                with root.child(f"{name}.leaf"):
                    yield sim.timeout(1.0)

        sim.spawn(op("a", 0.5))
        sim.spawn(op("b", 0.25))
        sim.run(until=10)
        trees = {root.name: [c.name for c in root.children]
                 for root in tracer.roots}
        assert trees == {"a": ["a.leaf"], "b": ["b.leaf"]}

    def test_finish_is_idempotent(self, sim):
        tracer = sim.set_tracer(Tracer())
        span = tracer.root("op")
        span.finish()
        end = span.end
        span.finish()
        assert span.end == end

    def test_walk_preorder(self, sim):
        tracer = sim.set_tracer(Tracer())
        root = tracer.root("r")
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [s.name for s in root.walk()] == ["r", "a", "a1", "b"]

    def test_annotate_and_parts(self, sim):
        tracer = sim.set_tracer(Tracer())
        span = tracer.root("op").annotate(key=7)
        span.set_parts({"nic": 0.3, "pcie": 0.7})
        assert span.attrs["key"] == 7
        assert span.parts == {"nic": 0.3, "pcie": 0.7}


class TestNullPath:
    def test_null_span_is_a_fixed_point(self):
        assert NULL_SPAN.child("x", phase="wire") is NULL_SPAN
        assert NULL_SPAN.annotate(a=1) is NULL_SPAN
        assert NULL_SPAN.set_parts({"cpu": 1.0}) is NULL_SPAN
        assert not NULL_SPAN.enabled
        with NULL_SPAN as span:
            assert span is NULL_SPAN
        assert list(NULL_SPAN.walk()) == []

    def test_null_tracer_roots_are_null(self):
        assert NULL_TRACER.root("op") is NULL_SPAN
        assert not NULL_TRACER.enabled
        assert NullTracer().bind(object()) is not None

    def test_simulator_defaults_to_null_tracer(self):
        assert Simulator().tracer is NULL_TRACER

    def test_null_tracer_allocates_nothing(self, sim, drive):
        """The untraced hot path creates no span objects at all."""

        def work():
            span = sim.tracer.root("op")
            with span.child("a", phase="cpu") as child:
                yield sim.timeout(1.0)
                assert child is NULL_SPAN

        drive(sim, work())
        assert sim.tracer.roots == ()


class TestProcessSpans:
    def test_process_lifetimes_recorded(self, sim):
        tracer = sim.set_tracer(Tracer(trace_processes=True))

        def work():
            yield sim.timeout(4.0)

        sim.spawn(work(), name="worker")
        sim.run(until=10)
        (span,) = tracer.process_spans
        assert span.name == "worker"
        assert span.duration == pytest.approx(4.0)

    def test_processes_untracked_by_default(self, sim):
        tracer = sim.set_tracer(Tracer())

        def work():
            yield sim.timeout(1.0)

        sim.spawn(work())
        sim.run(until=10)
        assert tracer.process_spans == []
