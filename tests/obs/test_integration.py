"""End-to-end tracing invariants on a small PRISM-KV run.

Two properties the whole subsystem stands on:

* tracing is *free*: a traced run and an untraced run of the same
  point produce identical results (spans only read the clock);
* the breakdown *reconciles*: per-phase attribution of the measured
  operations sums to the measured mean latency (within the 1%
  acceptance bound; it is exact for sequential systems).
"""

import json

import pytest

from repro.bench.harness import run_point
from repro.bench.tracing import (
    check_breakdown,
    measured_roots,
    run_traced_point,
)
from repro.obs import Tracer, breakdown, phase_attribution
from repro.workload import YCSB_A

POINT = dict(n_keys=400, value_size=128, warmup_us=60.0, measure_us=400.0)


def _workload(index):
    return YCSB_A(400, value_size=128, seed=5, client_id=index)


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    result = run_point("kv", "prism-sw", _workload, 2, tracer=tracer,
                       **POINT)
    return result, tracer


def test_tracing_changes_no_result(traced):
    result, _tracer = traced
    untraced = run_point("kv", "prism-sw", _workload, 2, **POINT)
    assert untraced.ops == result.ops
    assert untraced.mean_latency_us == result.mean_latency_us
    assert untraced.p99_latency_us == result.p99_latency_us
    assert untraced.throughput_ops_per_sec == result.throughput_ops_per_sec


def test_roots_cover_measured_ops(traced):
    result, tracer = traced
    roots = measured_roots(tracer)
    assert len(roots) == result.ops
    assert {root.name for root in roots} == {"op.get", "op.put"}


def test_breakdown_sums_to_total(traced):
    result, tracer = traced
    roots = measured_roots(tracer)
    # exact per-operation tiling: sequential ops sum to their latency
    for root in roots:
        totals = phase_attribution(root)
        assert sum(totals.values()) == pytest.approx(root.duration,
                                                     abs=1e-9)
    report = breakdown(roots)
    weighted = check_breakdown(result, report, tolerance=0.01)
    assert weighted == pytest.approx(result.mean_latency_us, rel=1e-6)


def test_phases_are_meaningfully_populated(traced):
    _result, tracer = traced
    report = breakdown(measured_roots(tracer))
    get = report["op.get"]
    # software PRISM: host CPU executes ops, the wire carries them
    assert get["phases"]["cpu"] > 0.0
    assert get["phases"]["wire"] > 0.0


def test_run_traced_point_writes_chrome_trace(tmp_path):
    path = tmp_path / "kv.json"
    result, report, _tracer = run_traced_point(
        "kv", "prism-sw", _workload, 1, trace_path=str(path), **POINT)
    data = json.loads(path.read_text())
    assert data["traceEvents"]
    check_breakdown(result, report)
