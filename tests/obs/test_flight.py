"""Flight recorder: off by default, bounded, causally attributed.

Three guarantees under test: (1) an armed recorder never perturbs
simulated time and the unarmed path stays a single ``is None`` check;
(2) the ring bound is honest — eviction is visible, not silent; (3)
events land on the right operation: fault injections recorded deep in
the fabric carry the id of the client op whose message they hit, and
retransmissions share a stable ``logical_id`` across fresh request
ids.
"""

from repro.bench.harness import run_point
from repro.obs import FlightRecorder
from repro.sim import Simulator
from repro.workload import YCSB_A, YCSB_C

CLIENTS = 4
KEYS = 400
FAULTS = "seed=3,drop=0.02"


def _workloads(index):
    return YCSB_C(KEYS, zipf=0.9, seed=11, client_id=index)


def _run(**kwargs):
    return run_point("kv", "prism-sw", _workloads, CLIENTS,
                     n_keys=KEYS, warmup_us=100.0, measure_us=500.0,
                     **kwargs)


def test_flight_is_off_by_default():
    assert Simulator().flight is None


def test_flight_does_not_perturb_simulated_time():
    bare = _run()
    recorded = _run(flight=FlightRecorder())
    assert recorded == bare


def test_flight_does_not_perturb_faulted_runs():
    bare = _run(faults=FAULTS)
    recorded = _run(faults=FAULTS, flight=FlightRecorder())
    assert recorded == bare


def test_ops_open_and_close_in_pairs():
    flight = FlightRecorder()
    _run(flight=flight)
    assert flight.ops_opened > 0
    assert flight.ops_closed == flight.ops_opened
    kinds = {event["kind"] for event in flight.events}
    assert {"op.open", "op.close", "req.send", "req.reply"} <= kinds


def test_ring_evicts_oldest_and_keeps_seq_monotone():
    flight = FlightRecorder(capacity=64)
    _run(flight=flight)
    events = flight.events
    assert len(events) == 64
    assert flight.recorded > 64
    assert flight.evicted == flight.recorded - 64
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs)
    # The survivors are exactly the newest `capacity` appends.
    assert seqs[-1] == flight.recorded - 1
    assert seqs[0] == flight.evicted


def test_capacity_must_be_positive():
    import pytest
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_fault_events_carry_the_victim_operation():
    """A drop injected in the fabric lands on the client op whose
    message was hit — the whole point of context inheritance."""
    flight = FlightRecorder()
    _run(faults=FAULTS, flight=flight)
    drops = [e for e in flight.events if e["kind"] == "fault.drop"]
    assert drops, "the seeded plan should have dropped something"
    open_ops = {e["op"] for e in flight.events if e["kind"] == "op.open"}
    attributed = [e for e in drops if e["op"] in open_ops]
    assert attributed, "drops should attribute to real client ops"
    # And the op whose message was dropped should show the recovery arc
    # in its own story: a timeout then a fresh send, same logical id.
    victim = attributed[0]
    story = [e for e in flight.events if e["op"] == victim["op"]]
    logicals = [e.get("logical") for e in story
                if e["kind"] == "req.send"]
    assert victim["logical"] in logicals


def test_retransmissions_share_a_logical_id():
    flight = FlightRecorder()
    _run(faults=FAULTS, flight=flight)
    sends = [e for e in flight.events if e["kind"] == "req.send"]
    by_logical = {}
    for event in sends:
        by_logical.setdefault(event["logical"], []).append(event["req"])
    retried = {logical: reqs for logical, reqs in by_logical.items()
               if len(reqs) > 1}
    assert retried, "a 2% drop plan must force some retransmission"
    for reqs in retried.values():
        # Fresh per-attempt request ids under one stable logical id.
        assert len(set(reqs)) == len(reqs)


def test_crash_events_are_global():
    flight = FlightRecorder()
    run_point("rs", "prism-sw",
              lambda i: YCSB_A(KEYS, zipf=0.9, seed=17, client_id=i),
              CLIENTS, n_keys=KEYS, warmup_us=100.0, measure_us=500.0,
              faults="seed=5,crash=replica1@200+150", flight=flight)
    kinds = {e["kind"]: e for e in flight.events}
    assert "fault.crash" in kinds
    assert "fault.recover" in kinds
    # call_at callbacks run outside any process: no op to blame.
    assert kinds["fault.crash"]["op"] is None
    assert kinds["fault.crash"]["host"] == "replica1"
    assert kinds["fault.recover"]["host"] == "replica1"


def test_dump_round_trips(tmp_path):
    from repro.obs import load_flight_dump
    flight = FlightRecorder(capacity=256)
    _run(flight=flight)
    path = flight.dump(tmp_path / "flight.json")
    loaded = load_flight_dump(path)
    assert loaded == flight.to_dict()
    assert loaded["capacity"] == 256
    assert loaded["evicted"] == loaded["recorded"] - len(loaded["events"])
