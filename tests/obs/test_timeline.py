"""Utilization accounting invariants.

The monitors integrate piecewise-constant state on the simulated
clock, so every quantity here is exact (float rounding aside), not
statistical: busy + idle must equal the elapsed window times capacity,
window sums must equal run totals, and counter pairs must reconcile.
"""

import pytest

from repro.bench.harness import run_point
from repro.obs import UtilizationCollector
from repro.obs.timeline import DEFAULT_WINDOW_US
from repro.sim import Simulator
from repro.sim.resources import BandwidthPipe, Resource
from repro.workload import YCSB_C


def _collector(sim, window_us=10.0):
    return sim.set_utilization(UtilizationCollector(window_us=window_us))


def _hold(sim, resource, duration):
    yield resource.acquire()
    yield sim.timeout(duration)
    resource.release()


def _contended_run(sim):
    """One capacity-1 resource, two overlapping holders.

    A holds [0, 15); B arrives at 5, waits 10 in queue, holds [15, 25).
    """
    collector = _collector(sim)
    resource = Resource(sim, capacity=1, name="box", kind="cpu")

    def parent():
        first = sim.spawn(_hold(sim, resource, 15))
        yield sim.timeout(5)
        second = sim.spawn(_hold(sim, resource, 10))
        yield first
        yield second

    sim.run_until_complete(sim.spawn(parent()))
    collector.finish(sim.now)
    return collector, resource.monitor


class TestResourceMonitor:
    def test_busy_plus_idle_equals_elapsed_times_capacity(self, sim):
        collector, monitor = _contended_run(sim)
        elapsed = collector.elapsed
        busy = monitor.busy_between(0.0, elapsed)
        idle = elapsed * monitor.capacity - busy
        assert busy == pytest.approx(25.0)
        assert busy + idle == pytest.approx(elapsed * monitor.capacity)
        assert idle >= 0.0

    def test_busy_never_exceeds_wall_times_capacity(self, sim):
        collector, monitor = _contended_run(sim)
        elapsed = collector.elapsed
        assert monitor.busy_us <= elapsed * monitor.capacity + 1e-9
        for window in monitor.windows:
            assert window.busy_us <= window.width * monitor.capacity + 1e-9

    def test_window_sums_equal_run_totals(self, sim):
        _, monitor = _contended_run(sim)
        assert sum(w.busy_us for w in monitor.windows) == \
            pytest.approx(monitor.busy_us)
        assert sum(w.depth_time_us for w in monitor.windows) == \
            pytest.approx(monitor.depth_time_us)
        assert sum(w.events for w in monitor.windows) == monitor.events

    def test_windows_tile_the_run(self, sim):
        collector, monitor = _contended_run(sim)
        assert monitor.windows[0].start == 0.0
        assert monitor.windows[-1].end == collector.elapsed
        for left, right in zip(monitor.windows, monitor.windows[1:]):
            assert left.end == right.start

    def test_counters_reconcile(self, sim):
        _, monitor = _contended_run(sim)
        # Everything finished: every request was granted and released,
        # and every enqueue was matched by a dequeue.
        assert monitor.requests == 2
        assert monitor.grants == monitor.requests
        assert monitor.releases == monitor.grants
        assert monitor.enqueues == 1
        assert monitor.dequeues == monitor.enqueues
        assert monitor._depth == 0
        assert monitor._in_use == 0

    def test_queue_depth_integral_and_delays(self, sim):
        _, monitor = _contended_run(sim)
        # B queued from t=5 to t=15: depth 1 for 10 µs.
        assert monitor.depth_time_us == pytest.approx(10.0)
        assert monitor.max_depth == 1
        assert sorted(monitor.queue_delays) == [0.0, 10.0]

    def test_measurement_window_attribution(self, sim):
        collector, monitor = _contended_run(sim)
        # [0, 25] fully busy; any sub-window of a fully-busy region
        # attributes proportionally to exactly its width.
        assert monitor.busy_between(5.0, 20.0) == pytest.approx(15.0)
        assert monitor.utilization(5.0, 20.0) == pytest.approx(1.0)
        report = collector.report(start=5.0, end=20.0)
        assert report[0]["utilization"] == pytest.approx(1.0)
        # Partial windows attribute proportionally: the [0,10) window
        # holds 5 µs of depth-time, half of which lands in [5,10).
        assert report[0]["queue"]["mean_depth"] == pytest.approx(
            monitor.depth_time_between(5.0, 20.0) / 15.0)
        assert monitor.depth_time_between(5.0, 20.0) == pytest.approx(7.5)

    def test_uncontended_acquire_has_zero_delay(self, sim):
        collector = _collector(sim)
        resource = Resource(sim, capacity=2, name="wide", kind="nic")
        sim.run_until_complete(sim.spawn(_hold(sim, resource, 4)))
        collector.finish(sim.now)
        monitor = resource.monitor
        assert monitor.queue_delays == [0.0]
        assert monitor.busy_us == pytest.approx(4.0)
        # Two slots, one busy: utilization is halved.
        assert monitor.utilization(0.0, 4.0) == pytest.approx(0.5)


class TestChargeAndDepthMonitors:
    def test_charge_monitor_accumulates(self, sim):
        collector = _collector(sim)
        monitor = collector.charge_monitor("dma", kind="pcie", capacity=2)
        monitor.charge(3.0, events=1, units=512)
        monitor.charge(5.0, events=1, units=1024)
        monitor.count(events=4, units=64)
        collector.finish(10.0)
        assert monitor.busy_us == pytest.approx(8.0)
        assert monitor.events == 6
        assert monitor.units == 512 + 1024 + 64
        assert monitor.utilization(0.0, 10.0) == pytest.approx(8.0 / 20.0)

    def test_depth_monitor_reconciles(self, sim):
        collector = _collector(sim)
        monitor = collector.depth_monitor("inflight", kind="channel")

        def traffic():
            monitor.adjust(+1)
            yield sim.timeout(4)
            monitor.adjust(+1)
            yield sim.timeout(2)
            monitor.adjust(-1)
            monitor.adjust(-1)

        sim.run_until_complete(sim.spawn(traffic()))
        collector.finish(sim.now)
        assert monitor.enters == 2
        assert monitor.exits == 2
        assert monitor.enters - monitor.exits == monitor._depth
        # depth 1 over [0,4), depth 2 over [4,6).
        assert monitor.depth_time_us == pytest.approx(4.0 + 2 * 2.0)
        assert monitor.max_depth == 2
        # No capacity ceiling: utilization is undefined, not a number.
        assert monitor.utilization(0.0, 6.0) is None

    def test_wire_port_reports_bytes(self, sim):
        collector = _collector(sim)
        pipe = BandwidthPipe(sim, bytes_per_us=100.0, name="host.tx")

        def send():
            yield from pipe.transmit(500)

        sim.run_until_complete(sim.spawn(send()))
        collector.finish(sim.now)
        row = collector.report()[0]
        assert row["name"] == "host.tx.port"
        assert row["kind"] == "wire"
        assert row["bytes"] == 500
        assert row["messages"] == 1


class TestDeterminism:
    def test_monitored_run_is_bit_identical(self):
        def workload(keys):
            return lambda i: YCSB_C(keys, seed=11, client_id=i)

        plain = run_point("kv", "prism-sw", workload(200), 2, n_keys=200)
        monitored = run_point("kv", "prism-sw", workload(200), 2,
                              n_keys=200,
                              utilization=UtilizationCollector())
        assert plain == monitored

    def test_no_collector_means_no_monitor(self, sim):
        resource = Resource(sim, name="bare")
        assert resource.monitor is None
        assert sim.utilization is None

    def test_default_window(self):
        sim = Simulator()
        collector = sim.set_utilization(UtilizationCollector())
        assert collector.window_us == DEFAULT_WINDOW_US
        resource = Resource(sim, name="auto")
        assert resource.monitor in collector.monitors
