"""Forensics: timelines, segment reconciliation, and diagnoses.

The load-bearing contract is the same one critpath keeps: the labeled
segments of every operation's timeline tile its duration exactly, so
their sum equals the measured latency. On top of that, every
anomalous request (aborted / timed out / exhausted) must get at least
one concrete *cause* — the acceptance bar for the ``explain`` report.
"""

import math

import pytest

from repro.bench.harness import run_point
from repro.obs import FlightRecorder
from repro.obs.forensics import (
    crash_windows,
    diagnose,
    explain_lines,
    is_anomalous,
    narrate,
    reconcile,
    segment_totals,
    segments,
    timelines,
    worst_requests,
)
from repro.workload import YCSB_A

CLIENTS = 4
KEYS = 300


@pytest.fixture(scope="module")
def chaos_flight():
    """One seeded chaos run shared by the module's assertions."""
    flight = FlightRecorder()
    result = run_point(
        "rs", "prism-sw",
        lambda i: YCSB_A(KEYS, zipf=0.9, seed=17, client_id=i),
        CLIENTS, n_keys=KEYS, warmup_us=100.0, measure_us=800.0,
        faults="seed=3,drop=0.02", flight=flight)
    return flight, result


def test_every_timeline_reconciles(chaos_flight):
    flight, _ = chaos_flight
    by_op, _ = timelines(flight.events)
    assert by_op
    for timeline in by_op.values():
        reconcile(timeline)


def test_segments_tile_without_gaps_or_overlap(chaos_flight):
    flight, _ = chaos_flight
    by_op, _ = timelines(flight.events)
    timeline = max(by_op.values(),
                   key=lambda tl: len(tl["events"]))
    segs = segments(timeline)
    cursor = timeline["start"]
    for seg in segs:
        assert seg["from"] == cursor
        assert seg["to"] > seg["from"]
        cursor = seg["to"]
    assert cursor == timeline["end"]


def test_every_anomalous_request_gets_a_cause(chaos_flight):
    """The acceptance bar: no anomaly goes unexplained."""
    flight, _ = chaos_flight
    by_op, global_events = timelines(flight.events)
    windows = crash_windows(global_events)
    anomalies = [tl for tl in by_op.values() if is_anomalous(tl)]
    assert anomalies, "a 2% drop plan must produce some anomalies"
    for timeline in anomalies:
        diag = diagnose(timeline, windows)
        assert diag["causes"], f"op #{timeline['op']} has no cause"


def test_worst_requests_put_anomalies_first(chaos_flight):
    flight, _ = chaos_flight
    by_op, _ = timelines(flight.events)
    picked = worst_requests(by_op, top=5)
    flags = [is_anomalous(tl) for tl in picked]
    # Once the anomalies end, no later entry is anomalous.
    assert flags == sorted(flags, reverse=True)
    assert len(picked) >= 5


def test_explain_lines_name_the_injected_faults(chaos_flight):
    flight, _ = chaos_flight
    text = "\n".join(explain_lines(flight, top=3))
    assert "injected message drop" in text
    assert "ack timeout" in text
    assert "sum" in text and "= measured" in text


def test_explain_on_clean_run_reports_nothing_anomalous():
    flight = FlightRecorder()
    run_point("kv", "prism-sw",
              lambda i: YCSB_A(KEYS, zipf=0.0, seed=11, client_id=i),
              2, n_keys=KEYS, warmup_us=100.0, measure_us=400.0,
              flight=flight)
    lines = explain_lines(flight, top=2)
    assert any("anomalous requests (aborted/timed-out/unfinished): 0"
               in line for line in lines)


# -- synthetic units -------------------------------------------------------


def _ev(seq, t, op, kind, **fields):
    return {"seq": seq, "t": t, "op": op, "kind": kind, **fields}


def test_segment_labels_from_synthetic_story():
    events = [
        _ev(0, 0.0, 7, "op.open", name="op.put", client=1),
        _ev(1, 1.0, 7, "req.send", logical=5, req=10),
        _ev(2, 4.0, 7, "fault.drop", msg=99, logical=5),
        _ev(3, 9.0, 7, "req.timeout", logical=5, req=10, timeout_us=8.0),
        _ev(4, 9.0, 7, "req.backoff", logical=5, attempt=1,
            backoff_us=2.0),
        _ev(5, 11.0, 7, "req.send", logical=5, req=11),
        _ev(6, 14.0, 7, "req.reply", logical=5, req=11, ok=True),
        _ev(7, 15.0, 7, "op.close", status="ok", latency_us=15.0,
            retries=1, aborts=0, measured=True),
    ]
    by_op, global_events = timelines(events)
    assert global_events == []
    timeline = by_op[7]
    assert timeline["kind"] == "op.put"
    assert not timeline["truncated"] and not timeline["unfinished"]
    totals = segment_totals(timeline)
    # 0->1 client, 1->4 inflight (drop), 4->9 timeout, 9->11 backoff,
    # 11->14 inflight (reply), 14->15 client.
    assert totals == {"client": 2.0, "inflight": 6.0, "timeout": 5.0,
                      "backoff": 2.0}
    assert reconcile(timeline) == 15.0
    diag = diagnose(timeline)
    assert any("drop" in c for c in diag["causes"])
    assert any("timeout" in c for c in diag["causes"])
    assert is_anomalous(timeline)


def test_truncated_and_unfinished_timelines():
    # op 3 lost its op.open to eviction; op 4 never closed.
    events = [
        _ev(10, 5.0, 3, "req.send", logical=1, req=1),
        _ev(11, 8.0, 3, "req.reply", logical=1, req=1, ok=True),
        _ev(12, 8.5, 3, "op.close", status="ok", latency_us=4.0),
        _ev(13, 9.0, 4, "op.open", name="op.get", client=0),
        _ev(14, 9.5, 4, "req.send", logical=2, req=2),
    ]
    by_op, _ = timelines(events)
    assert by_op[3]["truncated"] and not by_op[3]["unfinished"]
    assert by_op[4]["unfinished"] and not by_op[4]["truncated"]
    assert by_op[4]["status"] == "unfinished"
    assert is_anomalous(by_op[4])
    assert any("truncated" in c for c in diagnose(by_op[3])["causes"])
    assert any("never completed" in c for c in diagnose(by_op[4])["causes"])
    # Truncated/unfinished ops reconcile against end - start.
    reconcile(by_op[3])
    reconcile(by_op[4])


def test_crash_windows_pair_and_diagnose_overlap():
    global_events = [
        _ev(0, 100.0, None, "fault.crash", host="replica1"),
        _ev(1, 250.0, None, "fault.recover", host="replica1"),
        _ev(2, 400.0, None, "fault.crash", host="server"),
    ]
    windows = crash_windows(global_events)
    assert windows == [("replica1", 100.0, 250.0),
                      ("server", 400.0, math.inf)]
    events = [
        _ev(3, 120.0, 9, "op.open", name="op.put", client=2),
        _ev(4, 130.0, 9, "fault.crash_drop", msg=7, host="replica1"),
        _ev(5, 140.0, 9, "op.close", status="aborted", latency_us=20.0),
    ]
    by_op, _ = timelines(events)
    diag = diagnose(by_op[9], windows)
    assert any("crashed host replica1" in c for c in diag["causes"])
    assert any("crash window of replica1" in c for c in diag["causes"])
    assert not any("server" in c and "crash window" in c
                   for c in diag["causes"])


def test_narrate_truncates_long_timelines():
    events = [_ev(0, 0.0, 1, "op.open", name="op.get", client=0)]
    events += [_ev(i, float(i), 1, "req.send", logical=i, req=i)
               for i in range(1, 40)]
    events.append(_ev(40, 40.0, 1, "op.close", status="ok",
                      latency_us=40.0))
    by_op, _ = timelines(events)
    lines = narrate(by_op[1], max_events=10)
    assert any("more events" in line for line in lines)
