"""SEND/RECV verbs: delivery, ordering, RNR flow control."""

import pytest

from repro.core.errors import RemoteNak
from repro.net.topology import DIRECT, make_fabric
from repro.prism import HardwarePrismBackend, PrismServer
from repro.rdma.verbs import ReceiveEndpoint, SendEndpoint
from repro.sim import Simulator


@pytest.fixture
def system(sim):
    fabric = make_fabric(sim, DIRECT, ["client", "client2", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend)
    receiver = ReceiveEndpoint(sim, server, buffer_size=128,
                               buffer_count=4)
    sender = SendEndpoint(sim, fabric, "client", "server")
    return fabric, server, receiver, sender


def test_send_lands_in_posted_buffer(sim, system, drive):
    fabric, server, receiver, sender = system
    def main():
        yield from sender.send(b"hello receiver")
        completion = yield receiver.recv()
        data = server.space.read(completion.buffer_addr, completion.length)
        return completion.sender, data
    sender_name, data = drive(sim, main())
    assert sender_name == "client"
    assert data == b"hello receiver"


def test_messages_delivered_in_order(sim, system, drive):
    fabric, server, receiver, sender = system
    def main():
        for i in range(3):
            yield from sender.send(bytes([i]) * 8)
        got = []
        for _ in range(3):
            completion = yield receiver.recv()
            got.append(server.space.read(completion.buffer_addr, 1))
        return got
    assert drive(sim, main()) == [b"\x00", b"\x01", b"\x02"]


def test_rnr_when_no_buffers(sim, system, drive):
    fabric, server, receiver, sender = system
    def main():
        for _ in range(4):  # consume every posted buffer
            yield from sender.send(b"fill")
        with pytest.raises(RemoteNak, match="receiver not ready"):
            yield from sender.send(b"overflow")
        return receiver.rnr_naks
    assert drive(sim, main()) == 1


def test_reposting_restores_flow(sim, system, drive):
    fabric, server, receiver, sender = system
    def main():
        for _ in range(4):
            yield from sender.send(b"x")
        completion = yield receiver.recv()
        receiver.post_receive(completion.buffer_addr)
        yield from sender.send(b"after repost")
        return True
    assert drive(sim, main())


def test_oversized_send_rejected(sim, system, drive):
    fabric, server, receiver, sender = system
    def main():
        with pytest.raises(RemoteNak):
            yield from sender.send(b"z" * 129)
        return True
    assert drive(sim, main())


def test_two_senders_interleave(sim, system):
    fabric, server, receiver, sender = system
    sender2 = SendEndpoint(sim, fabric, "client2", "server")
    def producer(endpoint, tag):
        yield from endpoint.send(tag)
    sim.spawn(producer(sender, b"from-1"))
    sim.spawn(producer(sender2, b"from-2"))
    senders = set()
    def consumer():
        for _ in range(2):
            completion = yield receiver.recv()
            senders.add(completion.sender)
    process = sim.spawn(consumer())
    sim.run_until_complete(process, limit=1e6)
    assert senders == {"client", "client2"}


def test_send_faster_than_rpc(sim, system):
    """SEND is NIC-to-NIC: cheaper than an RPC round trip."""
    fabric, server, receiver, sender = system
    from repro.rpc.erpc import RpcClient, RpcServer
    rpc_server = RpcServer(sim, fabric, "server")
    rpc_server.register("noop", lambda args: (None, 8))
    rpc_client = RpcClient(sim, fabric, "client")
    times = {}
    def main():
        start = sim.now
        yield from sender.send(b"fast path")
        times["send"] = sim.now - start
        start = sim.now
        yield from rpc_client.call("server", "noop", None, 9)
        times["rpc"] = sim.now - start
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert times["send"] < times["rpc"]
