"""Memory region registration and rkey checks."""

import pytest

from repro.core.errors import AccessViolation
from repro.rdma.mr import AccessFlags, MemoryRegion, MemoryRegionTable


@pytest.fixture
def table():
    return MemoryRegionTable()


def test_register_returns_unique_rkeys(table):
    a = table.register(0x1000, 64)
    b = table.register(0x2000, 64)
    assert a != b


def test_empty_region_rejected(table):
    with pytest.raises(AccessViolation):
        table.register(0x1000, 0)


def test_unknown_rkey(table):
    with pytest.raises(AccessViolation, match="unknown rkey"):
        table.check(0x1000, 8, 0xDEAD, AccessFlags.READ)


def test_check_within_bounds(table):
    rkey = table.register(0x1000, 64)
    region = table.check(0x1000, 64, rkey, AccessFlags.READ)
    assert region.rkey == rkey


def test_check_out_of_bounds(table):
    rkey = table.register(0x1000, 64)
    with pytest.raises(AccessViolation):
        table.check(0x1000 + 60, 8, rkey, AccessFlags.READ)
    with pytest.raises(AccessViolation):
        table.check(0xFF8, 8, rkey, AccessFlags.READ)


def test_permission_enforcement(table):
    rkey = table.register(0x1000, 64, AccessFlags.READ)
    table.check(0x1000, 8, rkey, AccessFlags.READ)
    with pytest.raises(AccessViolation, match="lacks"):
        table.check(0x1000, 8, rkey, AccessFlags.WRITE)
    with pytest.raises(AccessViolation):
        table.check(0x1000, 8, rkey, AccessFlags.ATOMIC)


def test_combined_permissions(table):
    rkey = table.register(0x1000, 64, AccessFlags.READ | AccessFlags.WRITE)
    table.check(0x1000, 8, rkey, AccessFlags.READ | AccessFlags.WRITE)
    with pytest.raises(AccessViolation):
        table.check(0x1000, 8, rkey, AccessFlags.ALL)


def test_deregister(table):
    rkey = table.register(0x1000, 64)
    table.deregister(rkey)
    with pytest.raises(AccessViolation):
        table.check(0x1000, 8, rkey, AccessFlags.READ)
    table.deregister(rkey)  # idempotent


def test_region_covers():
    region = MemoryRegion(1, 100, 50, AccessFlags.ALL)
    assert region.covers(100, 50)
    assert region.covers(149, 1)
    assert not region.covers(99, 1)
    assert not region.covers(149, 2)
    assert region.end == 150


def test_overlapping_regions_have_independent_rkeys(table):
    a = table.register(0x1000, 128)
    b = table.register(0x1040, 128)
    table.check(0x1050, 8, a, AccessFlags.READ)
    table.check(0x1050, 8, b, AccessFlags.READ)
    with pytest.raises(AccessViolation):
        table.check(0x1000, 8, b, AccessFlags.READ)
