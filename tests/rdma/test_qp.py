"""Queue pairs (free lists) and completion queues."""

import pytest

from repro.core.errors import AllocationFailure, RemoteNak
from repro.rdma.qp import CompletionQueue, QueuePair


class TestQueuePair:
    def test_post_pop_fifo(self):
        qp = QueuePair(buffer_size=64)
        qp.post_many([100, 200, 300])
        assert qp.pop() == 100
        assert qp.pop() == 200
        assert len(qp) == 1

    def test_pop_empty_raises_allocation_failure(self):
        qp = QueuePair(buffer_size=64)
        with pytest.raises(AllocationFailure):
            qp.pop()

    def test_counters(self):
        qp = QueuePair(buffer_size=64)
        qp.post(1)
        qp.post(2)
        qp.pop()
        assert qp.total_posted == 2
        assert qp.total_popped == 1

    def test_would_satisfy(self):
        qp = QueuePair(buffer_size=64)
        assert qp.would_satisfy(64)
        assert qp.would_satisfy(0)
        assert not qp.would_satisfy(65)

    def test_unique_ids(self):
        assert QueuePair(8).id != QueuePair(8).id


class TestCompletionQueue:
    def test_push_poll_fifo(self):
        cq = CompletionQueue()
        cq.push("a")
        cq.push("b")
        assert cq.poll() == "a"
        assert cq.poll() == "b"
        assert cq.poll() is None

    def test_capacity_overflow(self):
        cq = CompletionQueue(capacity=1)
        cq.push("a")
        with pytest.raises(RemoteNak, match="overflow"):
            cq.push("b")

    def test_len(self):
        cq = CompletionQueue()
        cq.push(1)
        assert len(cq) == 1
