"""Server observability snapshots."""

import pytest

from repro.net.topology import DIRECT, make_fabric
from repro.obs.metrics import MetricsRegistry
from repro.prism import HardwarePrismBackend, PrismClient, PrismServer
from repro.prism.stats import (
    bottleneck,
    collect_server_metrics,
    format_report,
    server_report,
)


@pytest.fixture
def loaded_server(sim):
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend)
    addr, rkey = server.add_region(4096)
    server.create_freelist(64, 8)
    client = PrismClient(sim, fabric, "client", server)

    def traffic():
        for _ in range(10):
            yield from client.read(addr, 512, rkey=rkey)

    sim.run_until_complete(sim.spawn(traffic()), limit=1e6)
    return server


def test_report_counts(sim, loaded_server):
    report = server_report(loaded_server, sim.now)
    assert report["requests"] == 10
    assert report["engine_ops"] == 10
    assert report["connections"] == 1
    assert 0.0 < report["tx_utilization"] < 1.0
    assert report["tx_bytes"] > 10 * 512
    assert len(report["freelists"]) == 1


def test_rx_bytes_counts_received_traffic(sim, loaded_server):
    """Regression: rx_bytes must be the server's *received* bytes (the
    RX pipe's own total), not a copy of anything TX-related."""
    host = loaded_server.fabric.host(loaded_server.host_name)
    report = server_report(loaded_server, sim.now)
    assert report["rx_bytes"] == host.rx.bytes_total
    assert report["tx_bytes"] == host.tx.bytes_total
    # 10 READ requests in, 10 512 B replies out: both sides saw traffic
    # and the reply stream dwarfs the request stream.
    assert report["rx_bytes"] > 0
    assert report["tx_bytes"] > report["rx_bytes"]
    # deprecated alias still answers during the migration
    assert host.rx.bytes_sent == host.rx.bytes_total


def test_collect_server_metrics_registry(sim, loaded_server):
    registry = collect_server_metrics(loaded_server, sim.now)
    labels = {"host": "server", "backend": loaded_server.backend.label,
              "service": "prism"}
    assert registry.value("prism_requests_total", **labels) == 10
    assert registry.value("prism_engine_ops_total", **labels) == 10
    assert 0.0 < registry.value("prism_tx_utilization", **labels) < 1.0
    # repeated collection into the same registry is idempotent
    collect_server_metrics(loaded_server, sim.now, registry)
    assert registry.value("prism_requests_total", **labels) == 10
    assert "prism_rx_bytes_total" in registry.format()


def test_server_report_is_a_view_over_the_registry(sim, loaded_server):
    registry = MetricsRegistry()
    report = server_report(loaded_server, sim.now, registry)
    labels = {"host": "server", "backend": loaded_server.backend.label,
              "service": "prism"}
    assert report["requests"] == registry.value("prism_requests_total",
                                                **labels)
    assert report["rx_bytes"] == registry.value("prism_rx_bytes_total",
                                                **labels)


def test_bottleneck_heuristics():
    base = {"backend_utilization": 0.1, "rx_utilization": 0.1,
            "tx_utilization": 0.1, "freelists": {}}
    assert bottleneck(base) == "load"
    assert bottleneck({**base, "backend_utilization": 0.95}) == "compute"
    assert bottleneck({**base, "rx_utilization": 0.9}) == "rx-wire"
    assert bottleneck({**base, "tx_utilization": 0.9}) == "tx-wire"
    starved = {**base, "freelists": {1: {"name": "x", "free": 0,
                                         "popped": 5, "posted": 5}}}
    assert bottleneck(starved) == "buffers"


def test_format_report_renders(sim, loaded_server):
    text = format_report(server_report(loaded_server, sim.now))
    assert "server server" in text
    assert "bottleneck guess" in text
    assert "freelist" in text
