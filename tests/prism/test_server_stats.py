"""Server observability snapshots."""

import pytest

from repro.net.topology import DIRECT, make_fabric
from repro.prism import HardwarePrismBackend, PrismClient, PrismServer
from repro.prism.stats import bottleneck, format_report, server_report


@pytest.fixture
def loaded_server(sim):
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend)
    addr, rkey = server.add_region(4096)
    server.create_freelist(64, 8)
    client = PrismClient(sim, fabric, "client", server)

    def traffic():
        for _ in range(10):
            yield from client.read(addr, 512, rkey=rkey)

    sim.run_until_complete(sim.spawn(traffic()), limit=1e6)
    return server


def test_report_counts(sim, loaded_server):
    report = server_report(loaded_server, sim.now)
    assert report["requests"] == 10
    assert report["engine_ops"] == 10
    assert report["connections"] == 1
    assert 0.0 < report["tx_utilization"] < 1.0
    assert report["tx_bytes"] > 10 * 512
    assert len(report["freelists"]) == 1


def test_bottleneck_heuristics():
    base = {"backend_utilization": 0.1, "rx_utilization": 0.1,
            "tx_utilization": 0.1, "freelists": {}}
    assert bottleneck(base) == "load"
    assert bottleneck({**base, "backend_utilization": 0.95}) == "compute"
    assert bottleneck({**base, "rx_utilization": 0.9}) == "rx-wire"
    assert bottleneck({**base, "tx_utilization": 0.9}) == "tx-wire"
    starved = {**base, "freelists": {1: {"name": "x", "free": 0,
                                         "popped": 5, "posted": 5}}}
    assert bottleneck(starved) == "buffers"


def test_format_report_renders(sim, loaded_server):
    text = format_report(server_report(loaded_server, sim.now))
    assert "server server" in text
    assert "bottleneck guess" in text
    assert "freelist" in text
