"""The NIC posting gate (§3.2 reader/writer synchronization)."""

import pytest

from repro.prism.backend import PostingGate


def test_reads_flow_when_not_posting(sim, drive):
    gate = PostingGate(sim)
    def main():
        yield from gate.enter()
        gate.exit()
        return sim.now
    assert drive(sim, main()) == 0.0


def test_drain_waits_for_executing_ops(sim):
    gate = PostingGate(sim)
    order = []

    def op():
        yield from gate.enter()
        yield sim.timeout(10)
        gate.exit()
        order.append(("op", sim.now))

    def poster():
        yield sim.timeout(1)
        yield from gate.drain()
        order.append(("drained", sim.now))
        gate.release()

    sim.spawn(op())
    sim.spawn(poster())
    sim.run()
    assert order == [("op", 10.0), ("drained", 10.0)]


def test_new_ops_stall_during_posting(sim):
    gate = PostingGate(sim)
    order = []

    def poster():
        yield from gate.drain()
        order.append(("posting", sim.now))
        yield sim.timeout(5)
        gate.release()
        order.append(("released", sim.now))

    def late_op():
        yield sim.timeout(1)
        yield from gate.enter()
        order.append(("op_started", sim.now))
        gate.exit()

    sim.spawn(poster())
    sim.spawn(late_op())
    sim.run()
    assert order == [("posting", 0.0), ("released", 5.0),
                     ("op_started", 5.0)]


def test_posters_serialize(sim):
    gate = PostingGate(sim)
    order = []

    def poster(tag, hold):
        yield from gate.drain()
        order.append((tag, "in", sim.now))
        yield sim.timeout(hold)
        gate.release()

    sim.spawn(poster("a", 4))
    sim.spawn(poster("b", 4))
    sim.run()
    assert order == [("a", "in", 0.0), ("b", "in", 4.0)]


def test_drain_does_not_count_queued_ops(sim):
    """Ops blocked at enter() are not 'executing': the drain completes
    without waiting for them (that is what keeps posting O(pipeline)
    rather than O(queue))."""
    gate = PostingGate(sim)
    stamps = {}

    def running_op():
        yield from gate.enter()
        yield sim.timeout(3)
        gate.exit()

    def poster():
        yield sim.timeout(1)
        yield from gate.drain()
        stamps["drained"] = sim.now
        yield sim.timeout(10)  # slow post
        gate.release()

    def queued_op():
        yield sim.timeout(2)  # arrives while poster is waiting/posting
        yield from gate.enter()
        stamps["queued_started"] = sim.now
        gate.exit()

    sim.spawn(running_op())
    sim.spawn(poster())
    sim.spawn(queued_op())
    sim.run()
    assert stamps["drained"] == 3.0       # waited only for running_op
    assert stamps["queued_started"] == 13.0  # after release


def test_interleaved_enters_exits(sim):
    gate = PostingGate(sim)
    done = []

    def op(start, hold, tag):
        yield sim.timeout(start)
        yield from gate.enter()
        yield sim.timeout(hold)
        gate.exit()
        done.append(tag)

    def poster():
        yield sim.timeout(2)
        yield from gate.drain()
        gate.release()
        done.append("posted")

    for i in range(3):
        sim.spawn(op(i * 1.0, 4.0, f"op{i}"))
    sim.spawn(poster())
    sim.run()
    assert set(done) == {"op0", "op1", "op2", "posted"}
    # The poster drained after ops 0-2 (all entered before the drain).
    assert done.index("posted") >= 1
