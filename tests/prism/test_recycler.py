"""Buffer recycling: client batching, daemon reposting, safety."""

import pytest

from repro.net.topology import DIRECT, make_fabric
from repro.prism import HardwarePrismBackend, PrismClient, PrismServer
from repro.prism.recycler import RecyclerClient, RecyclerDaemon
from repro.rpc.erpc import RpcClient, RpcServer


@pytest.fixture
def system(sim):
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend)
    rpc_server = RpcServer(sim, fabric, "server")
    daemon = RecyclerDaemon(sim, server, rpc_server, batch_size=4,
                            scan_interval_us=10.0)
    rpc_client = RpcClient(sim, fabric, "client")
    return fabric, server, daemon, rpc_client


def test_retire_batches_until_threshold(sim, system):
    fabric, server, daemon, rpc_client = system
    recycler = RecyclerClient(rpc_client, "server", batch_size=3)
    assert recycler.retire(1, 100) is None
    assert recycler.retire(1, 101) is None
    flush = recycler.retire(1, 102)
    assert flush is not None  # batch full: caller must run the flush


def test_end_to_end_recycling(sim, system):
    fabric, server, daemon, rpc_client = system
    freelist, rkey = server.create_freelist(64, 4)
    qp = server.freelist(freelist)
    addrs = [qp.pop() for _ in range(4)]
    assert len(qp) == 0
    recycler = RecyclerClient(rpc_client, "server", batch_size=2)

    def main():
        for addr in addrs:
            flush = recycler.retire(freelist, addr)
            if flush is not None:
                yield from flush
        yield sim.timeout(100)  # let the daemon scan and repost

    sim.run_until_complete(sim.spawn(main()), limit=1e5)
    assert len(qp) == 4
    assert daemon.buffers_recycled == 4
    # FIFO order preserved through the recycling path.
    assert qp.pop() == addrs[0]


def test_recycled_buffer_usable_by_allocate(sim, system, drive):
    fabric, server, daemon, rpc_client = system
    freelist, rkey = server.create_freelist(64, 1)
    client = PrismClient(sim, fabric, "client", server)
    recycler = RecyclerClient(rpc_client, "server", batch_size=1)

    def main():
        first = yield from client.allocate(freelist, b"one", rkey=rkey)
        flush = recycler.retire(freelist, first)
        yield from flush
        yield sim.timeout(50)  # daemon scan interval
        second = yield from client.allocate(freelist, b"two", rkey=rkey)
        return first, second

    first, second = drive(sim, main())
    assert first == second
    assert server.space.read(first, 3) == b"two"


def test_flush_empty_batch_is_noop(sim, system, drive):
    fabric, server, daemon, rpc_client = system
    recycler = RecyclerClient(rpc_client, "server", batch_size=2)

    def main():
        yield from recycler.flush(1)
        return recycler.reports_sent

    assert drive(sim, main()) == 0
