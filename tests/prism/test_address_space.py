"""Unified host + NIC-SRAM address space."""

import pytest

from repro.core.constants import NIC_SRAM_BYTES
from repro.hw.memory import MemoryError_
from repro.prism.address_space import (
    DOMAIN_HOST,
    DOMAIN_SRAM,
    ServerAddressSpace,
)


@pytest.fixture
def space():
    return ServerAddressSpace(1 << 16, sram_bytes=1024)


def test_domains(space):
    host_addr = space.sbrk(64)
    sram_addr = space.sram_sbrk(32)
    assert space.domain(host_addr) == DOMAIN_HOST
    assert space.domain(sram_addr) == DOMAIN_SRAM
    assert sram_addr >= space.sram_base


def test_sram_mapped_past_host_memory(space):
    assert space.sram_base == 1 << 16


def test_host_and_sram_are_separate_memories(space):
    host_addr = space.sbrk(64)
    sram_addr = space.sram_sbrk(64)
    space.write(host_addr, b"host data")
    space.write(sram_addr, b"sram data")
    assert space.read(host_addr, 9) == b"host data"
    assert space.read(sram_addr, 9) == b"sram data"


def test_pointer_roundtrip_across_domains(space):
    host_addr = space.sbrk(64)
    sram_addr = space.sram_sbrk(16)
    # A pointer to host memory stored in SRAM (the redirect pattern).
    space.write_ptr(sram_addr, host_addr)
    assert space.read_ptr(sram_addr) == host_addr


def test_uint_codecs(space):
    addr = space.sbrk(16)
    space.write_uint(addr, 0xDEADBEEF, 8)
    assert space.read_uint(addr, 8) == 0xDEADBEEF


def test_out_of_bounds_sram(space):
    with pytest.raises(MemoryError_):
        space.read(space.sram_base + 1024, 8)


def test_contains(space):
    host = space.sbrk(64)
    sram = space.sram_sbrk(16)
    assert space.contains(host, 64)
    assert space.contains(sram, 16)
    assert not space.contains(0, 8)  # NULL page
    assert not space.contains(space.sram_base + 2048, 1)


def test_default_sram_size():
    space = ServerAddressSpace(1 << 16)
    assert space.sram_bytes == NIC_SRAM_BYTES


def test_sram_allocation_addresses_monotonic(space):
    first = space.sram_sbrk(32)
    second = space.sram_sbrk(32)
    assert second == first + 32
