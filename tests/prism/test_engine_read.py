"""READ semantics: direct, indirect, bounded, redirect, protection."""

import pytest

from repro.core import AccessViolation, ReadOp
from repro.hw.layout import pack_bounded_ptr
from repro.prism.address_space import DOMAIN_HOST, DOMAIN_SRAM
from repro.prism.engine import OpStatus


def test_direct_read(harness):
    harness.space.write(harness.base, b"hello world")
    result, accesses = harness.run(
        ReadOp(addr=harness.base, length=11, rkey=harness.rkey))
    assert result.status is OpStatus.OK
    assert result.value == b"hello world"
    assert [(a.kind, a.nbytes) for a in accesses] == [("r", 11)]


def test_indirect_read_dereferences(harness):
    target = harness.base + 256
    harness.space.write(target, b"pointee data")
    harness.space.write_ptr(harness.base, target)
    result, accesses = harness.run(
        ReadOp(addr=harness.base, length=12, rkey=harness.rkey,
               indirect=True))
    assert result.value == b"pointee data"
    # Pointer fetch (8 B) then data fetch.
    assert [(a.kind, a.nbytes) for a in accesses] == [("r", 8), ("r", 12)]


def test_bounded_read_clamps_to_bound(harness):
    target = harness.base + 256
    harness.space.write(target, b"0123456789")
    harness.space.write(harness.base, pack_bounded_ptr(target, 4))
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=100, rkey=harness.rkey,
               indirect=True, bounded=True))
    assert result.value == b"0123"


def test_bounded_read_uses_request_length_when_smaller(harness):
    target = harness.base + 256
    harness.space.write(target, b"0123456789")
    harness.space.write(harness.base, pack_bounded_ptr(target, 10))
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=3, rkey=harness.rkey,
               indirect=True, bounded=True))
    assert result.value == b"012"


def test_null_pointer_dereference_naks(harness):
    harness.space.write_ptr(harness.base, 0)
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey,
               indirect=True))
    assert result.status is OpStatus.NAK
    assert isinstance(result.error, AccessViolation)


def test_unknown_rkey_naks(harness):
    result, _ = harness.run(ReadOp(addr=harness.base, length=8, rkey=0xBEEF))
    assert result.status is OpStatus.NAK


def test_rkey_not_granted_to_connection_naks(harness):
    other_rkey = harness.regions.register(harness.base, 64)
    result, _ = harness.run(ReadOp(addr=harness.base, length=8,
                                   rkey=other_rkey))
    assert result.status is OpStatus.NAK
    assert "not granted" in str(result.error)


def test_out_of_region_naks(harness):
    result, _ = harness.run(
        ReadOp(addr=harness.base + (1 << 16) - 4, length=8,
               rkey=harness.rkey))
    assert result.status is OpStatus.NAK


def test_pointee_outside_granted_regions_naks(harness):
    # Pointer escapes into unregistered memory: must be rejected (§3.1).
    outside = harness.space.sbrk(64)  # allocated but never registered
    harness.space.write_ptr(harness.base, outside)
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey,
               indirect=True))
    assert result.status is OpStatus.NAK


def test_pointee_in_other_granted_region_allowed(harness):
    # Cross-region indirection is fine when both are granted (the
    # state-region -> buffer-region pattern every app uses).
    _, _, buffers = harness.add_freelist(64, 4)
    harness.space.write(buffers, b"buffered")
    harness.space.write_ptr(harness.base, buffers)
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey,
               indirect=True))
    assert result.value == b"buffered"


def test_redirect_writes_to_memory_not_response(harness):
    harness.space.write(harness.base, b"payload!")
    slot = harness.connection.sram_slot
    result, accesses = harness.run(
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey,
               redirect_to=slot))
    assert result.status is OpStatus.OK
    assert result.value == b""  # nothing returned to the client
    assert harness.space.read(slot, 8) == b"payload!"
    assert accesses[-1].kind == "w"
    assert accesses[-1].domain == DOMAIN_SRAM


def test_redirect_to_unregistered_address_naks(harness):
    harness.space.write(harness.base, b"payload!")
    outside = harness.space.sbrk(64)
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey,
               redirect_to=outside))
    assert result.status is OpStatus.NAK


def test_access_domains_reported(harness):
    harness.space.write(harness.base, b"x" * 8)
    _, accesses = harness.run(
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey))
    assert accesses[0].domain == DOMAIN_HOST


def test_zero_length_read(harness):
    result, _ = harness.run(
        ReadOp(addr=harness.base, length=0, rkey=harness.rkey))
    assert result.status is OpStatus.OK
    assert result.value == b""
