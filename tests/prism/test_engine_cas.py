"""Enhanced CAS semantics (§3.3): modes, masks, widths, indirection."""

import pytest
from hypothesis import given, strategies as st

from repro.core import CasMode, CasOp
from repro.prism.engine import OpStatus


def _u(value, width=8):
    return value.to_bytes(width, "little")


def test_classic_eq_cas_swaps(harness):
    harness.space.write(harness.base, _u(5))
    result, _ = harness.run(
        CasOp(target=harness.base, data=_u(9), rkey=harness.rkey,
              compare_data=_u(5)))
    assert result.status is OpStatus.OK
    assert result.value == _u(5)  # old value returned
    assert harness.space.read_uint(harness.base) == 9


def test_classic_eq_cas_miss_returns_old(harness):
    harness.space.write(harness.base, _u(5))
    result, _ = harness.run(
        CasOp(target=harness.base, data=_u(9), rkey=harness.rkey,
              compare_data=_u(4)))
    assert result.status is OpStatus.CAS_MISS
    assert result.value == _u(5)
    assert harness.space.read_uint(harness.base) == 5  # unchanged


def test_single_operand_form_compares_data_itself(harness):
    """Without compare_data, the operand is both comparand and swap."""
    harness.space.write(harness.base, _u(7))
    result, _ = harness.run(
        CasOp(target=harness.base, data=_u(7), rkey=harness.rkey))
    assert result.status is OpStatus.OK


def test_gt_mode_versioned_install(harness):
    harness.space.write(harness.base, _u(10))
    ok, _ = harness.run(CasOp(target=harness.base, data=_u(11),
                              rkey=harness.rkey, mode=CasMode.GT))
    assert ok.status is OpStatus.OK
    miss, _ = harness.run(CasOp(target=harness.base, data=_u(11),
                                rkey=harness.rkey, mode=CasMode.GT))
    assert miss.status is OpStatus.CAS_MISS
    assert harness.space.read_uint(harness.base) == 11


@pytest.mark.parametrize("mode,operand,memory,hits", [
    (CasMode.NE, 3, 4, True), (CasMode.NE, 4, 4, False),
    (CasMode.GE, 4, 4, True), (CasMode.GE, 3, 4, False),
    (CasMode.LT, 3, 4, True), (CasMode.LT, 4, 4, False),
    (CasMode.LE, 4, 4, True), (CasMode.LE, 5, 4, False),
])
def test_all_modes(harness, mode, operand, memory, hits):
    harness.space.write(harness.base, _u(memory))
    result, _ = harness.run(CasOp(target=harness.base, data=_u(operand),
                                  rkey=harness.rkey, mode=mode))
    assert (result.status is OpStatus.OK) == hits


def test_compare_one_field_swap_another(harness):
    """The Table 1 selling point: compare version, swap pointer."""
    # layout: [ver(8) | ptr(8)]; compare ver GT, swap whole struct.
    harness.space.write(harness.base, _u(3) + _u(0xAAAA))
    data = _u(4) + _u(0xBBBB)
    result, _ = harness.run(
        CasOp(target=harness.base, data=data, rkey=harness.rkey,
              mode=CasMode.GT, compare_mask=(1 << 64) - 1,
              operand_width=16))
    assert result.status is OpStatus.OK
    assert harness.space.read(harness.base, 16) == data


def test_swap_mask_preserves_unswapped_bits(harness):
    harness.space.write(harness.base, _u(0x1111) + _u(0x2222))
    data = _u(0x9999) + _u(0x8888)
    result, _ = harness.run(
        CasOp(target=harness.base, data=data, rkey=harness.rkey,
              mode=CasMode.NE, compare_mask=(1 << 128) - 1,
              swap_mask=(1 << 64) - 1, operand_width=16))
    assert result.status is OpStatus.OK
    # Only the low field swapped; high field untouched.
    assert harness.space.read_uint(harness.base) == 0x9999
    assert harness.space.read_uint(harness.base + 8) == 0x2222


def test_32_byte_operand(harness):
    old = bytes(range(32))
    harness.space.write(harness.base, old)
    new = bytes(reversed(range(32)))
    result, _ = harness.run(
        CasOp(target=harness.base, data=new, rkey=harness.rkey,
              compare_data=old))
    assert result.status is OpStatus.OK
    assert harness.space.read(harness.base, 32) == new


def test_target_indirect(harness):
    real_target = harness.base + 256
    harness.space.write(real_target, _u(1))
    harness.space.write_ptr(harness.base, real_target)
    result, accesses = harness.run(
        CasOp(target=harness.base, data=_u(2), rkey=harness.rkey,
              mode=CasMode.GT, target_indirect=True))
    assert result.status is OpStatus.OK
    assert harness.space.read_uint(real_target) == 2
    # The dereference is a separate (non-atomic) access; only the CAS
    # read-modify-write pair is atomic.
    atomic_flags = [a.atomic for a in accesses]
    assert atomic_flags == [False, True, True]


def test_data_indirect_loads_operand_from_memory(harness):
    slot = harness.connection.sram_slot
    harness.space.write(slot, _u(42))
    harness.space.write(harness.base, _u(41))
    result, _ = harness.run(
        CasOp(target=harness.base, data=slot.to_bytes(8, "little"),
              rkey=harness.rkey, mode=CasMode.GT, data_indirect=True,
              operand_width=8))
    assert result.status is OpStatus.OK
    assert harness.space.read_uint(harness.base) == 42


def test_cas_outside_region_naks(harness):
    result, _ = harness.run(
        CasOp(target=harness.base + (1 << 16), data=_u(1),
              rkey=harness.rkey))
    assert result.status is OpStatus.NAK


def test_cas_miss_is_not_an_engine_error(harness):
    harness.space.write(harness.base, _u(5))
    result, _ = harness.run(
        CasOp(target=harness.base, data=_u(1), rkey=harness.rkey,
              compare_data=_u(99)))
    assert result.error is None
    assert not result.successful


@given(old=st.integers(min_value=0, max_value=2**64 - 1),
       new=st.integers(min_value=0, max_value=2**64 - 1),
       cmask=st.integers(min_value=0, max_value=2**64 - 1),
       smask=st.integers(min_value=0, max_value=2**64 - 1))
def test_cas_algebra_property(old, new, cmask, smask):
    """Masked-CAS postcondition, for arbitrary operands and masks."""
    from tests.prism.conftest import EngineHarness
    h = EngineHarness()
    h.space.write(h.base, _u(old))
    result, _ = h.run(CasOp(target=h.base, data=_u(new), rkey=h.rkey,
                            mode=CasMode.EQ, compare_mask=cmask,
                            swap_mask=smask, operand_width=8))
    after = h.space.read_uint(h.base)
    if (new & cmask) == (old & cmask):
        assert result.status is OpStatus.OK
        assert after == (old & ~smask) | (new & smask)
    else:
        assert result.status is OpStatus.CAS_MISS
        assert after == old
    assert result.value == _u(old)


class TestMaskEdgeCases:
    """Degenerate masks must fall out of the general definition:
    ``compare(cmp & cmask, *target & cmask)`` then
    ``*target = (*target & ~smask) | (data & smask)``."""

    FULL = (1 << 64) - 1

    def test_explicit_all_ones_masks_match_classic_cas(self, harness):
        harness.space.write(harness.base, _u(7))
        classic, _ = harness.run(
            CasOp(target=harness.base, data=_u(9), rkey=harness.rkey,
                  compare_data=_u(7)))
        assert classic.status is OpStatus.OK
        assert harness.space.read_uint(harness.base) == 9

        harness.space.write(harness.base, _u(7))
        masked, _ = harness.run(
            CasOp(target=harness.base, data=_u(9), rkey=harness.rkey,
                  mode=CasMode.EQ, compare_data=_u(7),
                  compare_mask=self.FULL, swap_mask=self.FULL))
        assert masked.status is OpStatus.OK
        assert harness.space.read_uint(harness.base) == 9
        assert masked.value == classic.value == _u(7)

        # And the miss case agrees too: full masks hide nothing.
        miss, _ = harness.run(
            CasOp(target=harness.base, data=_u(1), rkey=harness.rkey,
                  compare_data=_u(7), compare_mask=self.FULL,
                  swap_mask=self.FULL))
        assert miss.status is OpStatus.CAS_MISS
        assert harness.space.read_uint(harness.base) == 9

    def test_zero_compare_mask_eq_always_hits(self, harness):
        harness.space.write(harness.base, _u(0xDEAD))
        result, _ = harness.run(
            CasOp(target=harness.base, data=_u(5), rkey=harness.rkey,
                  compare_data=_u(123), compare_mask=0))
        # 123 & 0 == 0xDEAD & 0: the comparison sees only zeros.
        assert result.status is OpStatus.OK
        assert harness.space.read_uint(harness.base) == 5

    def test_zero_compare_mask_gt_never_hits(self, harness):
        harness.space.write(harness.base, _u(1))
        result, _ = harness.run(
            CasOp(target=harness.base, data=_u(999), rkey=harness.rkey,
                  mode=CasMode.GT, compare_mask=0))
        # 0 > 0 is false no matter the operands.
        assert result.status is OpStatus.CAS_MISS
        assert harness.space.read_uint(harness.base) == 1

    def test_zero_swap_mask_hits_but_writes_nothing(self, harness):
        harness.space.write(harness.base, _u(77))
        result, _ = harness.run(
            CasOp(target=harness.base, data=_u(99), rkey=harness.rkey,
                  compare_data=_u(77), swap_mask=0))
        assert result.status is OpStatus.OK
        assert harness.space.read_uint(harness.base) == 77
        assert result.value == _u(77)  # old value still returned


class TestVersionedCompare:
    """The §3.3 versioned-install pattern under stale operands."""

    def test_gt_rejects_stale_and_equal_versions(self, harness):
        harness.space.write(harness.base, _u(10))
        for stale in (9, 10):
            result, _ = harness.run(
                CasOp(target=harness.base, data=_u(stale),
                      rkey=harness.rkey, mode=CasMode.GT))
            assert result.status is OpStatus.CAS_MISS
            assert result.value == _u(10)  # losing writer learns current
            assert harness.space.read_uint(harness.base) == 10
        fresh, _ = harness.run(
            CasOp(target=harness.base, data=_u(11), rkey=harness.rkey,
                  mode=CasMode.GT))
        assert fresh.status is OpStatus.OK
        assert harness.space.read_uint(harness.base) == 11

    def test_masked_gt_compares_version_field_only(self, harness):
        # [ver(8) | ptr(8)]: version 5, pointer 0xAAAA.
        harness.space.write(harness.base, _u(5) + _u(0xAAAA))
        ver_mask = (1 << 64) - 1
        stale = _u(4) + _u(0xBBBB)
        miss, _ = harness.run(
            CasOp(target=harness.base, data=stale, rkey=harness.rkey,
                  mode=CasMode.GT, compare_mask=ver_mask,
                  operand_width=16))
        # The pointer field (0xBBBB > 0xAAAA) must not influence the
        # comparison: the masked version 4 is stale, so no install.
        assert miss.status is OpStatus.CAS_MISS
        assert harness.space.read(harness.base, 16) == _u(5) + _u(0xAAAA)
        fresh = _u(6) + _u(0x1111)
        hit, _ = harness.run(
            CasOp(target=harness.base, data=fresh, rkey=harness.rkey,
                  mode=CasMode.GT, compare_mask=ver_mask,
                  operand_width=16))
        assert hit.status is OpStatus.OK
        assert harness.space.read(harness.base, 16) == fresh
