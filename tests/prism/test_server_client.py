"""PrismServer/PrismClient integration: connections, regions, recycling."""

import pytest

from repro.core import AccessViolation, ReadOp
from repro.core.constants import REDIRECT_SLOT_BYTES
from repro.net.topology import DIRECT, make_fabric
from repro.prism import (
    HardwarePrismBackend,
    PrismClient,
    PrismServer,
    SoftwarePrismBackend,
)
from repro.prism.engine import OpStatus


@pytest.fixture
def system(sim):
    fabric = make_fabric(sim, DIRECT, ["client", "client2", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend)
    return fabric, server


def test_connections_get_distinct_sram_slots(sim, system):
    fabric, server = system
    a = PrismClient(sim, fabric, "client", server)
    b = PrismClient(sim, fabric, "client2", server)
    assert a.sram_slot != b.sram_slot
    assert abs(a.sram_slot - b.sram_slot) >= REDIRECT_SLOT_BYTES


def test_shared_region_granted_retroactively(sim, system):
    fabric, server = system
    client = PrismClient(sim, fabric, "client", server)
    addr, rkey = server.add_region(128)  # registered after connect
    assert rkey in client.connection.granted_rkeys


def test_unshared_region_not_granted(sim, system, drive):
    fabric, server = system
    client = PrismClient(sim, fabric, "client", server)
    addr, rkey = server.add_region(128, shared=False)

    def main():
        result = yield from client.execute(
            ReadOp(addr=addr, length=8, rkey=rkey))
        return result[0]

    assert drive(sim, main()).status is OpStatus.NAK


def test_convenience_read_raises_on_nak(sim, system, drive):
    fabric, server = system
    client = PrismClient(sim, fabric, "client", server)
    addr, rkey = server.add_region(128)

    def main():
        with pytest.raises(AccessViolation):
            yield from client.read(addr + 1024, 8, rkey=rkey)
        return "raised"

    assert drive(sim, main()) == "raised"


def test_round_trip_counting(sim, system, drive):
    fabric, server = system
    client = PrismClient(sim, fabric, "client", server)
    addr, rkey = server.add_region(128)

    def main():
        yield from client.write(addr, b"abc", rkey=rkey)
        yield from client.read(addr, 3, rkey=rkey)
        return client.round_trips

    assert drive(sim, main()) == 2


def test_freelist_creation_and_allocation(sim, system, drive):
    fabric, server = system
    freelist, rkey = server.create_freelist(128, 10)
    client = PrismClient(sim, fabric, "client", server)

    def main():
        first = yield from client.allocate(freelist, b"hello", rkey=rkey)
        second = yield from client.allocate(freelist, b"world", rkey=rkey)
        return first, second

    first, second = drive(sim, main())
    assert second == first + 128
    assert server.space.read(first, 5) == b"hello"


def test_post_buffers_waits_for_executing_ops(sim, system):
    """The §3.2 guarantee via the posting gate: the post happens only
    after currently executing NIC operations drain, and operations
    arriving mid-post wait for the gate to reopen."""
    fabric, server = system
    freelist, rkey = server.create_freelist(64, 1)
    gate = server.backend.gate
    events = []

    def fake_op(start_at, duration, tag):
        yield sim.timeout(start_at)
        yield from gate.enter()
        events.append(("start", tag, sim.now))
        yield sim.timeout(duration)
        gate.exit()
        events.append(("end", tag, sim.now))

    def poster():
        yield sim.timeout(1.0)  # while op A executes
        yield from server.post_buffers(freelist, [server.space.sbrk(64)])
        events.append(("posted", None, sim.now))

    sim.spawn(fake_op(0.0, 5.0, "A"))   # executing when post requested
    sim.spawn(fake_op(2.0, 1.0, "B"))   # arrives mid-post: must wait
    sim.spawn(poster())
    sim.run(until=1e4)

    posted_at = next(t for kind, _, t in events if kind == "posted")
    a_end = next(t for kind, tag, t in events if kind == "end" and tag == "A")
    b_start = next(t for kind, tag, t in events
                   if kind == "start" and tag == "B")
    assert posted_at >= a_end          # drained before posting
    assert b_start >= posted_at        # new op stalled until reopened
    assert len(server.freelists[freelist]) == 2  # buffer actually posted


def test_response_sizes_scale_with_payload(sim, system):
    fabric, server = system
    addr, rkey = server.add_region(4096)
    client = PrismClient(sim, fabric, "client", server)
    latencies = {}

    def main():
        for size in (64, 2048):
            start = sim.now
            yield from client.read(addr, size, rkey=rkey)
            latencies[size] = sim.now - start

    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert latencies[2048] > latencies[64]


def test_two_clients_isolated_scratch(sim, system, drive):
    fabric, server = system
    a = PrismClient(sim, fabric, "client", server)
    b = PrismClient(sim, fabric, "client2", server)

    def main():
        yield from a.write(a.sram_slot, b"AAAA", rkey=server.sram_rkey)
        yield from b.write(b.sram_slot, b"BBBB", rkey=server.sram_rkey)
        a_data = yield from a.read(a.sram_slot, 4, rkey=server.sram_rkey)
        return a_data

    assert drive(sim, main()) == b"AAAA"


def test_unknown_connection_rejected_remotely(sim, system, drive):
    from repro.core import ReadOp, RemoteNak
    from repro.net.port import RequestChannel
    fabric, server = system
    addr, rkey = server.add_region(64)
    channel = RequestChannel(sim, fabric, "client")
    op = ReadOp(addr=addr, length=8, rkey=rkey)

    def main():
        with pytest.raises(RemoteNak, match="unknown connection"):
            yield from channel.request("server", "prism", (9999, [op]),
                                       request_size=64)
        return "rejected"

    assert drive(sim, main()) == "rejected"
