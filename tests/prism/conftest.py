"""Fixtures for engine-level tests: memory + regions + engine, no timing."""

import pytest

from repro.prism.address_space import ServerAddressSpace
from repro.prism.engine import Connection, PrismEngine
from repro.rdma.mr import AccessFlags, MemoryRegionTable
from repro.rdma.qp import QueuePair


class EngineHarness:
    """Bare engine over 1 MiB of memory with one registered region."""

    def __init__(self):
        self.space = ServerAddressSpace(1 << 20, sram_bytes=4096)
        self.regions = MemoryRegionTable()
        self.freelists = {}
        self.engine = PrismEngine(self.space, self.regions, self.freelists)
        self.base = self.space.sbrk(1 << 16)
        self.rkey = self.regions.register(self.base, 1 << 16)
        self.sram_base = self.space.sram_sbrk(256)
        self.sram_rkey = self.regions.register(self.sram_base, 256)
        self.connection = Connection("client", {self.rkey, self.sram_rkey},
                                     sram_slot=self.sram_base)

    def add_freelist(self, buffer_size, count, freelist_id=1):
        qp = QueuePair(buffer_size)
        start = self.space.sbrk(buffer_size * count)
        rkey = self.regions.register(start, buffer_size * count)
        self.connection.grant(rkey)
        qp.post_many(start + i * buffer_size for i in range(count))
        self.freelists[freelist_id] = qp
        return freelist_id, rkey, start

    def run(self, op, prev_ok=True):
        return self.engine.execute_op(self.connection, op, prev_ok)

    def run_chain(self, ops):
        return self.engine.execute_chain(self.connection, ops)


@pytest.fixture
def harness():
    return EngineHarness()
