"""Backend feature gating and timing shapes."""

import pytest

from repro.core import CasMode, CasOp, InvalidOperation, ReadOp, WriteOp
from repro.core.ops import AllocateOp
from repro.net.topology import DIRECT, make_fabric
from repro.prism import (
    BackendConfig,
    BlueFieldPrismBackend,
    HardwarePrismBackend,
    HardwareRdmaBackend,
    PrismClient,
    PrismServer,
    SoftwarePrismBackend,
    SoftwareRdmaBackend,
)
from repro.prism.engine import OpStatus


def _system(sim, backend_cls):
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    server = PrismServer(sim, fabric, "server", backend_cls)
    addr, rkey = server.add_region(4096)
    freelist, fl_rkey = server.create_freelist(64, 16)
    client = PrismClient(sim, fabric, "client", server)
    return server, client, addr, rkey, freelist, fl_rkey


@pytest.mark.parametrize("backend_cls", [HardwareRdmaBackend,
                                         SoftwareRdmaBackend])
def test_rdma_backends_reject_extensions(sim, drive, backend_cls):
    server, client, addr, rkey, freelist, fl_rkey = _system(sim, backend_cls)
    server.space.write_ptr(addr, addr + 64)

    def main():
        result = yield from client.execute(
            ReadOp(addr=addr, length=8, rkey=rkey, indirect=True))
        return result[0]

    outcome = drive(sim, main())
    assert outcome.status is OpStatus.NAK
    assert isinstance(outcome.error, InvalidOperation)


@pytest.mark.parametrize("backend_cls", [HardwareRdmaBackend,
                                         SoftwareRdmaBackend])
def test_rdma_backends_reject_allocate(sim, drive, backend_cls):
    server, client, addr, rkey, freelist, fl_rkey = _system(sim, backend_cls)

    def main():
        result = yield from client.execute(
            AllocateOp(freelist=freelist, data=b"x", rkey=fl_rkey))
        return result[0]

    assert drive(sim, main()).status is OpStatus.NAK


def test_rdma_backend_accepts_classic_and_extended_atomics(sim, drive):
    server, client, addr, rkey, *_ = _system(sim, HardwareRdmaBackend)
    server.space.write_uint(addr, 7)

    def main():
        # classic two-operand CAS
        swapped, old = yield from client.cas(
            addr, data=(9).to_bytes(8, "little"),
            compare_data=(7).to_bytes(8, "little"), rkey=rkey)
        assert swapped
        # Mellanox extended atomics: masked 16-byte EQ
        swapped2, _ = yield from client.cas(
            addr, data=b"\x09" + b"\x00" * 15, rkey=rkey,
            compare_mask=0xFF, operand_width=16)
        return swapped, swapped2

    assert drive(sim, main()) == (True, True)


def test_rdma_backend_rejects_gt_mode(sim, drive):
    server, client, addr, rkey, *_ = _system(sim, HardwareRdmaBackend)

    def main():
        result = yield from client.execute(
            CasOp(target=addr, data=b"\x01" * 8, rkey=rkey,
                  mode=CasMode.GT))
        return result[0]

    assert drive(sim, main()).status is OpStatus.NAK


@pytest.mark.parametrize("backend_cls", [HardwarePrismBackend,
                                         SoftwarePrismBackend,
                                         BlueFieldPrismBackend])
def test_prism_backends_accept_extensions(sim, drive, backend_cls):
    server, client, addr, rkey, freelist, fl_rkey = _system(sim, backend_cls)
    server.space.write(addr + 64, b"target!!")
    server.space.write_ptr(addr, addr + 64)

    def main():
        data = yield from client.read(addr, 8, rkey=rkey, indirect=True)
        buf = yield from client.allocate(freelist, b"alloc", rkey=fl_rkey)
        return data, buf

    data, buf = drive(sim, main())
    assert data == b"target!!"
    assert buf != 0


def _read_latency(backend_cls):
    from repro.sim import Simulator
    sim = Simulator()
    server, client, addr, rkey, *_ = _system(sim, backend_cls)
    server.space.write(addr, b"v" * 512)
    holder = {}

    def main():
        start = sim.now
        yield from client.read(addr, 512, rkey=rkey)
        holder["latency"] = sim.now - start

    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    return holder["latency"]


def test_backend_latency_ordering():
    """hw RDMA == prism-hw < prism-sw < bluefield for a plain read."""
    rdma = _read_latency(HardwareRdmaBackend)
    hw = _read_latency(HardwarePrismBackend)
    sw = _read_latency(SoftwarePrismBackend)
    bf = _read_latency(BlueFieldPrismBackend)
    assert rdma == pytest.approx(hw)
    assert rdma < sw < bf


def test_software_chain_amortizes_request_cost(sim, drive):
    """N ops in one request cost far less than N single-op requests."""
    server, client, addr, rkey, *_ = _system(sim, SoftwarePrismBackend)

    def timed(ops_batched):
        start = sim.now
        if ops_batched:
            yield from client.execute(
                *[ReadOp(addr=addr, length=8, rkey=rkey) for _ in range(4)])
        else:
            for _ in range(4):
                yield from client.read(addr, 8, rkey=rkey)
        return sim.now - start

    batched = drive(sim, timed(True))
    sequential = drive(sim, timed(False))
    assert batched < sequential / 2


def test_custom_config_respected():
    from repro.sim import Simulator
    sim = Simulator()
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    config = BackendConfig(sw_pipeline_latency_us=50.0)
    server = PrismServer(sim, fabric, "server", SoftwarePrismBackend,
                         config=config)
    addr, rkey = server.add_region(64)
    client = PrismClient(sim, fabric, "client", server)
    holder = {}

    def main():
        start = sim.now
        yield from client.read(addr, 8, rkey=rkey)
        holder["latency"] = sim.now - start

    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert holder["latency"] > 50.0


def test_utilization_reported(sim, drive):
    server, client, addr, rkey, *_ = _system(sim, SoftwarePrismBackend)

    def main():
        for _ in range(10):
            yield from client.read(addr, 8, rkey=rkey)
        return server.backend.utilization(sim.now)

    utilization = drive(sim, main())
    assert 0.0 < utilization < 1.0
