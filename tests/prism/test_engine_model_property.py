"""Property test: the engine vs a reference model.

Hypothesis drives random sequences of WRITE / READ / CAS operations on
a small register file through the PRISM engine and through a trivial
Python dictionary model; they must always agree — on returned values,
on swap outcomes, and on final memory contents.
"""

from hypothesis import given, settings, strategies as st

from repro.core.ops import CasMode, CasOp, ReadOp, WriteOp
from repro.prism.engine import OpStatus
from tests.prism.conftest import EngineHarness

N_CELLS = 4
WIDTH = 8


def _cell_strategy():
    return st.integers(min_value=0, max_value=N_CELLS - 1)


def _value_strategy():
    return st.integers(min_value=0, max_value=2**64 - 1)


_op_strategy = st.one_of(
    st.tuples(st.just("write"), _cell_strategy(), _value_strategy()),
    st.tuples(st.just("read"), _cell_strategy(), st.just(0)),
    st.tuples(st.just("cas"), _cell_strategy(), _value_strategy(),
              _value_strategy(),
              st.sampled_from(list(CasMode)),
              st.integers(min_value=0, max_value=2**64 - 1),
              st.integers(min_value=0, max_value=2**64 - 1)),
)


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(_op_strategy, min_size=1, max_size=25))
def test_engine_agrees_with_reference_model(ops):
    harness = EngineHarness()
    cells = [harness.base + i * WIDTH for i in range(N_CELLS)]
    model = [0] * N_CELLS

    for op in ops:
        kind = op[0]
        cell = op[1]
        addr = cells[cell]
        if kind == "write":
            value = op[2]
            result, _ = harness.run(WriteOp(
                addr=addr, data=value.to_bytes(WIDTH, "little"),
                rkey=harness.rkey))
            assert result.status is OpStatus.OK
            model[cell] = value
        elif kind == "read":
            result, _ = harness.run(ReadOp(addr=addr, length=WIDTH,
                                           rkey=harness.rkey))
            assert result.status is OpStatus.OK
            assert int.from_bytes(result.value, "little") == model[cell]
        else:
            _, _cell, swap, compare, mode, cmask, smask = op
            result, _ = harness.run(CasOp(
                target=addr, data=swap.to_bytes(WIDTH, "little"),
                compare_data=compare.to_bytes(WIDTH, "little"),
                rkey=harness.rkey, mode=mode, compare_mask=cmask,
                swap_mask=smask, operand_width=WIDTH))
            old = model[cell]
            assert result.value == old.to_bytes(WIDTH, "little")
            if mode.compare(compare & cmask, old & cmask):
                assert result.status is OpStatus.OK
                model[cell] = (old & ~smask) | (swap & smask)
            else:
                assert result.status is OpStatus.CAS_MISS

    for cell, addr in enumerate(cells):
        assert harness.space.read_uint(addr, WIDTH) == model[cell]
