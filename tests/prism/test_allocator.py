"""Size-class allocation (§3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidOperation
from repro.net.topology import DIRECT, make_fabric
from repro.prism import HardwarePrismBackend, PrismClient, PrismServer
from repro.prism.allocator import SizeClassAllocator, size_class_for


class TestSizeClassMath:
    def test_exact_power(self):
        assert size_class_for(64, 64) == 64
        assert size_class_for(128, 64) == 128

    def test_rounds_up(self):
        assert size_class_for(65, 64) == 128
        assert size_class_for(513, 64) == 1024

    def test_minimum_class(self):
        assert size_class_for(1, 64) == 64
        assert size_class_for(0, 64) == 64

    @given(nbytes=st.integers(min_value=1, max_value=4096))
    def test_bound_property(self, nbytes):
        """Power-of-two classes waste at most 2x (§3.2)."""
        size = size_class_for(nbytes, 64)
        assert size >= nbytes
        assert size < 2 * max(nbytes, 64)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(InvalidOperation):
            SizeClassAllocator(60, 128)
        with pytest.raises(InvalidOperation):
            SizeClassAllocator(256, 64)


class TestInstalled:
    @pytest.fixture
    def system(self, sim):
        fabric = make_fabric(sim, DIRECT, ["client", "server"])
        server = PrismServer(sim, fabric, "server", HardwarePrismBackend,
                             memory_bytes=16 << 20)
        allocator = SizeClassAllocator.install(server, min_class=64,
                                               max_class=1024,
                                               buffers_per_class=16)
        client = PrismClient(sim, fabric, "client", server)
        return server, allocator, client

    def test_classes_created(self, system):
        _server, allocator, _client = system
        assert allocator.classes == [64, 128, 256, 512, 1024]

    def test_distinct_freelists(self, system):
        _server, allocator, _client = system
        ids = {allocator.freelist_for(size) for size in allocator.classes}
        assert len(ids) == 5

    def test_allocate_from_right_class(self, system, sim, drive):
        server, allocator, client = system
        def main():
            small = yield from client.allocate(
                allocator.freelist_for(10), b"x" * 10,
                rkey=allocator.rkey_for(10))
            large = yield from client.allocate(
                allocator.freelist_for(700), b"y" * 700,
                rkey=allocator.rkey_for(700))
            return small, large
        small, large = drive(sim, main())
        assert server.space.read(small, 10) == b"x" * 10
        assert server.space.read(large, 700) == b"y" * 700
        # The classes come from different regions.
        assert allocator.freelist_for(10) != allocator.freelist_for(700)

    def test_oversized_rejected(self, system):
        _server, allocator, _client = system
        with pytest.raises(InvalidOperation):
            allocator.freelist_for(2048)

    def test_overhead_accounting(self, system):
        _server, allocator, _client = system
        assert allocator.overhead(64) == 0
        assert allocator.overhead(65) == 63
        assert allocator.worst_case_overhead_factor() == 2.0

    def test_class_exhaustion_is_per_class(self, system, sim, drive):
        """Draining one class must not affect the others."""
        server, allocator, client = system
        from repro.core.errors import AllocationFailure
        def main():
            for _ in range(16):
                yield from client.allocate(allocator.freelist_for(100),
                                           b"z" * 100,
                                           rkey=allocator.rkey_for(100))
            with pytest.raises(AllocationFailure):
                yield from client.allocate(allocator.freelist_for(100),
                                           b"z", rkey=allocator.rkey_for(100))
            # 64 B class still healthy.
            addr = yield from client.allocate(allocator.freelist_for(10),
                                              b"ok",
                                              rkey=allocator.rkey_for(10))
            return addr
        assert drive(sim, main()) != 0


class TestQueuePairWatermarks:
    def _qp(self, count=4):
        from repro.rdma.qp import QueuePair
        qp = QueuePair(64, name="wm")
        qp.post_many(0x1000 + i * 64 for i in range(count))
        return qp

    def test_high_watermark_tracks_deepest(self):
        qp = self._qp(4)
        assert qp.high_watermark == 4
        qp.pop()
        qp.pop()
        assert qp.high_watermark == 4
        qp.post_many([0x5000, 0x5040, 0x5080])
        assert qp.high_watermark == 5

    def test_low_watermark_is_depth_until_first_pop(self):
        qp = self._qp(4)
        assert qp.low_watermark == 4
        qp.pop()
        assert qp.low_watermark == 3
        qp.post(0x6000)
        # Reposting raises depth but never the recorded minimum.
        assert qp.low_watermark == 3
        qp.pop()
        qp.pop()
        assert qp.low_watermark == 2

    def test_exhaustion_raises_typed_error_with_counters(self):
        from repro.core.errors import AllocationFailure, FreeListExhausted
        qp = self._qp(2)
        qp.pop()
        qp.pop()
        with pytest.raises(FreeListExhausted) as excinfo:
            qp.pop()
        error = excinfo.value
        assert isinstance(error, AllocationFailure)
        assert error.freelist_name == "wm"
        assert error.posted == 2
        assert error.popped == 2
        assert error.high_watermark == 2
        assert "free list exhausted" in str(error)
        assert "high watermark=2" in str(error)
        assert qp.low_watermark == 0


class TestWatermarkReport:
    def test_uninstalled_allocator_reports_nothing(self):
        allocator = SizeClassAllocator(64, 256)
        assert allocator.watermarks() == []
        assert "(allocator not installed" in allocator.format_watermarks()

    def test_installed_report_tracks_pops(self, sim, drive):
        fabric = make_fabric(sim, DIRECT, ["client", "server"])
        server = PrismServer(sim, fabric, "server", HardwarePrismBackend,
                             memory_bytes=16 << 20)
        allocator = SizeClassAllocator.install(server, min_class=64,
                                               max_class=256,
                                               buffers_per_class=8)
        client = PrismClient(sim, fabric, "client", server)

        def main():
            for _ in range(3):
                yield from client.allocate(allocator.freelist_for(100),
                                           b"z" * 100,
                                           rkey=allocator.rkey_for(100))
        drive(sim, main())

        rows = {row["class"]: row for row in allocator.watermarks()}
        assert sorted(rows) == [64, 128, 256]
        row = rows[128]
        assert row["capacity"] == 8
        assert row["depth"] == 5
        assert row["popped"] == 3
        assert row["low_watermark"] == 5
        assert row["occupancy"] == pytest.approx(3 / 8)
        untouched = rows[64]
        assert untouched["popped"] == 0
        assert untouched["low_watermark"] == 8
        assert untouched["occupancy"] == pytest.approx(0.0)
        text = allocator.format_watermarks()
        assert "class128: depth 5/8" in text
        assert "popped 3" in text
