"""ALLOCATE semantics: free-list pop, data write, redirect, failure."""

import pytest

from repro.core import AllocateOp, AllocationFailure, InvalidOperation
from repro.prism.engine import OpStatus


def test_allocate_pops_fifo_and_writes(harness):
    _, _, start = harness.add_freelist(64, 4)
    result, accesses = harness.run(
        AllocateOp(freelist=1, data=b"first", rkey=harness.rkey))
    assert result.status is OpStatus.OK
    assert result.value == start  # first buffer in posted order
    assert harness.space.read(start, 5) == b"first"
    result2, _ = harness.run(
        AllocateOp(freelist=1, data=b"second", rkey=harness.rkey))
    assert result2.value == start + 64


def test_allocate_redirect_stores_pointer(harness):
    _, _, start = harness.add_freelist(64, 4)
    slot = harness.connection.sram_slot
    result, _ = harness.run(
        AllocateOp(freelist=1, data=b"x", rkey=harness.rkey,
                   redirect_to=slot))
    assert result.status is OpStatus.OK
    assert result.value == 0  # address not returned to client
    assert harness.space.read_ptr(slot) == start


def test_allocate_empty_freelist_naks(harness):
    harness.add_freelist(64, 1)
    harness.run(AllocateOp(freelist=1, data=b"x", rkey=harness.rkey))
    result, _ = harness.run(
        AllocateOp(freelist=1, data=b"y", rkey=harness.rkey))
    assert result.status is OpStatus.NAK
    assert isinstance(result.error, AllocationFailure)


def test_allocate_unknown_freelist_naks(harness):
    result, _ = harness.run(
        AllocateOp(freelist=99, data=b"x", rkey=harness.rkey))
    assert result.status is OpStatus.NAK
    assert isinstance(result.error, InvalidOperation)


def test_allocate_oversized_data_naks(harness):
    harness.add_freelist(16, 4)
    result, _ = harness.run(
        AllocateOp(freelist=1, data=b"z" * 17, rkey=harness.rkey))
    assert result.status is OpStatus.NAK


def test_allocate_never_double_allocates(harness):
    _, _, _start = harness.add_freelist(32, 8)
    seen = set()
    for i in range(8):
        result, _ = harness.run(
            AllocateOp(freelist=1, data=bytes([i]), rkey=harness.rkey))
        assert result.value not in seen
        seen.add(result.value)
    assert len(seen) == 8


def test_reposted_buffer_can_be_reallocated(harness):
    harness.add_freelist(32, 1)
    result, _ = harness.run(
        AllocateOp(freelist=1, data=b"a", rkey=harness.rkey))
    first = result.value
    harness.freelists[1].post(first)
    result2, _ = harness.run(
        AllocateOp(freelist=1, data=b"b", rkey=harness.rkey))
    assert result2.value == first
    assert harness.space.read(first, 1) == b"b"
