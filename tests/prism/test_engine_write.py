"""WRITE semantics: direct, addr-indirect, bounded, data-indirect."""

import pytest

from repro.core import WriteOp
from repro.hw.layout import pack_bounded_ptr
from repro.prism.engine import OpStatus


def test_direct_write(harness):
    result, accesses = harness.run(
        WriteOp(addr=harness.base, data=b"written", rkey=harness.rkey))
    assert result.status is OpStatus.OK
    assert harness.space.read(harness.base, 7) == b"written"
    assert [(a.kind, a.nbytes) for a in accesses] == [("w", 7)]


def test_addr_indirect_write(harness):
    target = harness.base + 128
    harness.space.write_ptr(harness.base, target)
    result, accesses = harness.run(
        WriteOp(addr=harness.base, data=b"indirect!", rkey=harness.rkey,
                addr_indirect=True))
    assert result.status is OpStatus.OK
    assert harness.space.read(target, 9) == b"indirect!"
    assert accesses[0] == accesses[0]  # pointer read first
    assert accesses[0].kind == "r" and accesses[0].nbytes == 8


def test_bounded_write_clamps(harness):
    target = harness.base + 128
    harness.space.write(target, b"XXXXXXXXXX")
    harness.space.write(harness.base, pack_bounded_ptr(target, 4))
    result, _ = harness.run(
        WriteOp(addr=harness.base, data=b"abcdefgh", rkey=harness.rkey,
                addr_indirect=True, addr_bounded=True))
    assert result.status is OpStatus.OK
    # Only `bound` bytes written; the tail is untouched.
    assert harness.space.read(target, 10) == b"abcdXXXXXX"


def test_data_indirect_write_copies_server_side(harness):
    source = harness.base + 512
    harness.space.write(source, b"server-side-source")
    result, accesses = harness.run(
        WriteOp(addr=harness.base, data=source.to_bytes(8, "little"),
                length=18, rkey=harness.rkey, data_indirect=True))
    assert result.status is OpStatus.OK
    assert harness.space.read(harness.base, 18) == b"server-side-source"
    kinds = [(a.kind, a.nbytes) for a in accesses]
    assert ("r", 18) in kinds and ("w", 18) in kinds


def test_data_indirect_from_sram_slot(harness):
    """The redirect-then-consume pattern: data comes from NIC SRAM."""
    slot = harness.connection.sram_slot
    harness.space.write(slot, b"from-sram")
    result, _ = harness.run(
        WriteOp(addr=harness.base, data=slot.to_bytes(8, "little"),
                length=9, rkey=harness.rkey, data_indirect=True))
    assert result.status is OpStatus.OK
    assert harness.space.read(harness.base, 9) == b"from-sram"


def test_write_outside_region_naks(harness):
    result, _ = harness.run(
        WriteOp(addr=harness.base + (1 << 16), data=b"x", rkey=harness.rkey))
    assert result.status is OpStatus.NAK


def test_null_indirect_target_naks(harness):
    harness.space.write_ptr(harness.base, 0)
    result, _ = harness.run(
        WriteOp(addr=harness.base, data=b"x", rkey=harness.rkey,
                addr_indirect=True))
    assert result.status is OpStatus.NAK


def test_data_indirect_source_must_be_granted(harness):
    outside = harness.space.sbrk(64)
    result, _ = harness.run(
        WriteOp(addr=harness.base, data=outside.to_bytes(8, "little"),
                length=8, rkey=harness.rkey, data_indirect=True))
    assert result.status is OpStatus.NAK
