"""Protection matrix: every op kind vs every permission violation."""

import pytest

from repro.core import AllocateOp, CasOp, FetchAddOp, ReadOp, WriteOp
from repro.prism.address_space import ServerAddressSpace
from repro.prism.engine import Connection, OpStatus, PrismEngine
from repro.rdma.mr import AccessFlags, MemoryRegionTable
from repro.rdma.qp import QueuePair


class PermHarness:
    """Regions with every permission combination."""

    def __init__(self):
        self.space = ServerAddressSpace(1 << 18, sram_bytes=1024)
        self.regions = MemoryRegionTable()
        self.freelists = {}
        self.engine = PrismEngine(self.space, self.regions, self.freelists)
        self.rw = self._region(AccessFlags.ALL)
        self.read_only = self._region(AccessFlags.READ)
        self.write_only = self._region(AccessFlags.WRITE)
        self.no_atomic = self._region(AccessFlags.READ | AccessFlags.WRITE)
        self.connection = Connection("c", {
            self.rw[1], self.read_only[1], self.write_only[1],
            self.no_atomic[1]})

    def _region(self, flags):
        addr = self.space.sbrk(1024)
        rkey = self.regions.register(addr, 1024, flags)
        return addr, rkey

    def run(self, op):
        result, _ = self.engine.execute_op(self.connection, op)
        return result


@pytest.fixture
def perms():
    return PermHarness()


def test_read_needs_read(perms):
    addr, rkey = perms.write_only
    result = perms.run(ReadOp(addr=addr, length=8, rkey=rkey))
    assert result.status is OpStatus.NAK
    addr, rkey = perms.read_only
    assert perms.run(ReadOp(addr=addr, length=8, rkey=rkey)).successful


def test_write_needs_write(perms):
    addr, rkey = perms.read_only
    result = perms.run(WriteOp(addr=addr, data=b"x", rkey=rkey))
    assert result.status is OpStatus.NAK
    addr, rkey = perms.write_only
    assert perms.run(WriteOp(addr=addr, data=b"x", rkey=rkey)).successful


def test_cas_needs_atomic(perms):
    addr, rkey = perms.no_atomic
    result = perms.run(CasOp(target=addr, data=b"\x01" * 8, rkey=rkey))
    assert result.status is OpStatus.NAK
    addr, rkey = perms.rw
    assert perms.run(CasOp(target=addr, data=b"\x00" * 8,
                           rkey=rkey)).successful


def test_fetch_add_needs_atomic(perms):
    addr, rkey = perms.no_atomic
    result = perms.run(FetchAddOp(target=addr, delta=1, rkey=rkey))
    assert result.status is OpStatus.NAK


def test_indirect_pointee_permission_checked(perms):
    """Pointer in a readable region aiming at a write-only region: the
    dereferenced READ must still be rejected."""
    src_addr, src_rkey = perms.read_only
    dst_addr, _dst_rkey = perms.write_only
    perms.space.write_ptr(src_addr, dst_addr)
    result = perms.run(ReadOp(addr=src_addr, length=8, rkey=src_rkey,
                              indirect=True))
    assert result.status is OpStatus.NAK


def test_indirect_write_target_permission_checked(perms):
    src_addr, src_rkey = perms.read_only
    dst_addr, _ = perms.read_only
    perms.space.write_ptr(src_addr + 64, dst_addr)
    result = perms.run(WriteOp(addr=src_addr + 64, data=b"x",
                               rkey=src_rkey, addr_indirect=True))
    assert result.status is OpStatus.NAK


def test_redirect_target_needs_write(perms):
    src_addr, src_rkey = perms.read_only
    ro_addr, _ = perms.read_only
    result = perms.run(ReadOp(addr=src_addr, length=8, rkey=src_rkey,
                              redirect_to=ro_addr + 64))
    assert result.status is OpStatus.NAK


def test_allocate_buffer_region_must_be_granted(perms):
    """A free list whose buffers live in an ungranted region: ALLOCATE
    must be rejected even though the freelist id is valid."""
    hidden = perms.space.sbrk(256)
    perms.regions.register(hidden, 256)  # registered but NOT granted
    qp = QueuePair(64)
    qp.post(hidden)
    perms.freelists[1] = qp
    result = perms.run(AllocateOp(freelist=1, data=b"x",
                                  rkey=perms.rw[1]))
    assert result.status is OpStatus.NAK


def test_cas_data_indirect_source_needs_read(perms):
    target, rkey = perms.rw
    source, _ = perms.write_only
    result = perms.run(CasOp(target=target,
                             data=source.to_bytes(8, "little"),
                             rkey=rkey, data_indirect=True,
                             operand_width=8))
    assert result.status is OpStatus.NAK
