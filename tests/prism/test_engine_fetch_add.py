"""FETCH-AND-ADD semantics."""

import pytest

from repro.core import FetchAddOp, InvalidOperation
from repro.core.wire import decode_op, encode_op
from repro.prism.engine import OpStatus


def _u(value):
    return value.to_bytes(8, "little")


def test_fetch_add_returns_old_and_adds(harness):
    harness.space.write(harness.base, _u(10))
    result, accesses = harness.run(
        FetchAddOp(target=harness.base, delta=5, rkey=harness.rkey))
    assert result.status is OpStatus.OK
    assert result.value == _u(10)
    assert harness.space.read_uint(harness.base) == 15
    assert all(a.atomic for a in accesses)


def test_negative_delta(harness):
    harness.space.write(harness.base, _u(10))
    result, _ = harness.run(
        FetchAddOp(target=harness.base, delta=-3, rkey=harness.rkey))
    assert harness.space.read_uint(harness.base) == 7


def test_wraparound_mod_2_64(harness):
    harness.space.write(harness.base, _u(2**64 - 1))
    result, _ = harness.run(
        FetchAddOp(target=harness.base, delta=2, rkey=harness.rkey))
    assert harness.space.read_uint(harness.base) == 1


def test_delta_range_validated():
    with pytest.raises(InvalidOperation):
        FetchAddOp(target=8, delta=1 << 63, rkey=0x1000)


def test_outside_region_naks(harness):
    result, _ = harness.run(
        FetchAddOp(target=harness.base + (1 << 16), delta=1,
                   rkey=harness.rkey))
    assert result.status is OpStatus.NAK


def test_not_an_extension():
    op = FetchAddOp(target=8, delta=1, rkey=0x1000)
    assert not op.uses_extensions()
    assert FetchAddOp(target=8, delta=1, rkey=0x1000,
                      conditional=True).uses_extensions()


def test_wire_roundtrip():
    for delta in (0, 1, -1, 2**62, -(2**62)):
        op = FetchAddOp(target=0x4242, delta=delta, rkey=0x1234,
                        conditional=(delta == 1))
        decoded, _ = decode_op(encode_op(op))
        assert decoded == op


def test_sequencer_pattern(sim, drive):
    """The classic FAA use: a shared sequencer handing out unique ids
    to concurrent clients."""
    from repro.net.topology import DIRECT, make_fabric
    from repro.prism import HardwareRdmaBackend, PrismClient, PrismServer
    fabric = make_fabric(sim, DIRECT, ["a", "b", "server"])
    server = PrismServer(sim, fabric, "server", HardwareRdmaBackend)
    counter, rkey = server.add_region(8)
    clients = [PrismClient(sim, fabric, name, server) for name in ("a", "b")]
    ids = []

    def taker(client):
        for _ in range(10):
            old = yield from client.fetch_add(counter, 1, rkey=rkey)
            ids.append(old)

    processes = [sim.spawn(taker(c)) for c in clients]
    waiter = sim.spawn((lambda d: (yield d))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e6)
    assert sorted(ids) == list(range(20))  # all unique, no gaps
